//! Replicated meta-scheduler: leases, terms and the shared journal handle.
//!
//! The coordinator of PRs 1–4 is a single point of failure: every
//! admission slot, in-flight question and chunk-dedup set lives in its
//! memory. This module makes coordination *replicable*:
//!
//! * [`CoordinatorJournal`] — a cheap-to-clone handle over one durable
//!   [`journal::Journal`]. Each coordinator incarnation holds its own
//!   **term** cell; the journal rejects appends from any term other than
//!   the highest it has witnessed, so after a standby promotes itself a
//!   zombie ex-leader's grants bounce off with
//!   [`journal::JournalError::Fenced`] (counted in
//!   `dqa_fenced_grants_total`).
//! * [`LeaderLease`] — a pure lease state machine over the sanctioned
//!   [`dqa_obs::Clock`] seconds: no wall-clock reads, so the same code is
//!   deterministic under [`dqa_obs::ManualClock`] in tests and under
//!   virtual time in the simulator's mirror.
//! * [`Standby`] — a standby coordinator tailing leader heartbeats over
//!   the existing (bounded, crossbeam) link layer. When the lease
//!   expires it promotes: bumps the term, fences the journal forward and
//!   reports [`StandbyVerdict::Promoted`] so the caller can replay the
//!   journal and [`crate::Cluster::resume`] every in-flight question.
//!
//! The failover protocol is deliberately minimal — one journal is the
//! single source of truth, so leadership is just "who may append":
//! election is lease expiry, commitment is `advance_term`, and safety is
//! the journal's term check, not any in-memory handshake.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use crossbeam_channel::{bounded, Receiver, Sender};
use dqa_obs::Clock;
use journal::{Journal, JournalError, JournalOptions, JournalRecord, Recovery};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// A heartbeat from the leader: its term and send time (clock seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beat {
    /// The sender's term.
    pub term: u64,
    /// Send time in [`Clock`] seconds.
    pub at: f64,
}

/// A bounded heartbeat link between a leader and one standby (the same
/// crossbeam layer worker links use; bounded per the overload policy).
pub fn heartbeat_channel(capacity: usize) -> (Sender<Beat>, Receiver<Beat>) {
    bounded(capacity.max(1))
}

/// Pure lease/term state machine. All times are [`Clock`] seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderLease {
    term: u64,
    lease_secs: f64,
    last_beat: f64,
}

impl LeaderLease {
    /// A fresh lease following `term`, granted at `now`.
    pub fn new(term: u64, lease_secs: f64, now: f64) -> LeaderLease {
        LeaderLease {
            term,
            lease_secs: lease_secs.max(0.0),
            last_beat: now,
        }
    }

    /// The term this lease currently follows.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Observe a heartbeat. Beats from the current or a newer term renew
    /// the lease (and adopt the newer term); stale-term beats — a zombie
    /// ex-leader still emitting — are ignored. Returns whether the beat
    /// was accepted.
    pub fn observe(&mut self, beat: Beat) -> bool {
        if beat.term < self.term {
            return false;
        }
        self.term = beat.term;
        self.last_beat = self.last_beat.max(beat.at);
        true
    }

    /// Whether the lease has expired at `now` (no acceptable heartbeat
    /// for longer than the lease duration).
    pub fn expired(&self, now: f64) -> bool {
        now - self.last_beat > self.lease_secs
    }

    /// Claim leadership: bump to the next term and start a fresh lease at
    /// `now`. Returns the new term.
    pub fn promote(&mut self, now: f64) -> u64 {
        self.term += 1;
        self.last_beat = now;
        self.term
    }
}

/// What [`Standby::poll`] concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandbyVerdict {
    /// The leader's lease is live; keep tailing.
    Following,
    /// The lease expired: this standby claimed the contained (new) term.
    /// The caller must fence the journal forward
    /// ([`CoordinatorJournal::promote`]) before acting on it.
    Promoted(u64),
}

/// A standby coordinator: tails heartbeats, promotes on lease expiry.
#[derive(Debug)]
pub struct Standby {
    rx: Receiver<Beat>,
    lease: LeaderLease,
}

impl Standby {
    /// A standby following `term` with `lease_secs` of patience, starting
    /// its lease at `now`.
    pub fn new(rx: Receiver<Beat>, term: u64, lease_secs: f64, now: f64) -> Standby {
        Standby {
            rx,
            lease: LeaderLease::new(term, lease_secs, now),
        }
    }

    /// The lease state (term, for observability).
    pub fn lease(&self) -> &LeaderLease {
        &self.lease
    }

    /// Drain pending heartbeats and decide: still following, or promoted
    /// because the lease ran out. Deterministic given the clock and the
    /// beat sequence — no wall time, no randomness.
    pub fn poll(&mut self, clock: &dyn Clock) -> StandbyVerdict {
        while let Ok(beat) = self.rx.try_recv() {
            self.lease.observe(beat);
        }
        let now = clock.now();
        if self.lease.expired(now) {
            StandbyVerdict::Promoted(self.lease.promote(now))
        } else {
            StandbyVerdict::Following
        }
    }
}

/// A coordinator's handle on the shared question journal.
///
/// Cloning shares the *same* coordinator identity (term cell) across the
/// coordinator's threads; [`CoordinatorJournal::standby`] mints a new
/// identity over the same journal — the handle a standby uses so that
/// its later promotion fences the original holder.
#[derive(Clone)]
pub struct CoordinatorJournal {
    inner: Arc<Mutex<Journal>>,
    term: Arc<AtomicU64>,
}

impl fmt::Debug for CoordinatorJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoordinatorJournal")
            .field("term", &self.term.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl CoordinatorJournal {
    /// Open (or create) the journal at `dir`, replaying surviving frames.
    /// The handle's term starts at the journal's recovered term.
    pub fn open(dir: impl AsRef<Path>) -> Result<(CoordinatorJournal, Recovery), JournalError> {
        CoordinatorJournal::open_with(dir, JournalOptions::default())
    }

    /// [`CoordinatorJournal::open`] with explicit journal options.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: JournalOptions,
    ) -> Result<(CoordinatorJournal, Recovery), JournalError> {
        let (journal, recovery) = Journal::open_with(dir, opts)?;
        let term = journal.term();
        Ok((
            CoordinatorJournal {
                inner: Arc::new(Mutex::new(journal)),
                term: Arc::new(AtomicU64::new(term)),
            },
            recovery,
        ))
    }

    /// The term this handle appends under.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Records appended through the underlying journal this process.
    pub fn appended(&self) -> u64 {
        self.inner.lock().appended()
    }

    /// Append one record under this handle's term. After another handle
    /// promoted past it, every append here returns
    /// [`JournalError::Fenced`] — the grant is rejected durably, not just
    /// in memory.
    pub fn append(&self, record: &JournalRecord) -> Result<(), JournalError> {
        let term = self.term();
        self.inner.lock().append(term, record)
    }

    /// Force an fsync of the current segment.
    pub fn sync(&self) -> Result<(), JournalError> {
        self.inner.lock().sync()
    }

    /// A standby's handle: same journal, separate identity frozen at the
    /// journal's current term. Until it promotes it can append (same
    /// term); after [`CoordinatorJournal::promote`] the *other* handles
    /// are the fenced ones.
    pub fn standby(&self) -> CoordinatorJournal {
        let current = self.inner.lock().term();
        CoordinatorJournal {
            inner: Arc::clone(&self.inner),
            term: Arc::new(AtomicU64::new(current)),
        }
    }

    /// Claim leadership: advance the journal's term by one and adopt it
    /// for this handle. Everyone else is fenced from here on. Returns the
    /// new term.
    pub fn promote(&self) -> Result<u64, JournalError> {
        let mut journal = self.inner.lock();
        let next = journal.term() + 1;
        journal.advance_term(next)?;
        self.term.store(next, Ordering::Release);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqa_obs::ManualClock;
    use journal::JournalError;
    use qa_types::{Question, QuestionId};
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dqa-failover-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn admit(id: u32) -> JournalRecord {
        JournalRecord::Admitted {
            question: Question::new(QuestionId::new(id), format!("question {id}")),
        }
    }

    #[test]
    fn heartbeats_keep_standby_following() {
        let clock = ManualClock::new();
        let (tx, rx) = heartbeat_channel(16);
        let mut standby = Standby::new(rx, 1, 0.5, clock.now());
        for step in 1..=10 {
            clock.set(step as f64 * 0.2);
            tx.send(Beat {
                term: 1,
                at: clock.now(),
            })
            .unwrap();
            assert_eq!(
                standby.poll(&clock),
                StandbyVerdict::Following,
                "step {step}"
            );
        }
    }

    #[test]
    fn lease_expiry_promotes_to_next_term() {
        let clock = ManualClock::new();
        let (_tx, rx) = heartbeat_channel(16);
        let mut standby = Standby::new(rx, 3, 0.5, clock.now());
        clock.set(0.4);
        assert_eq!(standby.poll(&clock), StandbyVerdict::Following);
        clock.set(0.6); // 0.6 > 0.5: lease gone
        assert_eq!(standby.poll(&clock), StandbyVerdict::Promoted(4));
        assert_eq!(standby.lease().term(), 4);
        // A late beat from the deposed term-3 leader is ignored.
        let mut lease = *standby.lease();
        assert!(!lease.observe(Beat {
            term: 3,
            at: clock.now()
        }));
    }

    #[test]
    fn newer_term_beats_are_adopted() {
        let mut lease = LeaderLease::new(1, 1.0, 0.0);
        assert!(lease.observe(Beat { term: 2, at: 0.5 }));
        assert_eq!(lease.term(), 2);
        assert!(!lease.expired(1.0));
        assert!(lease.expired(1.6));
    }

    #[test]
    fn promotion_fences_the_old_leader_handle() {
        let dir = tmp("fence");
        let (leader, _) = CoordinatorJournal::open(&dir).unwrap();
        leader.append(&admit(1)).unwrap();
        let standby = leader.standby();
        // Before promotion both handles share the term and may append.
        standby.append(&admit(2)).unwrap();
        let new_term = standby.promote().unwrap();
        assert_eq!(new_term, 2);
        // The zombie's grant is rejected durably.
        let err = leader.append(&admit(3)).unwrap_err();
        assert!(matches!(err, JournalError::Fenced { .. }), "{err}");
        standby.append(&admit(4)).unwrap();
        // Reopen: only the fenced append is missing.
        drop((leader, standby));
        let (handle, recovery) = CoordinatorJournal::open(&dir).unwrap();
        assert_eq!(handle.term(), 2);
        assert_eq!(recovery.state.gate_occupancy(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clones_share_identity_standbys_do_not() {
        let dir = tmp("identity");
        let (leader, _) = CoordinatorJournal::open(&dir).unwrap();
        let sibling = leader.clone();
        let standby = leader.standby();
        standby.promote().unwrap();
        // The clone shares the leader's (now stale) term cell.
        assert!(matches!(
            sibling.append(&admit(1)),
            Err(JournalError::Fenced { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
