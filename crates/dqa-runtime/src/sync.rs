//! The concurrency seam: every hot-path lock, condvar and atomic in this
//! crate is imported through here instead of naming `parking_lot` or
//! `std::sync::atomic` directly.
//!
//! In a default build the re-exports are exactly the real primitives —
//! zero overhead, zero behavior change. With `--features loom` they swap
//! to the `dqa-verify` shims, which pass through to `std` in ordinary
//! tests but turn every operation into a scheduling decision point inside
//! a `dqa_verify::model` run. That is what lets the `loom_tests` modules
//! model-check the *real* `AdmissionGate` (and friends) rather than a
//! hand-copied miniature.

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "loom"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(feature = "loom")]
pub use dqa_verify::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(feature = "loom")]
pub use dqa_verify::sync::atomic;
