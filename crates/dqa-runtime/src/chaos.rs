//! Wall-clock chaos driver: applies a [`FaultSchedule`]'s timed events to a
//! running cluster.
//!
//! Event times are virtual seconds in the schedule; the driver multiplies
//! them by a configurable time scale so the same schedule that crashes a
//! simulated node at t=20 s can crash a thread-backed node 20 ms into a
//! test run (`scale = 0.001`).
//!
//! * A [`FaultEvent::Crash`] with a rejoin becomes suspend → resume on the
//!   [`LoadBoard`] — the node's threads go silent and survive for the
//!   rejoin (the transient-crash path).
//! * A permanent crash becomes `set_alive(node, false)` — the node's
//!   threads exit, the paper's crash-stop model.
//! * A [`FaultEvent::Straggler`] window sets and later clears the node's
//!   slowdown factor.

use crate::board::LoadBoard;
use faults::{FaultEvent, FaultSchedule};
use qa_types::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the driver does at one timeline point.
#[derive(Debug, Clone, Copy)]
enum Action {
    Kill(NodeId),
    Suspend(NodeId),
    Resume(NodeId),
    Slow(NodeId, f64),
    Unslow(NodeId),
}

/// Background thread executing a fault timeline against a [`LoadBoard`].
#[derive(Debug)]
pub struct ChaosDriver {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ChaosDriver {
    /// Start the driver; event times are multiplied by `time_scale`
    /// seconds of wall clock. A schedule without events yields an inert
    /// driver (no thread).
    pub fn start(board: Arc<LoadBoard>, schedule: &FaultSchedule, time_scale: f64) -> ChaosDriver {
        let mut timeline: Vec<(f64, Action)> = Vec::new();
        for ev in &schedule.events {
            match *ev {
                FaultEvent::Crash { node, at, rejoin } => match rejoin {
                    Some(r) => {
                        timeline.push((at, Action::Suspend(node)));
                        timeline.push((r, Action::Resume(node)));
                    }
                    None => timeline.push((at, Action::Kill(node))),
                },
                FaultEvent::Straggler {
                    node,
                    from,
                    until,
                    factor,
                } => {
                    timeline.push((from, Action::Slow(node, factor)));
                    timeline.push((until, Action::Unslow(node)));
                }
                // Coordinator faults target the meta-scheduler, not a
                // worker node's availability: the failover harness
                // (crate::failover + tests/coordinator_failover.rs)
                // exercises them against the journal, so the board-level
                // chaos thread has nothing to flip. Federation faults
                // (shard loss/partition, broker crash) likewise live one
                // tier up: the `federation` broker consumes them against
                // whole coordinator shards. Elastic-membership events
                // (decommission/join/stall) are consumed by the cluster's
                // rebalance controller, which owns the ownership map the
                // board knows nothing about.
                FaultEvent::CoordinatorCrash { .. }
                | FaultEvent::LeaderPartition { .. }
                | FaultEvent::ShardDown { .. }
                | FaultEvent::ShardPartition { .. }
                | FaultEvent::BrokerCrash { .. }
                | FaultEvent::NodeDecommission { .. }
                | FaultEvent::NodeJoin { .. }
                | FaultEvent::RebalanceStall { .. } => {}
                // Corruption events damage byte stores, not node
                // availability: the integrity runtime (crate::integrity)
                // applies them to its segment store and the journal/link
                // layers consume the rest. Nothing for the board.
                FaultEvent::BitFlip { .. } | FaultEvent::TornWrite { .. } => {}
            }
        }
        timeline.sort_by(|a, b| a.0.total_cmp(&b.0));

        let stop = Arc::new(AtomicBool::new(false));
        if timeline.is_empty() {
            return ChaosDriver { stop, thread: None };
        }

        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dqa-chaos".into())
            .spawn(move || {
                let start = crate::clock::now_instant();
                for (t, action) in timeline {
                    let target = t.max(0.0) * time_scale.max(0.0);
                    loop {
                        if stop_flag.load(Ordering::Acquire) {
                            return;
                        }
                        let elapsed = start.elapsed().as_secs_f64();
                        if elapsed >= target {
                            break;
                        }
                        let remaining = target - elapsed;
                        std::thread::sleep(Duration::from_secs_f64(remaining.min(0.002)));
                    }
                    match action {
                        Action::Kill(n) => board.set_alive(n, false),
                        Action::Suspend(n) => board.suspend(n),
                        Action::Resume(n) => board.resume(n),
                        Action::Slow(n, f) => board.set_slowdown(n, f),
                        Action::Unslow(n) => board.set_slowdown(n, 1.0),
                    }
                }
            })
            .ok();
        // A driver whose thread failed to spawn injects nothing — the run
        // simply proceeds fault-free, which is the safe direction.
        ChaosDriver { stop, thread }
    }

    /// Stop the driver and join its thread. Events not yet fired are
    /// skipped.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosDriver {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn transient_crash_suspends_then_resumes() {
        let board = Arc::new(LoadBoard::new(2, 10.0));
        board.heartbeat(NodeId::new(0));
        let schedule = FaultSchedule::seeded(1).crash_rejoin(NodeId::new(0), 5.0, 30.0);
        let driver = ChaosDriver::start(Arc::clone(&board), &schedule, 0.001);
        assert!(
            wait_until(1000, || board.is_suspended(NodeId::new(0))),
            "crash never applied"
        );
        assert!(
            wait_until(1000, || !board.is_suspended(NodeId::new(0))),
            "rejoin never applied"
        );
        driver.stop();
    }

    #[test]
    fn straggler_window_sets_and_clears_slowdown() {
        let board = Arc::new(LoadBoard::new(1, 10.0));
        let schedule = FaultSchedule::seeded(1).straggler(NodeId::new(0), 2.0, 25.0, 0.25);
        let driver = ChaosDriver::start(Arc::clone(&board), &schedule, 0.001);
        assert!(
            wait_until(1000, || board.slowdown(NodeId::new(0)) < 1.0),
            "slowdown never applied"
        );
        assert!(
            wait_until(1000, || board.slowdown(NodeId::new(0)) == 1.0),
            "slowdown never cleared"
        );
        driver.stop();
    }

    #[test]
    fn permanent_crash_kills_the_node() {
        let board = Arc::new(LoadBoard::new(1, 10.0));
        board.heartbeat(NodeId::new(0));
        let schedule = FaultSchedule::seeded(1).crash(NodeId::new(0), 1.0);
        let driver = ChaosDriver::start(Arc::clone(&board), &schedule, 0.001);
        assert!(
            wait_until(1000, || !board.is_alive(NodeId::new(0))),
            "kill never applied"
        );
        driver.stop();
    }

    #[test]
    fn empty_schedule_is_inert() {
        let board = Arc::new(LoadBoard::new(1, 10.0));
        let driver = ChaosDriver::start(Arc::clone(&board), &FaultSchedule::none(), 0.001);
        assert!(driver.thread.is_none());
        driver.stop();
    }

    #[test]
    fn stop_mid_timeline_skips_remaining_events() {
        let board = Arc::new(LoadBoard::new(1, 10.0));
        // Second event far in the future; stop must not block on it.
        let schedule = FaultSchedule::seeded(1).crash_rejoin(NodeId::new(0), 0.0, 3600.0);
        let driver = ChaosDriver::start(Arc::clone(&board), &schedule, 1.0);
        assert!(wait_until(1000, || board.is_suspended(NodeId::new(0))));
        let t = Instant::now();
        driver.stop();
        assert!(t.elapsed() < Duration::from_secs(5), "stop blocked");
    }
}
