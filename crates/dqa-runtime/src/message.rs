//! The sub-task protocol between question coordinators and worker nodes.

use crossbeam_channel::Sender;
use qa_pipeline::scoring::ScoredParagraph;
use qa_pipeline::{ApItem, PipelineConfig};
use qa_types::ProcessedQuestion;
use qa_types::{Keyword, NodeId, QuestionId, RankedAnswers, SubCollectionId};

/// A sub-task sent to a worker node.
#[derive(Debug, Clone)]
pub enum SubTask {
    /// Run PR + PS over one sub-collection (the paper's PR chunk): Boolean
    /// retrieval, paragraph extraction, then local paragraph scoring.
    PrShard {
        /// Originating question (trace labeling).
        question: QuestionId,
        /// Query keywords.
        keywords: Vec<Keyword>,
        /// Which sub-collection to search.
        shard: SubCollectionId,
        /// Coordinator-issued chunk id, echoed in the result so first-wins
        /// dedup can retire speculative twins and link-level duplicates.
        chunk: u32,
    },
    /// Run AP over a batch of accepted paragraphs.
    ApBatch {
        /// The processed question (answer type + keywords).
        question: ProcessedQuestion,
        /// Paragraphs (with PS ranks) to process.
        items: Vec<ApItem>,
        /// Pipeline knobs (window sizes, answers requested).
        config: PipelineConfig,
        /// Coordinator-issued chunk id (see [`SubTask::PrShard`]).
        chunk: u32,
    },
}

impl SubTask {
    /// Whether this sub-task is disk-dominated (PR) or CPU-dominated (AP) —
    /// drives which load-board counter it bumps (Table 3).
    pub fn is_disk_bound(&self) -> bool {
        matches!(self, SubTask::PrShard { .. })
    }
}

/// A sub-task result returned on the coordinator's reply channel.
#[derive(Debug, Clone)]
pub enum SubTaskResult {
    /// PR+PS output for one shard.
    Paragraphs {
        /// Worker that produced it.
        node: NodeId,
        /// Shard processed.
        shard: SubCollectionId,
        /// Scored paragraphs.
        scored: Vec<ScoredParagraph>,
        /// Chunk id echoed from the sub-task.
        chunk: u32,
    },
    /// AP output for one batch.
    Answers {
        /// Worker that produced it.
        node: NodeId,
        /// Locally ranked best answers.
        answers: RankedAnswers,
        /// How many paragraphs the batch held (trace labeling).
        paragraphs: usize,
        /// Chunk id echoed from the sub-task.
        chunk: u32,
    },
}

impl SubTaskResult {
    /// The worker that sent this result.
    pub fn node(&self) -> NodeId {
        match self {
            SubTaskResult::Paragraphs { node, .. } | SubTaskResult::Answers { node, .. } => *node,
        }
    }

    /// The chunk id the result answers for.
    pub fn chunk(&self) -> u32 {
        match self {
            SubTaskResult::Paragraphs { chunk, .. } | SubTaskResult::Answers { chunk, .. } => {
                *chunk
            }
        }
    }
}

/// A sub-task envelope: work plus the reply channel.
///
/// `Clone` exists for the fault-injecting link layer (message duplication
/// delivers the same envelope twice); the coordinator's dedup-by-chunk-id
/// makes the copy harmless.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The work.
    pub task: SubTask,
    /// Where to send the result.
    pub reply: Sender<SubTaskResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::{AnswerType, Question};

    #[test]
    fn disk_bound_classification() {
        let pr = SubTask::PrShard {
            question: QuestionId::new(1),
            keywords: vec![],
            shard: SubCollectionId::new(0),
            chunk: 0,
        };
        assert!(pr.is_disk_bound());
        let ap = SubTask::ApBatch {
            question: ProcessedQuestion {
                question: Question::new(QuestionId::new(1), "x"),
                answer_type: AnswerType::Unknown,
                keywords: vec![],
            },
            items: vec![],
            config: PipelineConfig::default(),
            chunk: 1,
        };
        assert!(!ap.is_disk_bound());
    }

    #[test]
    fn result_node_and_chunk_accessors() {
        let r = SubTaskResult::Answers {
            node: NodeId::new(3),
            answers: RankedAnswers::default(),
            paragraphs: 0,
            chunk: 7,
        };
        assert_eq!(r.node(), NodeId::new(3));
        assert_eq!(r.chunk(), 7);
    }
}
