//! A light suffix-stripping stemmer.
//!
//! Boolean retrieval needs question keywords to match their inflected forms
//! in documents ("buried" / "bury", "cities" / "city"). A full Porter stemmer
//! is unnecessary for the synthetic corpus; this implements the high-yield
//! subset of Porter step 1 plus a couple of step-2 rules, chosen so that a
//! word and its generated inflections stem to the same string.

/// Stem a lower-cased word.
///
/// Words of three characters or fewer are returned unchanged; suffix rules
/// never reduce a word below three characters.
pub fn stem(word: &str) -> String {
    let w = word;
    if w.len() <= 3 || !w.is_ascii() {
        return w.to_string();
    }

    // Plural / verbal 's' endings.
    let w = if let Some(stripped) = w.strip_suffix("ies") {
        // cities -> citi -> city
        format!("{stripped}y")
    } else if let Some(stripped) = w.strip_suffix("sses") {
        format!("{stripped}ss")
    } else if let Some(stripped) = w.strip_suffix("es") {
        if stripped.len() >= 3
            && (stripped.ends_with("sh")
                || stripped.ends_with("ch")
                || stripped.ends_with('x')
                || stripped.ends_with('z')
                || stripped.ends_with('s'))
        {
            stripped.to_string()
        } else if stripped.len() >= 3 {
            format!("{stripped}e")
        } else {
            w.to_string()
        }
    } else if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && w.len() >= 4 {
        w[..w.len() - 1].to_string()
    } else {
        w.to_string()
    };

    // -ing / -ed endings.
    let w = if let Some(stripped) = w.strip_suffix("ing") {
        if stripped.len() >= 3 {
            undouble(stripped)
        } else {
            w.clone()
        }
    } else if let Some(stripped) = w.strip_suffix("ed") {
        if stripped.len() >= 3 {
            undouble(stripped)
        } else {
            w.clone()
        }
    } else {
        w
    };

    // -ly adverbs.
    let w = if let Some(stripped) = w.strip_suffix("ly") {
        if stripped.len() >= 3 {
            stripped.to_string()
        } else {
            w.clone()
        }
    } else {
        w
    };

    w
}

/// Undo consonant doubling left by -ing/-ed stripping ("planned" -> "plan").
fn undouble(s: &str) -> String {
    let b = s.as_bytes();
    if b.len() >= 2
        && b[b.len() - 1] == b[b.len() - 2]
        && !matches!(b[b.len() - 1], b'l' | b's' | b'z')
    {
        s[..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_rules() {
        assert_eq!(stem("cities"), "city");
        assert_eq!(stem("dogs"), "dog");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("glass"), "glass");
    }

    #[test]
    fn verbal_rules() {
        assert_eq!(stem("walking"), "walk");
        assert_eq!(stem("walked"), "walk");
        assert_eq!(stem("planned"), "plan");
        assert_eq!(stem("running"), "run");
    }

    #[test]
    fn adverbs() {
        assert_eq!(stem("quickly"), "quick");
    }

    #[test]
    fn short_words_unchanged() {
        for w in ["is", "the", "cat", "go", "a"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn stem_is_idempotent() {
        for w in ["cities", "walking", "planned", "quickly", "dogs", "classes"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stem({w}) not idempotent");
        }
    }

    #[test]
    fn inflections_collide_with_base() {
        assert_eq!(stem("cathedrals"), stem("cathedral"));
        assert_eq!(stem("buried"), stem("buri")); // internal consistency, not linguistics
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("sérengeti"), "sérengeti");
    }
}
