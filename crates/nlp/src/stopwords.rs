//! Stopword list used by keyword extraction and the IR engine.
//!
//! Falcon selects question keywords by dropping closed-class words; the list
//! below covers English function words plus the wh-words and auxiliaries that
//! appear in TREC questions.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stopword list (lower-case).
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "this",
    "that",
    "these",
    "those",
    "some",
    "any",
    "each",
    "every",
    "no",
    "of",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "without",
    "from",
    "to",
    "into",
    "onto",
    "over",
    "under",
    "about",
    "after",
    "before",
    "between",
    "through",
    "during",
    "above",
    "below",
    "up",
    "down",
    "out",
    "off",
    "again",
    "further",
    "and",
    "or",
    "but",
    "nor",
    "so",
    "yet",
    "if",
    "then",
    "else",
    "because",
    "as",
    "until",
    "while",
    "although",
    "though",
    "since",
    "unless",
    "i",
    "me",
    "my",
    "mine",
    "we",
    "us",
    "our",
    "ours",
    "you",
    "your",
    "yours",
    "he",
    "him",
    "his",
    "she",
    "her",
    "hers",
    "it",
    "its",
    "they",
    "them",
    "their",
    "theirs",
    "who",
    "whom",
    "whose",
    "which",
    "what",
    "where",
    "when",
    "why",
    "how",
    "am",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "do",
    "does",
    "did",
    "doing",
    "have",
    "has",
    "had",
    "having",
    "will",
    "would",
    "shall",
    "should",
    "can",
    "could",
    "may",
    "might",
    "must",
    "ought",
    "not",
    "only",
    "own",
    "same",
    "than",
    "too",
    "very",
    "just",
    "also",
    "such",
    "both",
    "more",
    "most",
    "other",
    "another",
    "few",
    "many",
    "much",
    "several",
    "there",
    "here",
    "now",
    "ever",
    "never",
    "always",
    "often",
    "sometimes",
    "name",
    "called",
    "did",
    "was",
    "many",
    "much",
    "s",
    "t",
    "ll",
    "ve",
    "re",
    "d",
    "m",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Whether a lower-cased term is a stopword.
pub fn is_stopword(term: &str) -> bool {
    set().contains(term)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "of", "is", "where", "what", "who"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["taj", "mahal", "nationality", "pope", "disease", "buried"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn list_is_lowercase_and_duplicate_tolerant() {
        for w in STOPWORDS {
            assert_eq!(&w.to_lowercase(), w);
        }
        // The set deduplicates; lookups stay correct either way.
        assert!(is_stopword("did"));
    }
}
