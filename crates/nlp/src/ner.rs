//! Named-entity recognition: gazetteer longest-match plus pattern rules.
//!
//! The Answer Processing module of the paper detects *candidate answers* —
//! lexico-semantic entities of the question's answer type — inside
//! paragraphs. This recognizer provides that capability:
//!
//! * gazetteer entities (PERSON, LOCATION, ORGANIZATION, DISEASE,
//!   NATIONALITY) are found by longest-match over token windows;
//! * DATE is matched by year/month patterns;
//! * QUANTITY by `number unit` patterns;
//! * MONEY by `number dollars` patterns.

use crate::gazetteer::{Gazetteers, MONTHS, QUANTITY_UNITS};
use crate::tokenize::{tokenize, Token};
use qa_types::AnswerType;
use std::sync::Arc;

/// An entity occurrence inside a text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityMention {
    /// The original-case entity text.
    pub text: String,
    /// Recognized category.
    pub entity_type: AnswerType,
    /// Byte offset of the mention start in the source text.
    pub start: usize,
    /// Byte offset one past the mention end.
    pub end: usize,
}

/// Gazetteer+pattern recognizer.
#[derive(Debug, Clone)]
pub struct NamedEntityRecognizer {
    gazetteers: Arc<Gazetteers>,
}

impl NamedEntityRecognizer {
    /// Build a recognizer over a gazetteer set.
    pub fn new(gazetteers: Arc<Gazetteers>) -> Self {
        Self { gazetteers }
    }

    /// Build a recognizer over the standard gazetteers.
    pub fn standard() -> Self {
        Self::new(Gazetteers::standard())
    }

    /// The backing gazetteers.
    pub fn gazetteers(&self) -> &Arc<Gazetteers> {
        &self.gazetteers
    }

    /// Find all entity mentions in `text`, left to right, non-overlapping
    /// (longest match wins at each position).
    pub fn recognize(&self, text: &str) -> Vec<EntityMention> {
        let tokens = tokenize(text);
        self.recognize_tokens(text, &tokens)
    }

    /// As [`recognize`](Self::recognize) but over pre-tokenized input, so the
    /// pipeline can tokenize each paragraph once.
    pub fn recognize_tokens(&self, text: &str, tokens: &[Token]) -> Vec<EntityMention> {
        let mut mentions = Vec::new();
        let max_w = self.gazetteers.max_phrase_words();
        let mut i = 0usize;
        let mut phrase = String::new();
        while i < tokens.len() {
            // Gazetteer longest match.
            let mut matched = None;
            let upper = max_w.min(tokens.len() - i);
            for w in (1..=upper).rev() {
                phrase.clear();
                for (k, t) in tokens[i..i + w].iter().enumerate() {
                    if k > 0 {
                        phrase.push(' ');
                    }
                    phrase.push_str(&t.text);
                }
                if let Some(ty) = self.gazetteers.classify(&phrase) {
                    matched = Some((w, ty));
                    break;
                }
            }
            if let Some((w, ty)) = matched {
                let start = tokens[i].start;
                let end = tokens[i + w - 1].end;
                mentions.push(EntityMention {
                    text: text[start..end].to_string(),
                    entity_type: ty,
                    start,
                    end,
                });
                i += w;
                continue;
            }

            // Pattern rules.
            if let Some(m) = self.match_pattern(text, tokens, i) {
                let skip = tokens[i..]
                    .iter()
                    .take_while(|t| t.start < m.end)
                    .count()
                    .max(1);
                mentions.push(m);
                i += skip;
                continue;
            }

            i += 1;
        }
        mentions
    }

    fn match_pattern(&self, text: &str, tokens: &[Token], i: usize) -> Option<EntityMention> {
        let t = &tokens[i];
        let next = tokens.get(i + 1);

        let is_number = t.text.chars().all(|c| c.is_ascii_digit()) && !t.text.is_empty();

        if is_number {
            if let Some(n) = next {
                if n.text == "dollars" {
                    return Some(self.mention(text, t.start, n.end, AnswerType::Money));
                }
                if QUANTITY_UNITS.contains(&n.text.as_str()) {
                    return Some(self.mention(text, t.start, n.end, AnswerType::Quantity));
                }
            }
            // Standalone year.
            if t.text.len() == 4 {
                if let Ok(y) = t.text.parse::<u32>() {
                    if (1000..=2100).contains(&y) {
                        return Some(self.mention(text, t.start, t.end, AnswerType::Date));
                    }
                }
            }
        }

        // "May 1987" style month-year or "May 5" month-day dates.
        if MONTHS.contains(&t.text.as_str()) && t.capitalized {
            if let Some(n) = next {
                if n.text.chars().all(|c| c.is_ascii_digit()) && !n.text.is_empty() {
                    return Some(self.mention(text, t.start, n.end, AnswerType::Date));
                }
            }
        }

        None
    }

    fn mention(&self, text: &str, start: usize, end: usize, ty: AnswerType) -> EntityMention {
        EntityMention {
            text: text[start..end].to_string(),
            entity_type: ty,
            start,
            end,
        }
    }

    /// Convenience: mentions of one specific type.
    pub fn recognize_type(&self, text: &str, ty: AnswerType) -> Vec<EntityMention> {
        self.recognize(text)
            .into_iter()
            .filter(|m| m.entity_type == ty)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::name_stem;

    fn ner() -> NamedEntityRecognizer {
        NamedEntityRecognizer::standard()
    }

    #[test]
    fn recognizes_planted_person() {
        let g = Gazetteers::standard();
        let person = &g.entities(AnswerType::Person)[3];
        let text = format!("Yesterday {person} visited the market.");
        let ms = ner().recognize(&text);
        assert!(ms
            .iter()
            .any(|m| m.entity_type == AnswerType::Person && &m.text == person));
    }

    #[test]
    fn longest_match_wins() {
        // "University of X" must match as one ORGANIZATION, not leave "X"
        // to match as something else.
        let g = Gazetteers::standard();
        let org = g
            .entities(AnswerType::Organization)
            .iter()
            .find(|e| e.starts_with("University of "))
            .unwrap();
        let text = format!("She joined {org} last year.");
        let ms = ner().recognize(&text);
        let m = ms
            .iter()
            .find(|m| m.entity_type == AnswerType::Organization)
            .expect("organization found");
        assert_eq!(&m.text, org);
    }

    #[test]
    fn year_pattern() {
        let ms = ner().recognize("during a 1987 tour of the country");
        assert!(ms
            .iter()
            .any(|m| m.entity_type == AnswerType::Date && m.text == "1987"));
    }

    #[test]
    fn quantity_and_money_patterns() {
        let ms = ner().recognize("a wall 42 miles long that cost 900 dollars");
        assert!(ms
            .iter()
            .any(|m| m.entity_type == AnswerType::Quantity && m.text == "42 miles"));
        assert!(ms
            .iter()
            .any(|m| m.entity_type == AnswerType::Money && m.text == "900 dollars"));
    }

    #[test]
    fn month_day_pattern() {
        let ms = ner().recognize("It happened on March 15 in the capital.");
        assert!(ms
            .iter()
            .any(|m| m.entity_type == AnswerType::Date && m.text == "March 15"));
    }

    #[test]
    fn lowercase_month_not_a_date() {
        // "may" as auxiliary verb must not trigger the month rule.
        let ms = ner().recognize("it may 15 percent improve");
        assert!(!ms.iter().any(|m| m.entity_type == AnswerType::Date));
    }

    #[test]
    fn mentions_do_not_overlap_and_are_ordered() {
        let g = Gazetteers::standard();
        let p0 = &g.entities(AnswerType::Person)[0];
        let l0 = &g.entities(AnswerType::Location)[0];
        let text = format!("{p0} went to {l0} in 1999.");
        let ms = ner().recognize(&text);
        for w in ms.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {w:?}");
        }
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn recognize_type_filters() {
        let text = format!("{} moved in 1950.", name_stem(0));
        let dates = ner().recognize_type(&text, AnswerType::Date);
        assert!(dates.iter().all(|m| m.entity_type == AnswerType::Date));
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(ner().recognize("").is_empty());
    }
}
