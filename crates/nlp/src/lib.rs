#![warn(missing_docs)]
//! Natural-language substrate for the distributed Q/A system.
//!
//! The paper's Falcon pipeline relies on an NLP stack (tokenization, named
//! entity recognition, question classification) that is proprietary; this
//! crate provides a from-scratch, deterministic, rule-based equivalent that
//! exercises the same code paths:
//!
//! * [`tokenize`] — word tokenizer preserving byte offsets;
//! * [`stopwords`] — the stopword list used for keyword selection;
//! * [`stem`] — a light suffix-stripping stemmer;
//! * [`gazetteer`] — entity lists per answer type, shared between the corpus
//!   generator and the recognizer so planted answers are recoverable;
//! * [`ner`] — gazetteer + pattern named-entity recognition;
//! * [`question`] — the Question Processing (QP) module logic: answer-type
//!   classification and keyword extraction.

pub mod gazetteer;
pub mod ner;
pub mod question;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use gazetteer::Gazetteers;
pub use ner::{EntityMention, NamedEntityRecognizer};
pub use question::QuestionProcessor;
pub use tokenize::{tokenize, Token};
