//! Word tokenization with byte offsets.
//!
//! Tokens are maximal runs of alphanumeric characters (plus internal
//! apostrophes and hyphens, so "Tourette's" and "open-domain" stay whole).
//! Offsets are preserved because the Answer Processing module cuts answer
//! windows out of the original paragraph text.

/// A token: its lower-cased text plus the byte span in the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lower-cased token text.
    pub text: String,
    /// Byte offset of the first character in the source.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// Whether the original first character was upper-case (a weak
    /// proper-noun signal used by keyword weighting).
    pub capitalized: bool,
}

impl Token {
    /// The original (un-lowercased) slice of the source.
    pub fn source<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

fn is_joiner(c: char) -> bool {
    c == '\'' || c == '-'
}

/// Tokenize `text` into words with offsets.
///
/// A joiner character (`'` or `-`) is kept inside a token only when it is
/// surrounded by word characters on both sides.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0usize;
    while i < bytes.len() {
        let (start_byte, c) = bytes[i];
        if !is_word_char(c) {
            i += 1;
            continue;
        }
        let capitalized = c.is_uppercase();
        let mut j = i + 1;
        while j < bytes.len() {
            let (_, cj) = bytes[j];
            if is_word_char(cj) {
                j += 1;
            } else if is_joiner(cj) && j + 1 < bytes.len() && is_word_char(bytes[j + 1].1) {
                j += 2;
            } else {
                break;
            }
        }
        let end_byte = if j < bytes.len() {
            bytes[j].0
        } else {
            text.len()
        };
        tokens.push(Token {
            text: text[start_byte..end_byte].to_lowercase(),
            start: start_byte,
            end: end_byte,
            capitalized,
        });
        i = j;
    }
    tokens
}

/// Count words in `text` without allocating tokens; used by corpus
/// statistics and the IR engine's document-length accounting.
pub fn word_count(text: &str) -> usize {
    let mut n = 0;
    let mut in_word = false;
    for c in text.chars() {
        if is_word_char(c) {
            if !in_word {
                n += 1;
                in_word = true;
            }
        } else if !(is_joiner(c) && in_word) {
            in_word = false;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punct() {
        let toks = tokenize("Where is the Taj Mahal?");
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["where", "is", "the", "taj", "mahal"]);
    }

    #[test]
    fn keeps_internal_apostrophe_and_hyphen() {
        let toks = tokenize("Tourette's open-domain systems");
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["tourette's", "open-domain", "systems"]);
    }

    #[test]
    fn trailing_apostrophe_not_joined() {
        let toks = tokenize("the dogs' bowl");
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["the", "dogs", "bowl"]);
    }

    #[test]
    fn offsets_slice_the_source() {
        let src = "Pope John Paul II";
        let toks = tokenize(src);
        assert_eq!(toks[1].source(src), "John");
        assert!(toks[1].capitalized);
        assert_eq!(toks[1].text, "john");
        assert_eq!(&src[toks[3].start..toks[3].end], "II");
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!., --- ''").is_empty());
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let toks = tokenize("Chartre’s Cathedral — Sérengeti");
        assert!(toks.iter().any(|t| t.text.contains("cathedral")));
        assert!(toks.iter().any(|t| t.text.contains("rengeti")));
    }

    #[test]
    fn word_count_matches_tokenize() {
        for s in [
            "Where is the Taj Mahal?",
            "Tourette's open-domain systems",
            "",
            "a b   c-d e'f",
        ] {
            assert_eq!(word_count(s), tokenize(s).len(), "for {s:?}");
        }
    }

    #[test]
    fn numbers_are_tokens() {
        let toks = tokenize("a 1987 tour of 360 cities");
        assert!(toks.iter().any(|t| t.text == "1987"));
        assert!(toks.iter().any(|t| t.text == "360"));
    }
}
