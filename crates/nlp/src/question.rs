//! Question Processing (QP): answer-type classification + keyword extraction.
//!
//! The paper (§2.1): "The main role of the Question Processing module is to
//! identify the answer type expected (i.e. LOCATION, PERSON, etc.) and to
//! translate the user question into a set of keywords to be used in the next
//! processing stages."
//!
//! Classification is rule-based on the wh-word plus the *focus noun* — the
//! first content noun after the wh-word ("What is the **nationality** of
//! Pope John Paul II?"). Keyword extraction drops stopwords, stems the rest
//! and weights proper-noun-like tokens higher, so that when the Boolean
//! query must be relaxed the most selective keywords are retained.

use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use qa_types::{AnswerType, Keyword, ProcessedQuestion, QaError, Question};

/// Focus nouns mapped to answer types.
const FOCUS_RULES: &[(&str, AnswerType)] = &[
    ("nationality", AnswerType::Nationality),
    ("disease", AnswerType::Disease),
    ("illness", AnswerType::Disease),
    ("syndrome", AnswerType::Disease),
    ("city", AnswerType::Location),
    ("country", AnswerType::Location),
    ("state", AnswerType::Location),
    ("place", AnswerType::Location),
    ("river", AnswerType::Location),
    ("mountain", AnswerType::Location),
    ("capital", AnswerType::Location),
    ("location", AnswerType::Location),
    ("year", AnswerType::Date),
    ("date", AnswerType::Date),
    ("month", AnswerType::Date),
    ("day", AnswerType::Date),
    ("company", AnswerType::Organization),
    ("organization", AnswerType::Organization),
    ("university", AnswerType::Organization),
    ("corporation", AnswerType::Organization),
    ("institute", AnswerType::Organization),
    ("person", AnswerType::Person),
    ("actor", AnswerType::Person),
    ("actress", AnswerType::Person),
    ("president", AnswerType::Person),
    ("author", AnswerType::Person),
    ("population", AnswerType::Quantity),
    ("height", AnswerType::Quantity),
    ("length", AnswerType::Quantity),
    ("distance", AnswerType::Quantity),
    ("number", AnswerType::Quantity),
    ("cost", AnswerType::Money),
    ("price", AnswerType::Money),
];

/// The QP module.
///
/// # Examples
/// ```
/// use nlp::QuestionProcessor;
/// use qa_types::{AnswerType, Question, QuestionId};
///
/// let qp = QuestionProcessor::new();
/// let q = Question::new(QuestionId::new(176), "What is the nationality of Pope John Paul II?");
/// let processed = qp.process(&q).unwrap();
/// assert_eq!(processed.answer_type, AnswerType::Nationality);
/// assert!(processed.keyword_terms().any(|t| t == "pope"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuestionProcessor {
    /// Maximum number of keywords to keep (Falcon relaxes Boolean queries by
    /// dropping low-weight keywords; we cap the initial set instead).
    pub max_keywords: usize,
}

impl QuestionProcessor {
    /// QP with the default keyword cap (8).
    pub fn new() -> Self {
        Self { max_keywords: 8 }
    }

    /// Process a question into answer type + keywords.
    ///
    /// Returns [`QaError::NoKeywords`] when no content word survives
    /// stopword filtering — such a question cannot drive Boolean retrieval.
    pub fn process(&self, question: &Question) -> Result<ProcessedQuestion, QaError> {
        let tokens = tokenize(&question.text);
        let lower: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let answer_type = classify(&lower);

        let mut keywords: Vec<Keyword> = Vec::new();
        for t in &tokens {
            if is_stopword(&t.text) {
                continue;
            }
            // The focus noun names the *category* of the answer; it is not a
            // retrieval keyword (documents say "Polish", not "nationality").
            if FOCUS_RULES
                .iter()
                .any(|(f, ty)| *f == t.text && *ty == answer_type)
            {
                continue;
            }
            let stemmed = stem(&t.text);
            if keywords.iter().any(|k| k.term == stemmed) {
                continue;
            }
            let mut weight = 1.0 + (t.text.len().min(10) as f32) * 0.1;
            if t.capitalized {
                weight += 2.0;
            }
            keywords.push(Keyword::new(stemmed, weight));
        }

        if keywords.is_empty() {
            return Err(QaError::NoKeywords(question.id));
        }

        keywords.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.term.cmp(&b.term))
        });
        keywords.truncate(self.max_keywords.max(1));

        Ok(ProcessedQuestion {
            question: question.clone(),
            answer_type,
            keywords,
        })
    }
}

/// Classify the answer type from the lower-cased token sequence.
fn classify(tokens: &[&str]) -> AnswerType {
    let first = tokens.first().copied().unwrap_or("");
    let second = tokens.get(1).copied().unwrap_or("");

    match first {
        "who" | "whom" | "whose" => return AnswerType::Person,
        "where" => return AnswerType::Location,
        "when" => return AnswerType::Date,
        "how" => {
            return match second {
                "much" => {
                    if tokens
                        .iter()
                        .any(|t| matches!(*t, "cost" | "costs" | "pay" | "worth"))
                    {
                        AnswerType::Money
                    } else {
                        AnswerType::Quantity
                    }
                }
                "many" | "far" | "long" | "tall" | "big" | "high" | "old" | "deep" => {
                    AnswerType::Quantity
                }
                _ => AnswerType::Unknown,
            };
        }
        _ => {}
    }

    // "What/Which … <focus>" — first focus noun wins.
    if first == "what" || first == "which" || first == "name" {
        for t in tokens.iter().skip(1) {
            for (focus, ty) in FOCUS_RULES {
                if t == focus {
                    return *ty;
                }
            }
        }
        if first == "what" && (second == "is" || second == "are" || second == "was") {
            return AnswerType::Definition;
        }
    }

    AnswerType::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::QuestionId;

    fn q(text: &str) -> Question {
        Question::new(QuestionId::new(1), text)
    }

    fn process(text: &str) -> ProcessedQuestion {
        QuestionProcessor::new().process(&q(text)).unwrap()
    }

    #[test]
    fn paper_q8_is_disease() {
        // Table 1 Q.8.
        let p = process(
            "What is the name of the rare neurological disease with symptoms such as \
             involuntary movements, swearing, and incoherent vocalizations?",
        );
        assert_eq!(p.answer_type, AnswerType::Disease);
    }

    #[test]
    fn paper_q34_and_q73_are_location() {
        assert_eq!(
            process("Where is the actress Marion Davies buried?").answer_type,
            AnswerType::Location
        );
        assert_eq!(
            process("Where is the Taj Mahal?").answer_type,
            AnswerType::Location
        );
    }

    #[test]
    fn paper_q176_is_nationality() {
        let p = process("What is the nationality of Pope John Paul II?");
        assert_eq!(p.answer_type, AnswerType::Nationality);
        // The focus noun itself must not become a keyword.
        assert!(!p.keywords.iter().any(|k| k.term == "nationality"));
        assert!(p.keywords.iter().any(|k| k.term == "pope"));
    }

    #[test]
    fn who_when_how_rules() {
        assert_eq!(
            process("Who invented the telephone?").answer_type,
            AnswerType::Person
        );
        assert_eq!(
            process("When did the war end?").answer_type,
            AnswerType::Date
        );
        assert_eq!(
            process("How many people live in Tokyo?").answer_type,
            AnswerType::Quantity
        );
        assert_eq!(
            process("How much does the bridge cost?").answer_type,
            AnswerType::Money
        );
        assert_eq!(
            process("How much water is in the lake?").answer_type,
            AnswerType::Quantity
        );
    }

    #[test]
    fn what_is_a_fallback_is_definition() {
        assert_eq!(
            process("What is a caldera formation thing?").answer_type,
            AnswerType::Definition
        );
    }

    #[test]
    fn keywords_are_stemmed_deduped_and_capped() {
        let p = process("Where are the cities city near walking walked Mahal?");
        let terms: Vec<_> = p.keyword_terms().collect();
        let city_count = terms.iter().filter(|t| **t == "city").count();
        let walk_count = terms.iter().filter(|t| **t == "walk").count();
        assert_eq!(city_count, 1, "terms: {terms:?}");
        assert_eq!(walk_count, 1);
        assert!(p.keywords.len() <= 8);
    }

    #[test]
    fn proper_nouns_weighted_higher() {
        let p = process("Where is the Mahal building located?");
        assert_eq!(
            p.keywords[0].term, "mahal",
            "capitalized keyword first: {:?}",
            p.keywords
        );
    }

    #[test]
    fn stopword_only_question_errors() {
        let e = QuestionProcessor::new()
            .process(&q("Who is he?"))
            .unwrap_err();
        assert!(matches!(e, QaError::NoKeywords(_)));
    }

    #[test]
    fn keyword_order_is_deterministic() {
        let a = process("Where is the Taj Mahal near Agra fort?");
        let b = process("Where is the Taj Mahal near Agra fort?");
        assert_eq!(a.keywords, b.keywords);
    }
}
