//! Entity gazetteers shared by the corpus generator and the recognizer.
//!
//! Falcon's named-entity recognizer is backed by large proprietary word
//! lists. We synthesize deterministic lists instead: the corpus generator
//! plants entities drawn from these lists, and [`crate::ner`] recognizes them
//! by longest-match lookup, so every planted answer is recoverable — which is
//! exactly the property the paper's *timing* experiments need (AP work is
//! proportional to candidate-answer density, not to linguistic accuracy).

use qa_types::AnswerType;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Syllables used to synthesize pronounceable proper names.
const SYLLABLES: &[&str] = &[
    "ba", "den", "kor", "mal", "ta", "ri", "ven", "sol", "mar", "lin", "dor", "fa", "gan", "hel",
    "is", "jor", "kel", "lu", "men", "nor", "pol", "qua", "ros", "sen", "tor", "ul", "vas", "wen",
    "xan", "yor", "zel", "bren",
];

/// Deterministically synthesize the `i`-th proper name stem.
///
/// Stems are unique for `i < SYLLABLES.len()^3` and never collide with
/// English function words (every stem has at least two syllables).
pub fn name_stem(i: usize) -> String {
    let n = SYLLABLES.len();
    let mut s = String::new();
    s.push_str(SYLLABLES[i % n]);
    s.push_str(SYLLABLES[(i / n) % n]);
    if i >= n * n {
        s.push_str(SYLLABLES[(i / (n * n)) % n]);
    }
    // Capitalize.
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

/// Real-world nationality adjectives (closed class, small enough to embed).
const NATIONALITIES: &[&str] = &[
    "Polish",
    "French",
    "German",
    "Italian",
    "Spanish",
    "Romanian",
    "Hungarian",
    "Russian",
    "Japanese",
    "Chinese",
    "Korean",
    "Indian",
    "Australian",
    "Brazilian",
    "Mexican",
    "Canadian",
    "American",
    "British",
    "Irish",
    "Scottish",
    "Dutch",
    "Belgian",
    "Swiss",
    "Austrian",
    "Greek",
    "Turkish",
    "Egyptian",
    "Moroccan",
    "Nigerian",
    "Kenyan",
    "Ethiopian",
    "Argentine",
    "Chilean",
    "Peruvian",
    "Swedish",
    "Norwegian",
    "Danish",
    "Finnish",
    "Icelandic",
    "Portuguese",
    "Czech",
    "Slovak",
    "Croatian",
    "Serbian",
    "Bulgarian",
    "Ukrainian",
    "Vietnamese",
    "Thai",
    "Indonesian",
    "Malaysian",
];

/// Units recognized as QUANTITY heads by the pattern rules.
pub const QUANTITY_UNITS: &[&str] = &[
    "miles",
    "mile",
    "kilometers",
    "kilometer",
    "meters",
    "meter",
    "feet",
    "foot",
    "people",
    "inhabitants",
    "tons",
    "tonnes",
    "percent",
    "years",
    "days",
    "hours",
    "pounds",
    "kilograms",
    "acres",
    "hectares",
    "stories",
    "floors",
];

/// Month names recognized by the DATE pattern rules.
pub const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Entity lists per answer type plus a phrase-lookup table.
#[derive(Debug)]
pub struct Gazetteers {
    by_type: HashMap<AnswerType, Vec<String>>,
    lookup: HashMap<String, AnswerType>,
    max_words: usize,
}

impl Gazetteers {
    /// Build the standard gazetteer set. Deterministic: no RNG involved.
    pub fn standard() -> Arc<Gazetteers> {
        static STD: OnceLock<Arc<Gazetteers>> = OnceLock::new();
        STD.get_or_init(|| Arc::new(Self::build(GazetteerSizes::default())))
            .clone()
    }

    /// Build gazetteers with custom per-type sizes (used by tests and by
    /// corpus configurations that want sparser/denser entity spaces).
    pub fn build(sizes: GazetteerSizes) -> Gazetteers {
        let mut by_type: HashMap<AnswerType, Vec<String>> = HashMap::new();

        let persons: Vec<String> = (0..sizes.persons)
            .map(|i| format!("{} {}", name_stem(i), name_stem(i + 7919)))
            .collect();
        let locations: Vec<String> = (0..sizes.locations)
            .map(|i| match i % 4 {
                0 => format!("Lake {}", name_stem(i + 101)),
                1 => format!("Mount {}", name_stem(i + 211)),
                2 => format!("{} City", name_stem(i + 307)),
                _ => name_stem(i + 401),
            })
            .collect();
        let orgs: Vec<String> = (0..sizes.organizations)
            .map(|i| match i % 3 {
                0 => format!("{} Corporation", name_stem(i + 503)),
                1 => format!("University of {}", name_stem(i + 601)),
                _ => format!("{} Institute", name_stem(i + 701)),
            })
            .collect();
        let diseases: Vec<String> = (0..sizes.diseases)
            .map(|i| match i % 3 {
                0 => format!("{} Syndrome", name_stem(i + 809)),
                1 => format!("{} Disease", name_stem(i + 907)),
                _ => format!("{} Fever", name_stem(i + 1009)),
            })
            .collect();
        let nationalities: Vec<String> = NATIONALITIES
            .iter()
            .take(sizes.nationalities)
            .map(|s| s.to_string())
            .collect();

        by_type.insert(AnswerType::Person, persons);
        by_type.insert(AnswerType::Location, locations);
        by_type.insert(AnswerType::Organization, orgs);
        by_type.insert(AnswerType::Disease, diseases);
        by_type.insert(AnswerType::Nationality, nationalities);

        let mut lookup = HashMap::new();
        let mut max_words = 1;
        // Iterate in AnswerType order, not hash order: an entity present in
        // two lists (e.g. a surname that is also a place) must resolve to
        // the same type on every run, or downstream answer extraction
        // diverges between processes.
        let mut entries: Vec<_> = by_type.iter().collect();
        entries.sort_by_key(|(ty, _)| **ty);
        for (ty, list) in entries {
            for e in list {
                let key = e.to_lowercase();
                max_words = max_words.max(key.split_whitespace().count());
                lookup.insert(key, *ty);
            }
        }

        Gazetteers {
            by_type,
            lookup,
            max_words,
        }
    }

    /// The entity list for a type (empty slice for pattern-only types like
    /// DATE / QUANTITY / MONEY).
    pub fn entities(&self, ty: AnswerType) -> &[String] {
        self.by_type.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Classify a lower-cased phrase; `None` if it is not a known entity.
    pub fn classify(&self, phrase_lower: &str) -> Option<AnswerType> {
        self.lookup.get(phrase_lower).copied()
    }

    /// Longest entity phrase length in words (bounds the NER scan window).
    pub fn max_phrase_words(&self) -> usize {
        self.max_words
    }

    /// Types that have a non-empty gazetteer.
    pub fn listed_types(&self) -> impl Iterator<Item = AnswerType> + '_ {
        self.by_type
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(t, _)| *t)
    }

    /// Total number of entity phrases.
    pub fn len(&self) -> usize {
        self.lookup.len()
    }

    /// True when no entities are loaded.
    pub fn is_empty(&self) -> bool {
        self.lookup.is_empty()
    }
}

/// How many entities to synthesize per type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GazetteerSizes {
    /// PERSON entities ("Firstname Lastname").
    pub persons: usize,
    /// LOCATION entities.
    pub locations: usize,
    /// ORGANIZATION entities.
    pub organizations: usize,
    /// DISEASE entities.
    pub diseases: usize,
    /// NATIONALITY entities (capped at the embedded list length).
    pub nationalities: usize,
}

impl Default for GazetteerSizes {
    fn default() -> Self {
        Self {
            persons: 1200,
            locations: 800,
            organizations: 500,
            diseases: 300,
            nationalities: NATIONALITIES.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_stems_are_unique_and_capitalized() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000 {
            let s = name_stem(i);
            assert!(s.chars().next().unwrap().is_uppercase());
            assert!(seen.insert(s), "duplicate stem at {i}");
        }
    }

    #[test]
    fn standard_is_shared_and_nonempty() {
        let a = Gazetteers::standard();
        let b = Gazetteers::standard();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.len() > 2000);
        assert!(!a.is_empty());
    }

    #[test]
    fn classify_round_trips_every_entity() {
        let g = Gazetteers::build(GazetteerSizes {
            persons: 50,
            locations: 40,
            organizations: 30,
            diseases: 20,
            nationalities: 10,
        });
        for ty in [
            AnswerType::Person,
            AnswerType::Location,
            AnswerType::Organization,
            AnswerType::Disease,
            AnswerType::Nationality,
        ] {
            for e in g.entities(ty) {
                assert_eq!(g.classify(&e.to_lowercase()), Some(ty), "entity {e}");
            }
        }
    }

    #[test]
    fn pattern_only_types_have_no_list() {
        let g = Gazetteers::standard();
        assert!(g.entities(AnswerType::Date).is_empty());
        assert!(g.entities(AnswerType::Quantity).is_empty());
        assert!(g.entities(AnswerType::Money).is_empty());
    }

    #[test]
    fn max_phrase_words_covers_multiword_entities() {
        let g = Gazetteers::standard();
        assert!(g.max_phrase_words() >= 3, "University of X is 3 words");
    }

    #[test]
    fn unknown_phrases_are_unclassified() {
        let g = Gazetteers::standard();
        assert_eq!(g.classify("completely unknown phrase"), None);
        assert_eq!(g.classify("the"), None);
    }

    #[test]
    fn listed_types_excludes_pattern_types() {
        let g = Gazetteers::standard();
        let types: Vec<_> = g.listed_types().collect();
        assert!(types.contains(&AnswerType::Person));
        assert!(!types.contains(&AnswerType::Date));
    }
}
