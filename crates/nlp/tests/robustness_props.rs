//! Robustness property tests: the NLP substrate must never panic on
//! arbitrary input and must stay self-consistent.

use nlp::gazetteer::Gazetteers;
use nlp::{NamedEntityRecognizer, QuestionProcessor};
use proptest::prelude::*;
use qa_types::{Question, QuestionId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ner_never_panics_and_mentions_are_well_formed(text in ".{0,300}") {
        let ner = NamedEntityRecognizer::standard();
        let mentions = ner.recognize(&text);
        for m in &mentions {
            prop_assert!(m.start < m.end);
            prop_assert!(m.end <= text.len());
            prop_assert!(text.is_char_boundary(m.start) && text.is_char_boundary(m.end));
            prop_assert_eq!(&text[m.start..m.end], m.text.as_str());
        }
        for w in mentions.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlapping mentions");
        }
    }

    #[test]
    fn qp_never_panics(text in ".{0,200}") {
        let qp = QuestionProcessor::new();
        let q = Question::new(QuestionId::new(1), text);
        if let Ok(p) = qp.process(&q) {
            prop_assert!(!p.keywords.is_empty());
            prop_assert!(p.keywords.len() <= 8);
            for w in p.keywords.windows(2) {
                prop_assert!(w[0].weight >= w[1].weight, "keywords not weight-sorted");
            }
        }
    }

    #[test]
    fn planted_entities_always_recognized(idx in 0usize..500) {
        // Any gazetteer entity embedded in plain text must be found with
        // the right type — the contract the corpus generator relies on.
        let g = Gazetteers::standard();
        let types: Vec<_> = g.listed_types().collect();
        let ty = types[idx % types.len()];
        let list = g.entities(ty);
        let entity = &list[idx % list.len()];
        let text = format!("Yesterday the group saw {entity} during the visit.");
        let ner = NamedEntityRecognizer::standard();
        let found = ner
            .recognize(&text)
            .into_iter()
            .any(|m| m.text == *entity && m.entity_type == ty);
        prop_assert!(found, "missed {entity} ({ty})");
    }
}
