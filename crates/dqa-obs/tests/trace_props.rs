//! Property tests for the causal-tracing tier: spans sealed through a
//! [`TraceRecorder`] must always form well-nested per-trace trees, the
//! critical path must attribute the root interval exactly, span ids
//! must be collision-free along the deterministic ordinal chain, and
//! the nesting validator must reject escapes it exists to catch.

use dqa_obs::{
    critical_path, derive_span_id, derive_trace_id, names, to_chrome_json, validate_chrome_json,
    validate_nesting, CausalSpan, CauseSet, ManualClock, MetricsRegistry, TraceRecorder,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A recorder over a manual clock, as the DES and tests use it.
fn recorder(seed: u64) -> (Arc<ManualClock>, TraceRecorder) {
    let clock = Arc::new(ManualClock::new());
    let registry = MetricsRegistry::new();
    let rec = TraceRecorder::new(
        clock.clone(),
        seed,
        4096,
        registry.counter(names::TRACE_DROPPED_TOTAL, &[]),
    );
    (clock, rec)
}

/// Seal one question: a root covering `phases` laid end-to-end from
/// `start`, each phase a child with its queue share. Returns all spans.
fn seal_question(
    rec: &TraceRecorder,
    question: u64,
    start: f64,
    phases: &[(f64, f64)],
) -> Vec<CausalSpan> {
    let trace = rec.trace_id(question);
    let total: f64 = phases.iter().map(|(d, _)| d).sum();
    let root = CausalSpan::new(
        trace,
        None,
        "question",
        Some(0),
        start,
        start + total,
        0.0,
        CauseSet::default(),
    );
    let root_id = rec.emit(root);
    let mut at = start;
    for (i, (dur, queue_frac)) in phases.iter().enumerate() {
        let child = CausalSpan::new(
            trace,
            Some(root_id),
            &format!("phase-{i}"),
            Some(0),
            at,
            at + dur,
            dur * queue_frac,
            CauseSet::default(),
        );
        rec.emit(child);
        at += dur;
    }
    rec.for_trace(trace)
}

proptest! {
    /// However many questions and phases a run seals, the recorded span
    /// set is well nested, exports as valid chrome-tracing JSON, and
    /// each question's critical path partitions its root interval: the
    /// components sum to the end-to-end latency within 1 % (exactly, up
    /// to f64 reassociation — the 1 % bound is the gate's bar).
    #[test]
    fn sealed_questions_are_well_nested_and_fully_attributed(
        seed in any::<u64>(),
        questions in proptest::collection::vec(
            proptest::collection::vec((1e-3f64..20.0, 0.0f64..1.0), 1..8),
            1..12,
        ),
    ) {
        let (_, rec) = recorder(seed);
        let mut start = 0.0f64;
        for (q, phases) in questions.iter().enumerate() {
            let spans = seal_question(&rec, q as u64, start, phases);
            let total: f64 = phases.iter().map(|(d, _)| d).sum();
            start += total + 0.25;
            let cp = critical_path(&spans).expect("critical path");
            prop_assert!((cp.total() - total).abs() <= 1e-9 * total.max(1.0));
            let residual = (cp.total() - cp.attributed()).abs();
            prop_assert!(
                residual <= 0.01 * cp.total(),
                "residual {residual} on e2e {}", cp.total()
            );
            prop_assert!(cp.queue_total() <= cp.total() + 1e-9);
        }
        let all = rec.spans();
        validate_nesting(&all).map_err(TestCaseError::fail)?;
        validate_chrome_json(&to_chrome_json(&all))
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(rec.dropped(), 0);
    }

    /// Span ids along one trace's ordinal chain never collide, and two
    /// different seeds give a question different trace identities while
    /// the same seed replays the identical chain.
    #[test]
    fn span_id_chains_are_deterministic_and_collision_free(
        seed in any::<u64>(),
        question in any::<u64>(),
        len in 1usize..256,
    ) {
        let trace = derive_trace_id(question, seed);
        prop_assert_eq!(trace, derive_trace_id(question, seed));
        prop_assert_ne!(trace, derive_trace_id(question, seed ^ 1));
        let mut seen = std::collections::BTreeSet::new();
        for ordinal in 1..=(len as u64) {
            prop_assert!(
                seen.insert(derive_span_id(trace, ordinal)),
                "ordinal {ordinal} collided in trace {trace:016x}"
            );
        }
    }

    /// The validator rejects a child escaping its parent's interval by
    /// more than the 1 µs wall-clock slack, and accepts the same child
    /// once clamped back inside.
    #[test]
    fn nesting_validator_rejects_escaped_children(
        seed in any::<u64>(),
        dur in 0.1f64..50.0,
        escape in 1e-3f64..5.0,
    ) {
        let (_, rec) = recorder(seed);
        let trace = rec.trace_id(7);
        let root = rec.emit(CausalSpan::new(
            trace, None, "question", None, 0.0, dur, 0.0, CauseSet::default(),
        ));
        rec.emit(CausalSpan::new(
            trace, Some(root), "phase", None, 0.0, dur + escape, 0.0, CauseSet::default(),
        ));
        prop_assert!(validate_nesting(&rec.spans()).is_err());

        let (_, rec2) = recorder(seed);
        let trace2 = rec2.trace_id(7);
        let root2 = rec2.emit(CausalSpan::new(
            trace2, None, "question", None, 0.0, dur, 0.0, CauseSet::default(),
        ));
        rec2.emit(CausalSpan::new(
            trace2, Some(root2), "phase", None, 0.0, dur, 0.0, CauseSet::default(),
        ));
        prop_assert!(validate_nesting(&rec2.spans()).is_ok());
    }
}
