//! Property tests for the histogram pipeline: lock-sharded recording
//! must conserve observations exactly, and nearest-rank quantile
//! estimates must stay within one bucket width of the true value.

use dqa_obs::MetricsRegistry;
use proptest::prelude::*;

proptest! {
    /// Merging shards loses nothing: whatever the thread interleaving,
    /// the snapshot's count and per-bucket tallies equal a serial
    /// single-thread recording of the same values, and the sum matches
    /// the serial sum up to f64 reassociation error.
    #[test]
    fn sharded_recording_conserves_observations(
        values in proptest::collection::vec(0.0f64..700.0, 1..400),
        threads in 1usize..8,
    ) {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("dqa_prop_seconds", &[]);
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in values.chunks(chunk) {
                let hist = hist.clone();
                scope.spawn(move || {
                    for v in part {
                        hist.observe(*v);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let h = &snap.histograms["dqa_prop_seconds"];
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        let serial: f64 = values.iter().sum();
        prop_assert!(
            (h.sum - serial).abs() <= 1e-6 * serial.abs().max(1.0),
            "merged sum {} drifted from serial sum {serial}", h.sum
        );

        let serial_reg = MetricsRegistry::new();
        let serial_hist = serial_reg.histogram("dqa_prop_seconds", &[]);
        for v in &values {
            serial_hist.observe(*v);
        }
        let serial_snap = serial_reg.snapshot();
        prop_assert_eq!(&h.counts, &serial_snap.histograms["dqa_prop_seconds"].counts);
    }

    /// The quantile estimate is the upper bound of the bucket holding
    /// the nearest-rank true value: the truth lies in the half-open
    /// bucket `(previous_bound, estimate]` for in-range samples.
    #[test]
    fn quantile_estimate_is_within_one_bucket(
        values in proptest::collection::vec(1e-4f64..600.0, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("dqa_prop_q_seconds", &[]);
        for v in &values {
            hist.observe(*v);
        }
        let snap = registry.snapshot();
        let h = &snap.histograms["dqa_prop_q_seconds"];
        let est = h.quantile(q);

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];

        prop_assert!(truth <= est, "true quantile {truth} above estimate {est}");
        let idx = h
            .bounds
            .iter()
            .position(|b| *b == est)
            .expect("estimate is one of the bucket bounds");
        let prev = if idx == 0 { 0.0 } else { h.bounds[idx - 1] };
        prop_assert!(
            truth > prev,
            "true quantile {truth} more than one bucket below estimate {est} (prev bound {prev})"
        );
    }
}
