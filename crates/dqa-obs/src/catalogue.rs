//! Pre-bound handles for the shared metric catalogue ([`crate::names`]).
//!
//! Both backends construct one [`DqaMetrics`] from their registry and
//! record through its fields on the hot path. Binding the catalogue in
//! one place is what guarantees `dqa-runtime` and `cluster-sim` export
//! *identical* metric names and label keys — the property `qa-cli report`
//! and the cross-backend comparisons rely on.

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::names;

/// One handle per catalogue entry (per-node gauges are created on
/// demand via [`DqaMetrics::node_load`] / [`DqaMetrics::queue_depth`]).
#[derive(Debug, Clone)]
pub struct DqaMetrics {
    registry: MetricsRegistry,
    /// `dqa_module_seconds{module="QP"}`.
    pub qp_seconds: Histogram,
    /// `dqa_module_seconds{module="PR"}` (PS fused in, as in Fig. 3).
    pub pr_seconds: Histogram,
    /// `dqa_module_seconds{module="PO"}`.
    pub po_seconds: Histogram,
    /// `dqa_module_seconds{module="AP"}`.
    pub ap_seconds: Histogram,
    /// `dqa_question_seconds` — end-to-end response time.
    pub question_seconds: Histogram,
    /// `dqa_overhead_seconds{part="kw_send"}` — keyword propagation.
    pub overhead_kw_send: Histogram,
    /// `dqa_overhead_seconds{part="par_recv"}` — remote paragraphs back.
    pub overhead_par_recv: Histogram,
    /// `dqa_overhead_seconds{part="par_send"}` — paragraphs out to AP.
    pub overhead_par_send: Histogram,
    /// `dqa_overhead_seconds{part="ans_recv"}` — answers back home.
    pub overhead_ans_recv: Histogram,
    /// `dqa_overhead_seconds{part="ans_sort"}` — final merge + sort.
    pub overhead_ans_sort: Histogram,
    /// `dqa_questions_total{outcome="answered"}`.
    pub answered: Counter,
    /// `dqa_questions_total{outcome="degraded"}`.
    pub degraded: Counter,
    /// `dqa_questions_total{outcome="rejected"}`.
    pub rejected: Counter,
    /// `dqa_questions_total{outcome="failed"}`.
    pub failed: Counter,
    /// `dqa_migrations_total{kind="qa"}` (Table 7).
    pub migrations_qa: Counter,
    /// `dqa_migrations_total{kind="pr"}`.
    pub migrations_pr: Counter,
    /// `dqa_migrations_total{kind="ap"}`.
    pub migrations_ap: Counter,
    /// `dqa_speculations_total`.
    pub speculations: Counter,
    /// `dqa_sheds_total{module="PR"}`.
    pub shed_pr: Counter,
    /// `dqa_sheds_total{module="AP"}`.
    pub shed_ap: Counter,
    /// `dqa_backpressure_total`.
    pub backpressure: Counter,
    /// `dqa_worker_failures_total`.
    pub worker_failures: Counter,
    /// `dqa_breaker_trips_total`.
    pub breaker_trips: Counter,
    /// `dqa_in_flight`.
    pub in_flight: Gauge,
    /// `dqa_admission_waiting`.
    pub admission_waiting: Gauge,
    /// `dqa_failovers_total` — standby promotions.
    pub failovers: Counter,
    /// `dqa_fenced_grants_total` — stale-term journal appends rejected.
    pub fenced_grants: Counter,
    /// `dqa_journal_records_total` — records durably appended.
    pub journal_records: Counter,
    /// `dqa_replayed_records_total` — records folded on recovery.
    pub replayed_records: Counter,
    /// `dqa_resumed_questions_total` — in-flight questions resumed.
    pub resumed_questions: Counter,
    /// `dqa_recovery_seconds` — crash → resumed latency.
    pub recovery_seconds: Histogram,
    /// `dqa_leader_term` — coordinator term in force.
    pub leader_term: Gauge,
    /// `dqa_hedges_total` — hedged shard retries issued by the broker.
    pub hedges: Counter,
    /// `dqa_hedge_wins_total` — hedged replies that beat the primary.
    pub hedge_wins: Counter,
    /// `dqa_merges_total` — scatter-gathered questions merged.
    pub merges: Counter,
    /// `dqa_quorum_shortfalls_total` — merges below the shard quorum.
    pub quorum_shortfalls: Counter,
    /// `dqa_rebalance_migrated_total` — ownership transfers applied.
    pub rebalance_migrated: Counter,
    /// `dqa_rebalance_ownership_epoch` — monotone ownership-map epoch.
    pub ownership_epoch: Gauge,
    /// `dqa_rebalance_converged` — 1 while every sub-collection has a
    /// live owner.
    pub rebalance_converged: Gauge,
    /// `dqa_rebalance_heal_seconds` — loss/join → convergence latency.
    pub heal_seconds: Histogram,
    /// `dqa_integrity_quarantined` — sub-collections detected-damaged
    /// and not yet repaired.
    pub integrity_quarantined: Gauge,
    /// `dqa_integrity_scrubbed_total` — scrubber shard verifications.
    pub integrity_scrubbed: Counter,
    /// `dqa_integrity_scrub_progress` — scrub-cycle position, 0..1.
    pub integrity_scrub_progress: Gauge,
    /// `dqa_integrity_scrub_throttled_total` — scrub steps deferred for
    /// admission headroom.
    pub integrity_scrub_throttled: Counter,
    /// `dqa_integrity_degraded_total` — questions answered with
    /// explicitly degraded Coverage because a quarantined sub-collection
    /// was skipped.
    pub integrity_degraded: Counter,
}

impl DqaMetrics {
    /// Bind every catalogue instrument against `registry`.
    pub fn new(registry: &MetricsRegistry) -> DqaMetrics {
        let module = |m: &str| registry.histogram(names::MODULE_SECONDS, &[("module", m)]);
        let overhead = |p: &str| registry.histogram(names::OVERHEAD_SECONDS, &[("part", p)]);
        let outcome = |o: &str| registry.counter(names::QUESTIONS_TOTAL, &[("outcome", o)]);
        let migration = |k: &str| registry.counter(names::MIGRATIONS_TOTAL, &[("kind", k)]);
        DqaMetrics {
            qp_seconds: module("QP"),
            pr_seconds: module("PR"),
            po_seconds: module("PO"),
            ap_seconds: module("AP"),
            question_seconds: registry.histogram(names::QUESTION_SECONDS, &[]),
            overhead_kw_send: overhead("kw_send"),
            overhead_par_recv: overhead("par_recv"),
            overhead_par_send: overhead("par_send"),
            overhead_ans_recv: overhead("ans_recv"),
            overhead_ans_sort: overhead("ans_sort"),
            answered: outcome("answered"),
            degraded: outcome("degraded"),
            rejected: outcome("rejected"),
            failed: outcome("failed"),
            migrations_qa: migration("qa"),
            migrations_pr: migration("pr"),
            migrations_ap: migration("ap"),
            speculations: registry.counter(names::SPECULATIONS_TOTAL, &[]),
            shed_pr: registry.counter(names::SHEDS_TOTAL, &[("module", "PR")]),
            shed_ap: registry.counter(names::SHEDS_TOTAL, &[("module", "AP")]),
            backpressure: registry.counter(names::BACKPRESSURE_TOTAL, &[]),
            worker_failures: registry.counter(names::WORKER_FAILURES_TOTAL, &[]),
            breaker_trips: registry.counter(names::BREAKER_TRIPS_TOTAL, &[]),
            in_flight: registry.gauge(names::IN_FLIGHT, &[]),
            admission_waiting: registry.gauge(names::ADMISSION_WAITING, &[]),
            failovers: registry.counter(names::FAILOVERS_TOTAL, &[]),
            fenced_grants: registry.counter(names::FENCED_GRANTS_TOTAL, &[]),
            journal_records: registry.counter(names::JOURNAL_RECORDS_TOTAL, &[]),
            replayed_records: registry.counter(names::REPLAYED_RECORDS_TOTAL, &[]),
            resumed_questions: registry.counter(names::RESUMED_QUESTIONS_TOTAL, &[]),
            recovery_seconds: registry.histogram(names::RECOVERY_SECONDS, &[]),
            leader_term: registry.gauge(names::LEADER_TERM, &[]),
            hedges: registry.counter(names::HEDGES_TOTAL, &[]),
            hedge_wins: registry.counter(names::HEDGE_WINS_TOTAL, &[]),
            merges: registry.counter(names::MERGES_TOTAL, &[]),
            quorum_shortfalls: registry.counter(names::QUORUM_SHORTFALLS_TOTAL, &[]),
            rebalance_migrated: registry.counter(names::REBALANCE_MIGRATED_TOTAL, &[]),
            ownership_epoch: registry.gauge(names::REBALANCE_OWNERSHIP_EPOCH, &[]),
            rebalance_converged: registry.gauge(names::REBALANCE_CONVERGED, &[]),
            heal_seconds: registry.histogram(names::REBALANCE_HEAL_SECONDS, &[]),
            integrity_quarantined: registry.gauge(names::INTEGRITY_QUARANTINED, &[]),
            integrity_scrubbed: registry.counter(names::INTEGRITY_SCRUBBED_TOTAL, &[]),
            integrity_scrub_progress: registry.gauge(names::INTEGRITY_SCRUB_PROGRESS, &[]),
            integrity_scrub_throttled: registry
                .counter(names::INTEGRITY_SCRUB_THROTTLED_TOTAL, &[]),
            integrity_degraded: registry.counter(names::INTEGRITY_DEGRADED_TOTAL, &[]),
            registry: registry.clone(),
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Eq. 1–3 load gauge for one node/module pair
    /// (`module` is `"QA"`, `"PR"` or `"AP"`).
    pub fn node_load(&self, node: u32, module: &str) -> Gauge {
        self.registry.gauge(
            names::NODE_LOAD,
            &[("module", module), ("node", &node.to_string())],
        )
    }

    /// Ingress-queue depth gauge for one node.
    pub fn queue_depth(&self, node: u32) -> Gauge {
        self.registry
            .gauge(names::QUEUE_DEPTH, &[("node", &node.to_string())])
    }

    /// Broker-side per-shard request counter (`status` is a
    /// `qa_types::ShardStatus` label such as `"answered"`).
    pub fn shard_requests(&self, shard: u32, status: &str) -> Counter {
        self.registry.counter(
            names::SHARD_REQUESTS_TOTAL,
            &[("shard", &shard.to_string()), ("status", status)],
        )
    }

    /// Broker-observed latency histogram for one shard.
    pub fn shard_seconds(&self, shard: u32) -> Histogram {
        self.registry
            .histogram(names::SHARD_SECONDS, &[("shard", &shard.to_string())])
    }

    /// Breaker-state gauge for one shard (1 = open, 0 = closed).
    pub fn shard_breaker_open(&self, shard: u32) -> Gauge {
        self.registry
            .gauge(names::SHARD_BREAKER_OPEN, &[("shard", &shard.to_string())])
    }

    /// Migration-plan counter for one trigger (`reason` is the
    /// `rebalance::RebalanceReason` label: `"permanent-loss"`, `"drain"`,
    /// `"join"`, `"load-skew"`).
    pub fn rebalance_plans(&self, reason: &str) -> Counter {
        self.registry
            .counter(names::REBALANCE_PLANS_TOTAL, &[("reason", reason)])
    }

    /// Throttle-deferral counter for one cause (`"stalled"`,
    /// `"saturated"`, `"yielding"`).
    pub fn rebalance_throttled(&self, cause: &str) -> Counter {
        self.registry
            .counter(names::REBALANCE_THROTTLED_TOTAL, &[("cause", cause)])
    }

    /// Checksum-failure counter for one damage class (`target` is
    /// `"index"`, `"journal"` or `"message"`).
    pub fn integrity_checksum_failures(&self, target: &str) -> Counter {
        self.registry.counter(
            names::INTEGRITY_CHECKSUM_FAILURES_TOTAL,
            &[("target", target)],
        )
    }

    /// Repair counter for one restoration source (`"replica"` — verified
    /// federation copy — or `"rebuild"` — re-indexed from corpus).
    pub fn integrity_repairs(&self, source: &str) -> Counter {
        self.registry
            .counter(names::INTEGRITY_REPAIRS_TOTAL, &[("source", source)])
    }

    /// The per-module histogram for a Fig. 3 module name (`"QP"`, `"PR"`,
    /// `"PO"`, `"AP"`; `"PS"` maps to the fused PR histogram).
    pub fn module_seconds(&self, module: &str) -> &Histogram {
        match module {
            "QP" => &self.qp_seconds,
            "PO" => &self.po_seconds,
            "AP" => &self.ap_seconds,
            _ => &self.pr_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_binds_every_family_once() {
        let reg = MetricsRegistry::new();
        let m = DqaMetrics::new(&reg);
        m.answered.inc();
        m.qp_seconds.observe(0.01);
        m.node_load(2, "PR").set(1.5);
        m.queue_depth(2).set(3.0);
        m.failovers.inc();
        m.fenced_grants.inc();
        m.recovery_seconds.observe(0.25);
        m.leader_term.set(2.0);
        m.hedges.inc();
        m.hedge_wins.inc();
        m.merges.inc();
        m.quorum_shortfalls.inc();
        m.shard_requests(1, "answered").inc();
        m.shard_seconds(1).observe(0.05);
        m.shard_breaker_open(1).set(1.0);
        m.rebalance_plans("drain").inc();
        m.rebalance_throttled("yielding").inc();
        m.rebalance_migrated.inc();
        m.ownership_epoch.set(4.0);
        m.rebalance_converged.set(1.0);
        m.heal_seconds.observe(0.4);
        m.integrity_checksum_failures("index").inc();
        m.integrity_quarantined.set(1.0);
        m.integrity_scrubbed.inc();
        m.integrity_scrub_progress.set(0.5);
        m.integrity_scrub_throttled.inc();
        m.integrity_repairs("replica").inc();
        m.integrity_degraded.inc();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(r#"dqa_questions_total{outcome="answered"}"#),
            1
        );
        assert!(snap
            .histograms
            .contains_key(r#"dqa_module_seconds{module="QP"}"#));
        assert_eq!(snap.counter("dqa_failovers_total"), 1);
        assert_eq!(snap.counter("dqa_fenced_grants_total"), 1);
        assert!(snap.histograms.contains_key("dqa_recovery_seconds"));
        assert_eq!(snap.gauges["dqa_leader_term"], 2.0);
        assert_eq!(snap.gauges[r#"dqa_node_load{module="PR",node="2"}"#], 1.5);
        assert_eq!(snap.gauges[r#"dqa_queue_depth{node="2"}"#], 3.0);
        assert_eq!(snap.counter("dqa_hedges_total"), 1);
        assert_eq!(snap.counter("dqa_hedge_wins_total"), 1);
        assert_eq!(snap.counter("dqa_merges_total"), 1);
        assert_eq!(snap.counter("dqa_quorum_shortfalls_total"), 1);
        assert_eq!(
            snap.counter(r#"dqa_shard_requests_total{shard="1",status="answered"}"#),
            1
        );
        assert!(snap
            .histograms
            .contains_key(r#"dqa_shard_seconds{shard="1"}"#));
        assert_eq!(snap.gauges[r#"dqa_shard_breaker_open{shard="1"}"#], 1.0);
        assert_eq!(
            snap.counter(r#"dqa_rebalance_plans_total{reason="drain"}"#),
            1
        );
        assert_eq!(
            snap.counter(r#"dqa_rebalance_throttled_total{cause="yielding"}"#),
            1
        );
        assert_eq!(snap.counter("dqa_rebalance_migrated_total"), 1);
        assert_eq!(snap.gauges["dqa_rebalance_ownership_epoch"], 4.0);
        assert_eq!(snap.gauges["dqa_rebalance_converged"], 1.0);
        assert!(snap.histograms.contains_key("dqa_rebalance_heal_seconds"));
        assert_eq!(
            snap.counter(r#"dqa_integrity_checksum_failures_total{target="index"}"#),
            1
        );
        assert_eq!(snap.gauges["dqa_integrity_quarantined"], 1.0);
        assert_eq!(snap.counter("dqa_integrity_scrubbed_total"), 1);
        assert_eq!(snap.gauges["dqa_integrity_scrub_progress"], 0.5);
        assert_eq!(snap.counter("dqa_integrity_scrub_throttled_total"), 1);
        assert_eq!(
            snap.counter(r#"dqa_integrity_repairs_total{source="replica"}"#),
            1
        );
        assert_eq!(snap.counter("dqa_integrity_degraded_total"), 1);
        // The exposition must validate (CI smoke requirement).
        crate::validate_prometheus(&snap.to_prometheus()).expect("valid");
    }

    #[test]
    fn module_lookup_covers_fig3_names() {
        let reg = MetricsRegistry::new();
        let m = DqaMetrics::new(&reg);
        m.module_seconds("PS").observe(1.0);
        assert_eq!(m.pr_seconds.snapshot().count, 1, "PS fuses into PR");
        m.module_seconds("QP").observe(1.0);
        assert_eq!(m.qp_seconds.snapshot().count, 1);
    }
}
