//! The metrics registry and its instruments.
//!
//! Instruments are cheap-clone handles over atomic cells: a counter is
//! one `AtomicU64`, a gauge is an f64 bit pattern in an `AtomicU64`, and
//! a histogram is a fixed bucket ladder with lock-sharded accumulation
//! (each thread picks a shard once; shards merge at snapshot time). The
//! hot path never takes a lock, so instrumenting a phase costs a handful
//! of atomic ops — the `obs_overhead` bench bin holds it under 2% of
//! `table5_throughput`.
//!
//! A registry can be constructed *disabled*: every instrument it hands
//! out is then a no-op (one branch on a bool), which is what the
//! overhead bench compares against.

use crate::snapshot::{metric_key, HistogramSnapshot, Snapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default histogram ladder for latencies, in seconds: 1 ms to 10 min,
/// roughly logarithmic, wide enough for both the millisecond synthetic
/// corpus and the paper's 158 s sequential questions.
pub const DEFAULT_SECONDS_BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 600.0,
];

const SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread records into one histogram shard, assigned round-robin
    /// at first use. A single-threaded caller (the simulator) therefore
    /// always accumulates into one shard in observation order, which keeps
    /// the merged f64 sum bit-identical across replays.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// Atomically add `delta` to an f64 stored as bits in `cell`.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: bool,
}

impl Counter {
    /// A standalone recording counter, not registered anywhere. Useful
    /// where a count is wanted even without a registry (a detached
    /// `Counter::default()` is a no-op instead).
    pub fn live() -> Counter {
        Counter {
            cell: Arc::default(),
            on: true,
        }
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time f64 value (queue depth, load, in-flight count).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    on: bool,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        if self.on {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adjust the value by `delta` (use negative deltas to decrement).
    pub fn add(&self, delta: f64) {
        if self.on {
            atomic_f64_add(&self.cell, delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Shard {
    fn new(n_buckets: usize) -> Shard {
        Shard {
            buckets: (0..n_buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Box<[f64]>,
    shards: Vec<Shard>,
}

/// A fixed-bucket latency histogram with lock-sharded accumulation.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    on: bool,
}

impl Histogram {
    fn new(bounds: &[f64], on: bool) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let n = bounds.len() + 1; // +1 overflow bucket
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.into(),
                shards: (0..SHARDS).map(|_| Shard::new(n)).collect(),
            }),
            on,
        }
    }

    /// Record one observation (seconds).
    pub fn observe(&self, v: f64) {
        if !self.on {
            return;
        }
        let shard = &self.inner.shards[shard_index()];
        let idx = self.inner.bounds.partition_point(|b| v > *b);
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&shard.sum_bits, v);
    }

    /// Merge every shard into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let n = self.inner.bounds.len() + 1;
        let mut counts = vec![0u64; n];
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for shard in &self.inner.shards {
            for (acc, cell) in counts.iter_mut().zip(shard.buckets.iter()) {
                *acc += cell.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: self.inner.bounds.to_vec(),
            counts,
            count,
            sum,
        }
    }
}

/// Times one phase against a [`Clock`](crate::Clock); the same code path
/// measures wall time in the runtime and virtual time in the simulator.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    start: f64,
}

impl PhaseTimer {
    /// Start timing now.
    pub fn start(clock: &dyn crate::Clock) -> PhaseTimer {
        PhaseTimer { start: clock.now() }
    }

    /// Seconds elapsed so far.
    pub fn elapsed(&self, clock: &dyn crate::Clock) -> f64 {
        (clock.now() - self.start).max(0.0)
    }

    /// Stop, record the elapsed seconds into `hist`, and return them.
    pub fn stop(self, clock: &dyn crate::Clock, hist: &Histogram) -> f64 {
        let dt = self.elapsed(clock);
        hist.observe(dt);
        dt
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A family of named instruments with one snapshot/export point.
///
/// Cloning is cheap (an `Arc` bump); every layer of a backend can hold
/// its own handle. Instrument lookup takes a short-lived lock, so fetch
/// handles once (at construction/spawn time) and record through them on
/// the hot path.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                enabled: true,
                ..RegistryInner::default()
            }),
        }
    }

    /// A registry whose instruments are all no-ops — the baseline the
    /// `obs_overhead` bench compares against.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The counter `name{labels}` (created on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.inner.enabled {
            return Counter::default();
        }
        let key = metric_key(name, labels);
        self.inner
            .counters
            .lock()
            .entry(key)
            .or_insert_with(|| Counter {
                cell: Arc::default(),
                on: true,
            })
            .clone()
    }

    /// The gauge `name{labels}` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.inner.enabled {
            return Gauge::default();
        }
        let key = metric_key(name, labels);
        self.inner
            .gauges
            .lock()
            .entry(key)
            .or_insert_with(|| Gauge {
                cell: Arc::default(),
                on: true,
            })
            .clone()
    }

    /// The histogram `name{labels}` with the default seconds ladder.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, DEFAULT_SECONDS_BUCKETS)
    }

    /// The histogram `name{labels}` with explicit bucket upper bounds.
    /// Bounds are fixed at creation; later callers get the existing
    /// ladder regardless of what they pass.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        if !self.inner.enabled {
            return Histogram::new(bounds, false);
        }
        let key = metric_key(name, labels);
        self.inner
            .histograms
            .lock()
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds, true))
            .clone()
    }

    /// A deterministically ordered snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dqa_test_total", &[("kind", "x")]);
        let b = reg.counter("dqa_test_total", &[("kind", "x")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[r#"dqa_test_total{kind="x"}"#], 5);
    }

    #[test]
    fn gauges_set_and_adjust() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("dqa_depth", &[]);
        g.set(3.0);
        g.add(2.5);
        g.add(-1.5);
        assert_eq!(g.get(), 4.0);
    }

    #[test]
    fn histogram_observations_land_in_le_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("dqa_t", &[], &[1.0, 2.0]);
        h.observe(0.5); // le 1.0
        h.observe(1.0); // le 1.0 (le is inclusive)
        h.observe(1.5); // le 2.0
        h.observe(9.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 12.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("dqa_test_total", &[]);
        let g = reg.gauge("dqa_g", &[]);
        let h = reg.histogram("dqa_h", &[]);
        c.inc();
        g.set(5.0);
        h.observe(1.0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.snapshot().count, 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn phase_timer_records_virtual_durations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dqa_phase_seconds", &[("module", "PR")]);
        let clock = ManualClock::new();
        clock.set(10.0);
        let t = PhaseTimer::start(&clock);
        clock.set(12.5);
        assert_eq!(t.elapsed(&clock), 2.5);
        let dt = t.stop(&clock, &h);
        assert_eq!(dt, 2.5);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!((s.sum - 2.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_conserved() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("dqa_mt", &[], &[0.5, 1.0, 2.0]);
        let c = reg.counter("dqa_mt_total", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 4) as f64 * 0.6);
                        c.inc();
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(c.get(), 4000);
        assert_eq!(snap.counts.iter().sum::<u64>(), 4000);
    }
}
