//! Unified observability layer for the distributed Q/A reproduction.
//!
//! The paper's whole evaluation is observational: per-module times
//! (Table 8), scheduling/partitioning overheads (Table 9), migration
//! counts (Table 7) and the Fig. 7 execution listings. This crate gives
//! both backends — the thread-backed `dqa-runtime` and the virtual-time
//! `cluster-sim` — one shared vocabulary for recording those quantities:
//!
//! * [`MetricsRegistry`]: counters, gauges and fixed-bucket histograms,
//!   lock-free on the hot path (atomic cells, lock-sharded histogram
//!   accumulation) so instrumentation stays well under the overhead
//!   budget it is meant to police.
//! * [`Clock`]: the single seam between wall time and virtual time. The
//!   runtime records through [`WallClock`], the simulator through
//!   [`ManualClock`] driven by the event engine — the *same*
//!   instrumentation code records both.
//! * [`PhaseTimer`] / [`Span`]: phase timing over a `Clock`, plus a
//!   waterfall renderer for per-question timelines.
//! * [`FlightRecorder`]: a bounded drop-oldest ring buffer for trace
//!   events. Loss is counted, never silent.
//! * [`trace`]: causal spans with deterministic trace/span identity, a
//!   critical-path analyzer attributing end-to-end latency to
//!   phase/queue/hedge/migration components, and Perfetto/chrome-tracing
//!   export ([`TraceRecorder`], [`critical_path`], [`to_chrome_json`]).
//! * [`Snapshot`]: a point-in-time, deterministically ordered view of
//!   every instrument, exportable to Prometheus text format or stable
//!   JSON (see [`Snapshot::to_prometheus`], [`Snapshot::to_json`]).
//!
//! Metric names shared by both backends live in [`names`]; keeping them
//! in one place is what makes `qa-cli report` backend-agnostic.

mod catalogue;
mod clock;
mod metrics;
mod ring;
mod snapshot;
pub mod trace;

pub use catalogue::DqaMetrics;
pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer, DEFAULT_SECONDS_BUCKETS,
};
pub use ring::{FlightRecorder, DEFAULT_FLIGHT_RECORDER_CAPACITY};
pub use snapshot::{
    metric_key, render_waterfall, split_key, validate_prometheus, HistogramSnapshot, Snapshot, Span,
};
pub use trace::{
    critical_path, derive_span_id, derive_trace_id, splitmix64, to_chrome_json,
    validate_chrome_json, validate_nesting, CausalSpan, CauseSet, CriticalPath, PathComponent,
    TraceRecorder,
};

/// The metric-name catalogue shared by `dqa-runtime` and `cluster-sim`.
///
/// Both backends must register under these names with the same label
/// keys, so one `qa-cli report` implementation can render Table 8/9-style
/// breakdowns from either. Label keys per family:
///
/// | metric | type | labels |
/// |---|---|---|
/// | `dqa_module_seconds` | histogram | `module` = `QP`/`PR`/`PO`/`AP` (PS fused into PR) |
/// | `dqa_question_seconds` | histogram | — (end-to-end response time) |
/// | `dqa_overhead_seconds` | histogram | `part` = `kw_send`/`par_recv`/`par_send`/`ans_recv`/`ans_sort` |
/// | `dqa_questions_total` | counter | `outcome` = `answered`/`degraded`/`rejected`/`failed` |
/// | `dqa_migrations_total` | counter | `kind` = `qa`/`pr`/`ap` |
/// | `dqa_speculations_total` | counter | — |
/// | `dqa_sheds_total` | counter | `module` |
/// | `dqa_backpressure_total` | counter | — |
/// | `dqa_worker_failures_total` | counter | — |
/// | `dqa_breaker_trips_total` | counter | — |
/// | `dqa_trace_dropped_total` | counter | — |
/// | `dqa_node_load` | gauge | `node`, `module` = `QA`/`PR`/`AP` (Eqs. 1–3) |
/// | `dqa_in_flight` | gauge | — |
/// | `dqa_admission_waiting` | gauge | — |
/// | `dqa_queue_depth` | gauge | `node` |
/// | `dqa_failovers_total` | counter | — (standby promotions) |
/// | `dqa_fenced_grants_total` | counter | — (stale-term appends rejected) |
/// | `dqa_journal_records_total` | counter | — (records durably appended) |
/// | `dqa_replayed_records_total` | counter | — (records folded on recovery) |
/// | `dqa_resumed_questions_total` | counter | — (in-flight questions resumed) |
/// | `dqa_recovery_seconds` | histogram | — (crash → resumed latency) |
/// | `dqa_leader_term` | gauge | — (current coordinator term) |
/// | `dqa_shard_requests_total` | counter | `shard`, `status` = `qa_types::ShardStatus` labels |
/// | `dqa_shard_seconds` | histogram | `shard` (broker-observed shard latency) |
/// | `dqa_shard_breaker_open` | gauge | `shard` (1 while the shard breaker is open) |
/// | `dqa_hedges_total` | counter | — (hedged shard retries issued) |
/// | `dqa_hedge_wins_total` | counter | — (hedged replies that beat the primary) |
/// | `dqa_merges_total` | counter | — (scatter-gathered questions merged) |
/// | `dqa_quorum_shortfalls_total` | counter | — (merges below the quorum) |
/// | `dqa_rebalance_plans_total` | counter | `reason` = `permanent-loss`/`drain`/`join`/`load-skew` |
/// | `dqa_rebalance_migrated_total` | counter | — (sub-collection ownership transfers applied) |
/// | `dqa_rebalance_throttled_total` | counter | `cause` = `stalled`/`saturated`/`yielding` |
/// | `dqa_rebalance_ownership_epoch` | gauge | — (monotone ownership-map epoch) |
/// | `dqa_rebalance_converged` | gauge | — (1 while every sub-collection has a live owner) |
/// | `dqa_rebalance_heal_seconds` | histogram | — (loss/join detected → convergence restored) |
/// | `dqa_integrity_checksum_failures_total` | counter | `target` = `index`/`journal`/`message` |
/// | `dqa_integrity_quarantined` | gauge | — (sub-collections currently quarantined) |
/// | `dqa_integrity_scrubbed_total` | counter | — (shard verifications completed by the scrubber) |
/// | `dqa_integrity_scrub_progress` | gauge | — (scrub-cycle position, 0..1) |
/// | `dqa_integrity_scrub_throttled_total` | counter | — (scrub steps deferred for admission headroom) |
/// | `dqa_integrity_repairs_total` | counter | `source` = `replica`/`rebuild` |
/// | `dqa_integrity_degraded_total` | counter | — (questions answered Coverage-degraded by quarantine) |
pub mod names {
    /// Per-module latency histogram (Table 8). Label `module`.
    pub const MODULE_SECONDS: &str = "dqa_module_seconds";
    /// End-to-end per-question response time histogram.
    pub const QUESTION_SECONDS: &str = "dqa_question_seconds";
    /// Distribution-overhead histogram (Table 9). Label `part`.
    pub const OVERHEAD_SECONDS: &str = "dqa_overhead_seconds";
    /// Completed questions by outcome. Label `outcome`.
    pub const QUESTIONS_TOTAL: &str = "dqa_questions_total";
    /// Dispatcher migrations (Table 7). Label `kind` = `qa`/`pr`/`ap`.
    pub const MIGRATIONS_TOTAL: &str = "dqa_migrations_total";
    /// Speculative chunk re-issues against stragglers.
    pub const SPECULATIONS_TOTAL: &str = "dqa_speculations_total";
    /// Phases shed by the deadline/admission policy. Label `module`.
    pub const SHEDS_TOTAL: &str = "dqa_sheds_total";
    /// Sends that timed out against a bounded ingress queue.
    pub const BACKPRESSURE_TOTAL: &str = "dqa_backpressure_total";
    /// Workers detected dead and their work re-queued.
    pub const WORKER_FAILURES_TOTAL: &str = "dqa_worker_failures_total";
    /// Overload-breaker trips excluding a node from allocation.
    pub const BREAKER_TRIPS_TOTAL: &str = "dqa_breaker_trips_total";
    /// Trace events dropped by the bounded flight recorder.
    pub const TRACE_DROPPED_TOTAL: &str = "dqa_trace_dropped_total";
    /// Eq. 1–3 load per node. Labels `node`, `module` = `QA`/`PR`/`AP`.
    pub const NODE_LOAD: &str = "dqa_node_load";
    /// Questions currently admitted and executing.
    pub const IN_FLIGHT: &str = "dqa_in_flight";
    /// Questions parked at the admission gate.
    pub const ADMISSION_WAITING: &str = "dqa_admission_waiting";
    /// Depth of a node's bounded ingress queue. Label `node`.
    pub const QUEUE_DEPTH: &str = "dqa_queue_depth";
    /// Standby coordinators promoted to leader (lease expiries acted on).
    pub const FAILOVERS_TOTAL: &str = "dqa_failovers_total";
    /// Journal appends rejected because the writer's term was stale —
    /// the visible proof that a zombie ex-leader's grants were fenced.
    pub const FENCED_GRANTS_TOTAL: &str = "dqa_fenced_grants_total";
    /// Records durably appended to the question journal.
    pub const JOURNAL_RECORDS_TOTAL: &str = "dqa_journal_records_total";
    /// Journal records folded back into coordinator state on recovery.
    pub const REPLAYED_RECORDS_TOTAL: &str = "dqa_replayed_records_total";
    /// In-flight questions a successor coordinator resumed (not restarted).
    pub const RESUMED_QUESTIONS_TOTAL: &str = "dqa_resumed_questions_total";
    /// Leader-crash to questions-resumed recovery latency.
    pub const RECOVERY_SECONDS: &str = "dqa_recovery_seconds";
    /// The coordinator term currently in force (fencing token).
    pub const LEADER_TERM: &str = "dqa_leader_term";
    /// Broker-side per-shard request ledger. Labels `shard`, `status`.
    pub const SHARD_REQUESTS_TOTAL: &str = "dqa_shard_requests_total";
    /// Broker-observed per-shard response latency. Label `shard`.
    pub const SHARD_SECONDS: &str = "dqa_shard_seconds";
    /// 1 while a shard's circuit breaker is open. Label `shard`.
    pub const SHARD_BREAKER_OPEN: &str = "dqa_shard_breaker_open";
    /// Hedged shard retries issued by the broker.
    pub const HEDGES_TOTAL: &str = "dqa_hedges_total";
    /// Hedged replies used instead of the primary's.
    pub const HEDGE_WINS_TOTAL: &str = "dqa_hedge_wins_total";
    /// Scatter-gathered questions merged into a federation answer.
    pub const MERGES_TOTAL: &str = "dqa_merges_total";
    /// Merges that closed below the configured shard quorum.
    pub const QUORUM_SHORTFALLS_TOTAL: &str = "dqa_quorum_shortfalls_total";
    /// Migration plans minted by the rebalancer. Label `reason`.
    pub const REBALANCE_PLANS_TOTAL: &str = "dqa_rebalance_plans_total";
    /// Sub-collection ownership transfers applied.
    pub const REBALANCE_MIGRATED_TOTAL: &str = "dqa_rebalance_migrated_total";
    /// Migration steps deferred by the throttle. Label `cause`.
    pub const REBALANCE_THROTTLED_TOTAL: &str = "dqa_rebalance_throttled_total";
    /// Monotone ownership-map epoch (staleness fence for routing).
    pub const REBALANCE_OWNERSHIP_EPOCH: &str = "dqa_rebalance_ownership_epoch";
    /// 1 while every sub-collection is owned by a live node, else 0.
    pub const REBALANCE_CONVERGED: &str = "dqa_rebalance_converged";
    /// Loss/join detection to convergence-restored latency.
    pub const REBALANCE_HEAL_SECONDS: &str = "dqa_rebalance_heal_seconds";
    /// Checksum verifications that failed. Label `target` =
    /// `index`/`journal`/`message` — every one of these is a corruption
    /// that was *caught* instead of silently served.
    pub const INTEGRITY_CHECKSUM_FAILURES_TOTAL: &str = "dqa_integrity_checksum_failures_total";
    /// Sub-collections currently quarantined (detected-damaged and not
    /// yet repaired).
    pub const INTEGRITY_QUARANTINED: &str = "dqa_integrity_quarantined";
    /// Shard verifications the background scrubber has completed.
    pub const INTEGRITY_SCRUBBED_TOTAL: &str = "dqa_integrity_scrubbed_total";
    /// Position within the current scrub cycle, 0..1.
    pub const INTEGRITY_SCRUB_PROGRESS: &str = "dqa_integrity_scrub_progress";
    /// Scrub steps deferred because question admission lacked headroom.
    pub const INTEGRITY_SCRUB_THROTTLED_TOTAL: &str = "dqa_integrity_scrub_throttled_total";
    /// Quarantined sub-collections restored. Label `source` =
    /// `replica` (verified federation copy) / `rebuild` (from corpus).
    pub const INTEGRITY_REPAIRS_TOTAL: &str = "dqa_integrity_repairs_total";
    /// Questions answered with explicitly degraded Coverage because a
    /// quarantined sub-collection was skipped.
    pub const INTEGRITY_DEGRADED_TOTAL: &str = "dqa_integrity_degraded_total";
}
