//! Point-in-time metric snapshots and their exporters.
//!
//! A [`Snapshot`] is deterministically ordered (`BTreeMap` keyed by the
//! canonical `name{label="value"}` string), derives `PartialEq`, and
//! serializes to stable JSON — which is what lets the simulator assert
//! bit-identical metrics across seeded replays. [`Snapshot::to_prometheus`]
//! renders the text exposition format; [`validate_prometheus`] is the
//! parser the CI smoke job runs against that output.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Canonical metric key: `name` alone, or `name{k="v",k2="v2"}` with
/// label pairs sorted by key and values escaped Prometheus-style.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * pairs.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Split a canonical key back into its base name and label pairs.
pub fn split_key(key: &str) -> (&str, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key, Vec::new());
    };
    let base = &key[..brace];
    let body = key[brace..].trim_start_matches('{').trim_end_matches('}');
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else { break };
        let k = rest[..eq].to_string();
        let after = &rest[eq + 1..];
        let Some(stripped) = after.strip_prefix('"') else {
            break;
        };
        // Scan to the closing unescaped quote.
        let mut value = String::new();
        let mut chars = stripped.char_indices();
        let mut end = stripped.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, e)) = chars.next() {
                        value.push(match e {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = i;
                    break;
                }
                other => value.push(other),
            }
        }
        labels.push((k, value));
        rest = stripped[end..]
            .trim_start_matches('"')
            .trim_start_matches(',');
    }
    (base, labels)
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Merged view of one histogram: per-bucket counts (not cumulative),
/// with `counts.len() == bounds.len() + 1` — the last slot is the
/// overflow (`+Inf`) bucket.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (`le`, inclusive), strictly increasing.
    pub bounds: Vec<f64>,
    /// Observations per bucket; last element counts `> bounds.last()`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the q-th observation. Estimates are within one bucket
    /// width of the true value for in-range samples; observations past
    /// the last bound clamp to it.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(f64::INFINITY));
            }
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// A deterministically ordered snapshot of a whole registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by canonical key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by canonical key.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by canonical key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value for an exact canonical key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of every counter in the `base` family across label values.
    pub fn counter_family(&self, base: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| split_key(k).0 == base)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Stable pretty-printed JSON (BTreeMap order, shortest-roundtrip
    /// floats — byte-identical for identical registries).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parse a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid metrics JSON: {e}"))
    }

    /// Render the Prometheus text exposition format, one `# TYPE` line
    /// per family, histogram buckets cumulative with a `+Inf` terminator.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeSet<&str> = BTreeSet::new();
        for (key, v) in &self.counters {
            let (base, _) = split_key(key);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} counter");
            }
            let _ = writeln!(out, "{key} {v}");
        }
        for (key, v) in &self.gauges {
            let (base, _) = split_key(key);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} gauge");
            }
            let _ = writeln!(out, "{key} {v}");
        }
        for (key, h) in &self.histograms {
            let (base, labels) = split_key(key);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} histogram");
            }
            let label_prefix = if labels.is_empty() {
                String::new()
            } else {
                let mut s = String::new();
                for (k, v) in &labels {
                    let _ = write!(s, "{k}=\"{}\",", escape_label(v));
                }
                s
            };
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{label_prefix}le=\"{le}\"}} {cumulative}"
                );
            }
            let tail = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", label_prefix.trim_end_matches(','))
            };
            let _ = writeln!(out, "{base}_sum{tail} {}", h.sum);
            let _ = writeln!(out, "{base}_count{tail} {}", h.count);
        }
        out
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate Prometheus exposition text: legal metric/label names, no
/// duplicate samples, parseable values, at most one `# TYPE` per family,
/// and complete histogram families (`_bucket` + `_sum` + `_count` with a
/// `+Inf` terminator). Returns the number of samples on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut bucket_families: BTreeSet<String> = BTreeSet::new();
    let mut inf_buckets: BTreeSet<String> = BTreeSet::new();
    let mut plain: BTreeSet<String> = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or(format!("line {n}: bare # TYPE"))?;
                    let kind = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: illegal metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {n}: duplicate # TYPE for {name}"));
                    }
                }
                Some("HELP") => {}
                _ => return Err(format!("line {n}: unrecognized comment {line:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(format!("line {n}: no value in {line:?}")),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
        let (name, labels) = split_key(series);
        if !valid_metric_name(name) {
            return Err(format!("line {n}: illegal metric name {name:?}"));
        }
        for (k, _) in &labels {
            if !valid_metric_name(k) || k.contains(':') {
                return Err(format!("line {n}: illegal label name {k:?}"));
            }
        }
        if !samples.insert(series.to_string()) {
            return Err(format!("line {n}: duplicate sample {series}"));
        }
        if let Some(family) = name.strip_suffix("_bucket") {
            bucket_families.insert(family.to_string());
            if labels.iter().any(|(k, v)| k == "le" && v == "+Inf") {
                inf_buckets.insert(family.to_string());
            }
        } else {
            plain.insert(name.to_string());
        }
    }
    for family in &bucket_families {
        if !plain.contains(&format!("{family}_sum")) || !plain.contains(&format!("{family}_count"))
        {
            return Err(format!("histogram {family} missing _sum/_count"));
        }
        if !inf_buckets.contains(family) {
            return Err(format!("histogram {family} missing +Inf bucket"));
        }
    }
    Ok(samples.len())
}

/// One labelled interval on a timeline, in clock seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// What the interval covers (e.g. a module name).
    pub label: String,
    /// Start, seconds since the clock epoch.
    pub start: f64,
    /// End, seconds since the clock epoch.
    pub end: f64,
}

impl Span {
    /// Construct a span; `end` is clamped to at least `start`.
    pub fn new(label: impl Into<String>, start: f64, end: f64) -> Span {
        Span {
            label: label.into(),
            start,
            end: end.max(start),
        }
    }

    /// Seconds covered.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Render spans as an ASCII waterfall, `width` columns wide:
///
/// ```text
/// QP    |##                  |   0.000s +0.020s
/// PR    |  ########          |   0.020s +1.760s
/// ```
pub fn render_waterfall(spans: &[Span], width: usize) -> Vec<String> {
    if spans.is_empty() {
        return Vec::new();
    }
    let width = width.max(10);
    let lo = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let hi = spans
        .iter()
        .map(|s| s.end)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-9);
    let label_w = spans
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let col = |t: f64| (((t - lo) / range) * width as f64).round() as usize;
    spans
        .iter()
        .map(|s| {
            let a = col(s.start).min(width);
            let b = col(s.end).clamp(a + 1, width).max(a + 1);
            let mut bar = String::with_capacity(width);
            for i in 0..width {
                bar.push(if i >= a && i < b { '#' } else { ' ' });
            }
            format!(
                "{:<label_w$} |{bar}| {:>8.3}s +{:.3}s",
                s.label,
                s.start,
                s.duration()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_canonical_and_split_back() {
        let k = metric_key("dqa_x", &[("b", "2"), ("a", "1")]);
        assert_eq!(k, r#"dqa_x{a="1",b="2"}"#);
        let (base, labels) = split_key(&k);
        assert_eq!(base, "dqa_x");
        assert_eq!(
            labels,
            vec![("a".into(), "1".into()), ("b".into(), "2".into())]
        );
        assert_eq!(split_key("dqa_plain"), ("dqa_plain", vec![]));
    }

    #[test]
    fn label_escaping_round_trips() {
        let k = metric_key("m", &[("path", "a\"b\\c")]);
        let (_, labels) = split_key(&k);
        assert_eq!(labels[0].1, "a\"b\\c");
    }

    #[test]
    fn prometheus_output_validates() {
        let mut snap = Snapshot::default();
        snap.counters
            .insert(metric_key("dqa_q_total", &[("outcome", "answered")]), 3);
        snap.counters
            .insert(metric_key("dqa_q_total", &[("outcome", "rejected")]), 1);
        snap.gauges.insert("dqa_in_flight".into(), 2.0);
        snap.histograms.insert(
            metric_key("dqa_module_seconds", &[("module", "PR")]),
            HistogramSnapshot {
                bounds: vec![1.0, 2.0],
                counts: vec![3, 1, 1],
                count: 5,
                sum: 6.5,
            },
        );
        let text = snap.to_prometheus();
        let n = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(n, 3 + 3 + 2); // 2 counters + gauge + 3 buckets + sum + count
        assert!(text.contains("# TYPE dqa_module_seconds histogram"));
        assert!(text.contains(r#"dqa_module_seconds_bucket{module="PR",le="+Inf"} 5"#));
        assert!(text.contains(r#"dqa_module_seconds_sum{module="PR"} 6.5"#));
    }

    #[test]
    fn validator_rejects_duplicates_and_bad_names() {
        assert!(validate_prometheus("x 1\nx 2\n").is_err());
        assert!(validate_prometheus("9bad 1\n").is_err());
        assert!(validate_prometheus("ok 1\nok2 nope\n").is_err());
        assert!(validate_prometheus("h_bucket{le=\"+Inf\"} 1\n").is_err()); // no _sum/_count
        assert!(validate_prometheus("ok 1\n# TYPE ok counter\n# TYPE ok counter\n").is_err());
        assert_eq!(validate_prometheus("ok 1\nok2 2\n"), Ok(2));
    }

    #[test]
    fn json_round_trips_bit_identically() {
        let mut snap = Snapshot::default();
        snap.gauges.insert("dqa_load".into(), 0.1 + 0.2); // non-representable sum
        snap.histograms.insert(
            "dqa_h".into(),
            HistogramSnapshot {
                bounds: vec![0.001, 2.5],
                counts: vec![1, 0, 2],
                count: 3,
                sum: 7.123456789012345,
            },
        );
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn quantiles_hit_bucket_upper_bounds() {
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0, 4.0],
            counts: vec![5, 3, 2, 0],
            count: 10,
            sum: 15.0,
        };
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.8), 2.0);
        assert_eq!(h.quantile(1.0), 4.0);
        assert_eq!(h.mean(), 1.5);
    }

    #[test]
    fn waterfall_orders_and_scales() {
        let spans = vec![
            Span::new("QP", 0.0, 0.5),
            Span::new("PR", 0.5, 3.0),
            Span::new("AP", 3.0, 4.0),
        ];
        let lines = render_waterfall(&spans, 20);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("QP"));
        assert!(lines[1].contains('#'));
        // PR covers more than half the range; its bar is the longest.
        let hashes = |s: &str| s.chars().filter(|c| *c == '#').count();
        assert!(hashes(&lines[1]) > hashes(&lines[0]));
        assert!(hashes(&lines[1]) > hashes(&lines[2]));
    }

    #[test]
    fn empty_waterfall_is_empty() {
        assert!(render_waterfall(&[], 40).is_empty());
    }

    #[test]
    fn counter_family_sums_across_labels() {
        let mut snap = Snapshot::default();
        snap.counters
            .insert(metric_key("dqa_m_total", &[("kind", "pr")]), 2);
        snap.counters
            .insert(metric_key("dqa_m_total", &[("kind", "ap")]), 3);
        snap.counters.insert("dqa_other_total".into(), 7);
        assert_eq!(snap.counter_family("dqa_m_total"), 5);
        assert_eq!(snap.counter(r#"dqa_m_total{kind="pr"}"#), 2);
        assert_eq!(snap.counter("absent"), 0);
    }
}
