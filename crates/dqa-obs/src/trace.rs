//! Causal spans, critical-path attribution and Perfetto export.
//!
//! Metrics aggregate; they cannot say *why one question* took 1.4 s when
//! the p50 is 200 ms. This module adds the missing causal layer: every
//! stage a question passes through — admission, broker scatter-gather,
//! hedged shard retries, per-node chunk execution, quorum merge, journal
//! replay, rebalance migration steps — records a [`CausalSpan`] into a
//! bounded [`FlightRecorder`], and a critical-path analyzer folds a
//! finished question's span tree into a per-question Table 8/9: how many
//! seconds of the end-to-end latency each component contributed, split
//! into queue wait vs. service time.
//!
//! Determinism is load-bearing. Span identity never touches an RNG or
//! the wall clock: trace ids derive from `splitmix64(question ⊕ seed)`
//! and span ids from a per-trace ordinal chain, so a seeded simulator
//! double run emits *byte-identical* exported span streams (the
//! `trace_gate` bench and the chaos replay tests assert exactly that).
//! Timestamps come only from the [`Clock`] seam — wall time in the
//! runtime, virtual time in the DES — which `dqa-lint`'s `raw-instant`
//! rule enforces for this module just like for the runtime crates.
//!
//! The critical path is computed by the classic backward walk: starting
//! from the root span's end, repeatedly step to the latest-ending child
//! that gates completion, attributing uncovered gaps to the parent's own
//! time. The attributed components therefore partition the root interval
//! exactly — their sum equals the measured end-to-end latency up to f64
//! addition error, which is what lets `trace_gate` hold a per-component
//! budget without slack for attribution loss.

use crate::metrics::Counter;
use crate::ring::FlightRecorder;
use crate::Clock;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Sebastiano Vigna's splitmix64 mixer: the deterministic, seedable hash
/// from which every trace and span id derives. Not an RNG — a pure
/// function of its input, so replays reproduce identities bit-for-bit.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain-separation salt so a trace id never collides with the span-id
/// chain of another trace.
const TRACE_SALT: u64 = 0xd6e8_feb8_6659_fd93;

/// The trace id for `question` under `seed` — identical on the broker,
/// the shard runtime and the simulator as long as they agree on the
/// seed, which is what stitches their span streams into one trace.
pub fn derive_trace_id(question: u64, seed: u64) -> u64 {
    splitmix64(question ^ splitmix64(seed ^ TRACE_SALT))
}

/// The `ordinal`-th span id (1-based) in `trace`'s deterministic chain.
/// [`TraceRecorder::next_id`] walks this chain one step per emitted
/// span; standalone exporters (the virtual-time simulator) call it
/// directly to mint the same ids post hoc from recorded state.
pub fn derive_span_id(trace: u64, ordinal: u64) -> u64 {
    splitmix64(trace ^ splitmix64(ordinal))
}

/// A set of cause tags explaining *why* a span exists or ran long.
///
/// Stored as a bitmask so spans stay `Clone`-cheap in the flight
/// recorder; rendered in a fixed order for deterministic export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CauseSet(u8);

impl CauseSet {
    /// The span is a hedged duplicate of a slow primary request.
    pub const HEDGED: CauseSet = CauseSet(1);
    /// The span re-ran work that previously failed.
    pub const RETRIED: CauseSet = CauseSet(1 << 1);
    /// The span was deferred by the rebalance/admission throttle.
    pub const THROTTLED: CauseSet = CauseSet(1 << 2);
    /// The question closed degraded (shed phase or quorum shortfall).
    pub const DEGRADED: CauseSet = CauseSet(1 << 3);
    /// The span is a speculative re-issue against a straggler.
    pub const SPECULATED: CauseSet = CauseSet(1 << 4);
    /// The span continues work resumed from the journal after a crash.
    pub const RESUMED: CauseSet = CauseSet(1 << 5);
    /// The question skipped quarantined (corruption-detected)
    /// sub-collections and closed with explicitly reduced coverage.
    pub const QUARANTINED: CauseSet = CauseSet(1 << 6);

    /// The empty set.
    pub fn none() -> CauseSet {
        CauseSet(0)
    }

    /// This set plus `other`.
    #[must_use]
    pub fn with(self, other: CauseSet) -> CauseSet {
        CauseSet(self.0 | other.0)
    }

    /// Whether every tag in `other` is present.
    pub fn contains(self, other: CauseSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no tag is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The tags as labels, in fixed declaration order.
    pub fn labels(self) -> Vec<&'static str> {
        const ALL: [(CauseSet, &str); 7] = [
            (CauseSet::HEDGED, "hedged"),
            (CauseSet::RETRIED, "retried"),
            (CauseSet::THROTTLED, "throttled"),
            (CauseSet::DEGRADED, "degraded"),
            (CauseSet::SPECULATED, "speculated"),
            (CauseSet::RESUMED, "resumed"),
            (CauseSet::QUARANTINED, "quarantined"),
        ];
        ALL.iter()
            .filter(|(c, _)| self.contains(*c))
            .map(|(_, l)| *l)
            .collect()
    }

    /// Comma-joined labels (`""` when empty) — the export/render form.
    pub fn render(self) -> String {
        self.labels().join(",")
    }
}

/// One timed stage of a question's execution, linked into a tree by
/// `trace`/`parent`. Times are `Clock` seconds — wall time in the
/// runtime, virtual time in the DES; the identity fields never depend
/// on either.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalSpan {
    /// The question's trace id ([`derive_trace_id`]).
    pub trace: u64,
    /// This span's id, unique within the trace.
    pub id: u64,
    /// Enclosing span, `None` only for the per-question root.
    pub parent: Option<u64>,
    /// Component name: `question`, `admission`, `QP`, `PR`, `chunk`,
    /// `shard`, `hedge`, `merge`, `replay`, `migration`, …
    pub name: String,
    /// The node (or shard) the work ran on, when it ran somewhere.
    pub node: Option<u32>,
    /// Start time, `Clock` seconds.
    pub start: f64,
    /// End time, `Clock` seconds (clamped ≥ `start` on construction).
    pub end: f64,
    /// Seconds at the head of the span spent waiting in a queue before
    /// service began (admission wait, ingress-queue wait, hedge delay).
    pub queue_wait: f64,
    /// Why this span exists / ran long.
    pub causes: CauseSet,
}

impl CausalSpan {
    /// A span over `[start, end]`; `end` is clamped to `start` and
    /// `queue_wait` to the span duration so intervals stay well-formed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trace: u64,
        parent: Option<u64>,
        name: &str,
        node: Option<u32>,
        start: f64,
        end: f64,
        queue_wait: f64,
        causes: CauseSet,
    ) -> CausalSpan {
        let end = end.max(start);
        CausalSpan {
            trace,
            id: 0,
            parent,
            name: name.to_string(),
            node,
            start,
            end,
            queue_wait: queue_wait.clamp(0.0, end - start),
            causes,
        }
    }

    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Records [`CausalSpan`]s against a [`Clock`] into a bounded
/// [`FlightRecorder`], assigning deterministic ids.
///
/// Span ids are `splitmix64(trace ⊕ splitmix64(ordinal))` where the
/// ordinal counts spans emitted for that trace. A single-threaded
/// recorder (the DES) therefore assigns bit-identical ids across seeded
/// replays; the threaded runtime keeps ids unique but their assignment
/// order follows the actual interleaving, which is exactly what the
/// trace should show.
#[derive(Debug)]
pub struct TraceRecorder {
    clock: Arc<dyn Clock>,
    seed: u64,
    ring: FlightRecorder<CausalSpan>,
    dropped: Counter,
    ordinals: Mutex<BTreeMap<u64, u64>>,
}

impl TraceRecorder {
    /// A recorder over `clock` with a drop-oldest ring of `capacity`
    /// spans; evictions count into `dropped` (bind it to
    /// [`crate::names::TRACE_DROPPED_TOTAL`] so `dqa report` can warn).
    pub fn new(
        clock: Arc<dyn Clock>,
        seed: u64,
        capacity: usize,
        dropped: Counter,
    ) -> TraceRecorder {
        TraceRecorder {
            clock,
            seed,
            ring: FlightRecorder::new(capacity),
            dropped,
            ordinals: Mutex::new(BTreeMap::new()),
        }
    }

    /// Current `Clock` time — the only sanctioned timestamp source for
    /// spans recorded here.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The identity seed (mix it into shard-scoped recorders so broker
    /// and shards agree on trace ids).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trace id for `question` under this recorder's seed.
    pub fn trace_id(&self, question: u64) -> u64 {
        derive_trace_id(question, self.seed)
    }

    /// The next span id in `trace`'s deterministic ordinal chain.
    pub fn next_id(&self, trace: u64) -> u64 {
        let mut ordinals = self.ordinals.lock();
        let ordinal = ordinals.entry(trace).or_insert(0);
        *ordinal += 1;
        derive_span_id(trace, *ordinal)
    }

    /// Assign `span` an id from its trace's chain, record it, and return
    /// the id (for parenting children). Ring overflow bumps the dropped
    /// counter — loss is counted, never silent.
    pub fn emit(&self, mut span: CausalSpan) -> u64 {
        span.id = self.next_id(span.trace);
        let id = span.id;
        if self.ring.push(span) {
            self.dropped.inc();
        }
        id
    }

    /// Every retained span, oldest first.
    pub fn spans(&self) -> Vec<CausalSpan> {
        self.ring.snapshot()
    }

    /// Retained spans of one trace, oldest first.
    pub fn for_trace(&self, trace: u64) -> Vec<CausalSpan> {
        self.ring.filtered(|s| s.trace == trace)
    }

    /// Spans evicted by the bounded ring since construction.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// Checks that `spans` form well-nested per-trace trees: exactly one
/// root per trace, no orphan parent ids, no duplicate span ids, and
/// every child interval contained in its parent's (within `1 µs` of f64
/// slack for times measured through a wall clock).
pub fn validate_nesting(spans: &[CausalSpan]) -> Result<(), String> {
    const SLACK: f64 = 1e-6;
    let mut by_id: BTreeMap<(u64, u64), &CausalSpan> = BTreeMap::new();
    let mut roots: BTreeMap<u64, usize> = BTreeMap::new();
    for s in spans {
        if s.end < s.start {
            return Err(format!("span {:016x} ends before it starts", s.id));
        }
        if by_id.insert((s.trace, s.id), s).is_some() {
            return Err(format!(
                "duplicate span id {:016x} in trace {:016x}",
                s.id, s.trace
            ));
        }
        if s.parent.is_none() {
            *roots.entry(s.trace).or_insert(0) += 1;
        }
    }
    for (trace, n) in &roots {
        if *n != 1 {
            return Err(format!("trace {trace:016x} has {n} roots, want exactly 1"));
        }
    }
    for s in spans {
        let Some(pid) = s.parent else {
            continue;
        };
        let Some(parent) = by_id.get(&(s.trace, pid)) else {
            return Err(format!(
                "span {:016x} in trace {:016x} has orphan parent {:016x}",
                s.id, s.trace, pid
            ));
        };
        if !roots.contains_key(&s.trace) {
            return Err(format!("trace {:016x} has children but no root", s.trace));
        }
        if s.start + SLACK < parent.start || s.end > parent.end + SLACK {
            return Err(format!(
                "span {:016x} [{:.6}, {:.6}] escapes parent {:016x} [{:.6}, {:.6}]",
                s.id, s.start, s.end, pid, parent.start, parent.end
            ));
        }
    }
    Ok(())
}

/// Critical-path seconds attributed to one component name, split into
/// queue wait vs. service time.
#[derive(Debug, Clone, PartialEq)]
pub struct PathComponent {
    /// The span name the seconds belong to.
    pub name: String,
    /// Seconds the path spent queue-waiting in this component.
    pub queue: f64,
    /// Seconds the path spent in service in this component.
    pub service: f64,
}

impl PathComponent {
    /// Queue plus service seconds.
    pub fn total(&self) -> f64 {
        self.queue + self.service
    }
}

/// The critical-path decomposition of one finished question: which
/// components the end-to-end latency was spent in.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The trace this path was extracted from.
    pub trace: u64,
    /// Root span start.
    pub start: f64,
    /// Root span end.
    pub end: f64,
    /// Components ordered by total seconds, largest first.
    pub components: Vec<PathComponent>,
}

impl CriticalPath {
    /// Measured end-to-end seconds (root span duration).
    pub fn total(&self) -> f64 {
        self.end - self.start
    }

    /// Sum of attributed component seconds. The backward walk partitions
    /// the root interval, so this equals [`CriticalPath::total`] up to
    /// f64 addition error — the `trace_gate` invariant.
    pub fn attributed(&self) -> f64 {
        self.components.iter().map(PathComponent::total).sum()
    }

    /// Seconds attributed to queue wait across the path.
    pub fn queue_total(&self) -> f64 {
        self.components.iter().map(|c| c.queue).sum()
    }

    /// Seconds attributed to `name` (0.0 when absent from the path).
    pub fn seconds_for(&self, name: &str) -> f64 {
        self.components
            .iter()
            .filter(|c| c.name == name)
            .map(PathComponent::total)
            .sum()
    }

    /// A per-question Table 8/9: component, queue, service, share.
    pub fn render(&self) -> String {
        let total = self.total().max(f64::MIN_POSITIVE);
        let mut out = format!(
            "critical path · trace {:016x} · end-to-end {:.6}s\n{:<12} {:>12} {:>12} {:>7}\n",
            self.trace,
            self.total(),
            "component",
            "queue-s",
            "service-s",
            "share"
        );
        for c in &self.components {
            let _ = writeln!(
                out,
                "{:<12} {:>12.6} {:>12.6} {:>6.1}%",
                c.name,
                c.queue,
                c.service,
                100.0 * c.total() / total
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>12.6} {:>12.6} {:>6.1}%",
            "attributed",
            self.queue_total(),
            self.attributed() - self.queue_total(),
            100.0 * self.attributed() / total
        );
        out
    }
}

/// Extracts the critical path from one trace's spans (pass the output of
/// [`TraceRecorder::for_trace`]). Returns `None` when no root span is
/// present. Spans from other traces are ignored.
pub fn critical_path(spans: &[CausalSpan]) -> Option<CriticalPath> {
    let root = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .max_by(|a, b| a.duration().total_cmp(&b.duration()))?;
    let mut children: BTreeMap<u64, Vec<&CausalSpan>> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.trace == root.trace) {
        if let Some(pid) = s.parent {
            children.entry(pid).or_default().push(s);
        }
    }
    let mut acc: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    walk_backward(root, root.start, root.end, &children, &mut acc);
    let mut components: Vec<PathComponent> = acc
        .into_iter()
        .map(|(name, (queue, service))| PathComponent {
            name,
            queue,
            service,
        })
        .collect();
    components.sort_by(|a, b| b.total().total_cmp(&a.total()).then(a.name.cmp(&b.name)));
    Some(CriticalPath {
        trace: root.trace,
        start: root.start,
        end: root.end,
        components,
    })
}

/// The backward walk: from `hi` toward `lo`, the latest-ending child
/// inside the window gates completion; gaps between gating children are
/// the parent's own time. Each call attributes exactly `hi - lo`
/// seconds, so the decomposition partitions the root interval.
fn walk_backward(
    span: &CausalSpan,
    lo: f64,
    hi: f64,
    children: &BTreeMap<u64, Vec<&CausalSpan>>,
    acc: &mut BTreeMap<String, (f64, f64)>,
) {
    let mut cursor = hi;
    let mut kids: Vec<&CausalSpan> = children.get(&span.id).cloned().unwrap_or_default();
    kids.sort_by(|a, b| {
        b.end
            .total_cmp(&a.end)
            .then(b.start.total_cmp(&a.start))
            .then(b.id.cmp(&a.id))
    });
    for child in kids {
        if cursor <= lo {
            break;
        }
        let c_end = child.end.min(cursor);
        let c_start = child.start.clamp(lo, c_end);
        if c_end <= c_start {
            continue; // fully overlapped by a later-ending sibling
        }
        if cursor > c_end {
            attribute_self(span, c_end, cursor, acc);
        }
        walk_backward(child, c_start, c_end, children, acc);
        cursor = c_start;
    }
    if cursor > lo {
        attribute_self(span, lo, cursor, acc);
    }
}

/// Attributes the self-time interval `[a, b]` of `span`, splitting it at
/// `start + queue_wait` into queue vs. service seconds.
fn attribute_self(span: &CausalSpan, a: f64, b: f64, acc: &mut BTreeMap<String, (f64, f64)>) {
    let queue_end = span.start + span.queue_wait;
    let queue = (b.min(queue_end) - a.max(span.start)).max(0.0);
    let entry = acc.entry(span.name.clone()).or_insert((0.0, 0.0));
    entry.0 += queue;
    entry.1 += (b - a) - queue;
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes `spans` as chrome-tracing JSON loadable by Perfetto
/// (`ph: "X"` complete events, `ts`/`dur` in microseconds).
///
/// The output is deterministic: spans sort by `(trace, start, id)`,
/// traces map to `pid`s in first-appearance order, and floats print in
/// Rust's shortest-roundtrip form — so two seeded DES runs serialize to
/// byte-identical files.
pub fn to_chrome_json(spans: &[CausalSpan]) -> String {
    let mut sorted: Vec<&CausalSpan> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        a.trace
            .cmp(&b.trace)
            .then(a.start.total_cmp(&b.start))
            .then(a.id.cmp(&b.id))
    });
    let mut pids: BTreeMap<u64, usize> = BTreeMap::new();
    for s in &sorted {
        let next = pids.len() + 1;
        pids.entry(s.trace).or_insert(next);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = match s.parent {
            Some(p) => format!("{p:016x}"),
            None => String::new(),
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{}\",\"queue_wait_us\":{}}}}}",
            json_escape(&s.name),
            if s.causes.is_empty() { "span".to_string() } else { s.causes.render() },
            pids.get(&s.trace).copied().unwrap_or(0),
            s.node.map_or(0, |n| n + 1),
            s.start * 1e6,
            (s.end - s.start) * 1e6,
            s.trace,
            s.id,
            parent,
            s.queue_wait * 1e6,
        );
    }
    out.push_str("]}\n");
    out
}

/// Validates that `json` is chrome-tracing shaped: a `traceEvents`
/// array of objects each carrying `name`/`ph`/`pid`/`tid`/`ts`/`dur`.
/// Returns the event count — the CI trace-smoke check.
pub fn validate_chrome_json(json: &str) -> Result<usize, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "pid", "tid", "ts", "dur"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing {key}"));
            }
        }
        if ev.get("ph").and_then(|v| v.as_str()) != Some("X") {
            return Err(format!("event {i} is not a complete (ph=X) event"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    fn recorder(seed: u64, capacity: usize) -> TraceRecorder {
        TraceRecorder::new(
            Arc::new(ManualClock::new()),
            seed,
            capacity,
            Counter::live(),
        )
    }

    /// A small federated-looking tree:
    /// question [0,10] qw=1 ── shard0 [1,6] ── chunk [2,5]
    ///                     └─ shard1 [1,9] qw=0.5 ── hedge [4,9]
    ///                     └─ merge [9,10]
    fn sample_tree(rec: &TraceRecorder) -> u64 {
        let trace = rec.trace_id(7);
        let root = rec.emit(CausalSpan::new(
            trace,
            None,
            "question",
            None,
            0.0,
            10.0,
            1.0,
            CauseSet::none(),
        ));
        let s0 = rec.emit(CausalSpan::new(
            trace,
            Some(root),
            "shard",
            Some(0),
            1.0,
            6.0,
            0.0,
            CauseSet::none(),
        ));
        rec.emit(CausalSpan::new(
            trace,
            Some(s0),
            "chunk",
            Some(0),
            2.0,
            5.0,
            0.0,
            CauseSet::none(),
        ));
        let s1 = rec.emit(CausalSpan::new(
            trace,
            Some(root),
            "shard",
            Some(1),
            1.0,
            9.0,
            0.5,
            CauseSet::none(),
        ));
        rec.emit(CausalSpan::new(
            trace,
            Some(s1),
            "hedge",
            Some(1),
            4.0,
            9.0,
            0.0,
            CauseSet::HEDGED,
        ));
        rec.emit(CausalSpan::new(
            trace,
            Some(root),
            "merge",
            None,
            9.0,
            10.0,
            0.0,
            CauseSet::none(),
        ));
        trace
    }

    #[test]
    fn trace_ids_are_deterministic_and_seed_separated() {
        assert_eq!(derive_trace_id(7, 42), derive_trace_id(7, 42));
        assert_ne!(derive_trace_id(7, 42), derive_trace_id(7, 43));
        assert_ne!(derive_trace_id(7, 42), derive_trace_id(8, 42));
    }

    #[test]
    fn span_ids_chain_deterministically_per_trace() {
        let a = recorder(42, 64);
        let b = recorder(42, 64);
        let t = a.trace_id(1);
        assert_eq!(a.next_id(t), b.next_id(t));
        assert_eq!(a.next_id(t), b.next_id(t));
        assert_ne!(a.next_id(t), a.next_id(t));
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let rec = recorder(1, 2);
        let t = rec.trace_id(0);
        for _ in 0..5 {
            rec.emit(CausalSpan::new(
                t,
                None,
                "x",
                None,
                0.0,
                1.0,
                0.0,
                CauseSet::none(),
            ));
        }
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.spans().len(), 2);
    }

    #[test]
    fn nesting_validator_accepts_sample_and_rejects_orphans() {
        let rec = recorder(42, 64);
        sample_tree(&rec);
        let mut spans = rec.spans();
        validate_nesting(&spans).expect("sample tree is well-nested");
        spans[2].parent = Some(0xdead_beef);
        assert!(validate_nesting(&spans).unwrap_err().contains("orphan"));
    }

    #[test]
    fn nesting_validator_rejects_escaping_child() {
        let rec = recorder(42, 64);
        let t = rec.trace_id(1);
        let root = rec.emit(CausalSpan::new(
            t,
            None,
            "q",
            None,
            0.0,
            1.0,
            0.0,
            CauseSet::none(),
        ));
        rec.emit(CausalSpan::new(
            t,
            Some(root),
            "c",
            None,
            0.5,
            2.0,
            0.0,
            CauseSet::none(),
        ));
        assert!(validate_nesting(&rec.spans())
            .unwrap_err()
            .contains("escapes"));
    }

    #[test]
    fn critical_path_partitions_end_to_end_exactly() {
        let rec = recorder(42, 64);
        let trace = sample_tree(&rec);
        let spans = rec.for_trace(trace);
        let path = critical_path(&spans).expect("root present");
        assert_eq!(path.total(), 10.0);
        // merge gates [9,10]; shard1 gates [1,9] (hedge [4,9] inside it);
        // question self-time is [0,1], all queue wait.
        assert!((path.attributed() - path.total()).abs() < 1e-9);
        assert_eq!(path.seconds_for("merge"), 1.0);
        assert_eq!(path.seconds_for("hedge"), 5.0);
        assert_eq!(path.seconds_for("shard"), 3.0);
        assert_eq!(path.seconds_for("question"), 1.0);
        assert_eq!(path.queue_total(), 1.5); // question qw 1.0 + shard1 qw 0.5
                                             // chunk/shard0 are off the path entirely.
        assert_eq!(path.seconds_for("chunk"), 0.0);
        let table = path.render();
        assert!(table.contains("critical path"));
        assert!(table.contains("attributed"));
    }

    #[test]
    fn queue_service_split_respects_queue_head() {
        let rec = recorder(1, 16);
        let t = rec.trace_id(2);
        rec.emit(CausalSpan::new(
            t,
            None,
            "q",
            None,
            0.0,
            4.0,
            3.0,
            CauseSet::none(),
        ));
        let path = critical_path(&rec.spans()).expect("root");
        assert_eq!(path.queue_total(), 3.0);
        assert_eq!(path.attributed() - path.queue_total(), 1.0);
    }

    #[test]
    fn chrome_export_is_valid_and_byte_stable() {
        let make = || {
            let rec = recorder(42, 64);
            sample_tree(&rec);
            to_chrome_json(&rec.spans())
        };
        let a = make();
        let b = make();
        assert_eq!(a, b, "seeded double emission must serialize identically");
        let n = validate_chrome_json(&a).expect("perfetto-loadable");
        assert_eq!(n, 6);
        assert!(a.contains("\"cat\":\"hedged\""));
        assert!(a.contains("\"queue_wait_us\":1000000"));
    }

    #[test]
    fn chrome_validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome_json("not json").is_err());
    }

    #[test]
    fn cause_sets_compose_and_render_in_fixed_order() {
        let c = CauseSet::HEDGED
            .with(CauseSet::DEGRADED)
            .with(CauseSet::RETRIED);
        assert!(c.contains(CauseSet::HEDGED));
        assert!(!c.contains(CauseSet::THROTTLED));
        assert_eq!(c.render(), "hedged,retried,degraded");
        assert_eq!(CauseSet::none().render(), "");
    }
}
