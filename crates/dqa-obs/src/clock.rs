//! The wall-time/virtual-time seam.
//!
//! Everything in this workspace that *records* time does so through
//! [`Clock`], a monotone seconds-since-epoch source. The thread runtime
//! plugs in [`WallClock`]; the discrete-event simulator plugs in
//! [`ManualClock`] and advances it from the engine's event loop. The
//! instrumentation code on top (phase timers, trace timestamps, metric
//! observations) is identical in both worlds — which is what makes their
//! metric snapshots directly comparable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone clock reporting seconds since its epoch.
pub trait Clock: Send + Sync {
    /// Seconds elapsed since the clock's epoch.
    fn now(&self) -> f64;
}

/// Wall time, anchored at construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A clock driven by its owner — virtual time for the simulator, or a
/// fixed point for tests. `set` stores the f64 bit pattern atomically, so
/// readers on other threads always see a consistent value.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0.0 seconds.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move the clock to `t` seconds. Callers are responsible for
    /// monotonicity (the simulator's event loop already guarantees it).
    pub fn set(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_reports_what_was_set() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        c.set(12.5);
        assert_eq!(c.now(), 12.5);
        c.set(100.25);
        assert_eq!(c.now(), 100.25);
    }

    #[test]
    fn clocks_are_object_safe() {
        let wall = WallClock::new();
        let manual = ManualClock::new();
        manual.set(3.0);
        let clocks: Vec<&dyn Clock> = vec![&wall, &manual];
        assert_eq!(clocks[1].now(), 3.0);
    }
}
