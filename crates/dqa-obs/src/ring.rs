//! Bounded flight recorder: a drop-oldest ring buffer for trace events.
//!
//! Long soaks used to grow the trace log without bound; the recorder
//! caps it at a fixed capacity and *counts* what it evicts so loss is
//! visible (export the count as `dqa_trace_dropped_total`), never silent.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Default capacity: 64k events, roughly 40 questions' worth of fully
/// traced lifecycle on an 8-node cluster — plenty for post-mortem while
/// bounding a soak's memory.
pub const DEFAULT_FLIGHT_RECORDER_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Ring<T> {
    buf: VecDeque<T>,
    dropped: u64,
}

/// A bounded, thread-safe, drop-oldest event buffer.
#[derive(Debug)]
pub struct FlightRecorder<T> {
    inner: Mutex<Ring<T>>,
    cap: usize,
}

impl<T: Clone> FlightRecorder<T> {
    /// A recorder holding at most `cap` events (`cap` is clamped to 1).
    pub fn new(cap: usize) -> FlightRecorder<T> {
        let cap = cap.max(1);
        FlightRecorder {
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap.min(4096)),
                dropped: 0,
            }),
            cap,
        }
    }

    /// Append an event, evicting the oldest when full. Returns `true`
    /// when an event was evicted to make room.
    pub fn push(&self, event: T) -> bool {
        let mut ring = self.inner.lock();
        let evicted = ring.buf.len() >= self.cap;
        if evicted {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
        evicted
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Retained events matching `pred`, oldest first.
    pub fn filtered(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        self.inner
            .lock()
            .buf
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_under_capacity() {
        let r = FlightRecorder::new(10);
        for i in 0..5 {
            assert!(!r.push(i));
        }
        assert_eq!(r.snapshot(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn drops_oldest_and_counts_when_full() {
        let r = FlightRecorder::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![4, 5, 6]);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn filtered_preserves_order() {
        let r = FlightRecorder::new(16);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.filtered(|&x| x % 3 == 0), vec![0, 3, 6, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = FlightRecorder::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.snapshot(), vec![2]);
        assert_eq!(r.dropped(), 1);
    }
}
