#![warn(missing_docs)]
//! Unified, seeded fault-injection framework.
//!
//! The paper's failure story (Figs. 5c/6b) is crash-stop only: a
//! partition's node dies, the sender or receiver reschedules it. A
//! production-scale DQA system faces a richer fault space — transient
//! crashes with rejoin, stragglers, lost/delayed/duplicated messages, and
//! dispatchers acting on stale load information. This crate defines one
//! declarative [`FaultSchedule`] that *both* backends honor:
//!
//! * `cluster-sim` interprets event times as **virtual seconds** and folds
//!   link faults into the network model (per-flow drop → modeled
//!   retransmission timeout, delay → an added latency stage, duplication →
//!   doubled bytes on the wire);
//! * `dqa-runtime` interprets event times as **scaled wall-clock offsets**
//!   (a `ChaosDriver` thread applies crashes/rejoins/straggler windows) and
//!   wraps its crossbeam links in a fault-injecting channel layer that
//!   drops, delays or duplicates envelopes.
//!
//! Every stochastic decision is a pure function of `(seed, flow, sequence
//! number)` via a splitmix64 hash — no RNG state is threaded through the
//! backends, so the same schedule replays bit-for-bit regardless of thread
//! interleaving or call order, which is what makes the DES double-run
//! determinism tests possible under every fault type.

use qa_types::NodeId;
use serde::{Deserialize, Serialize};

/// One scheduled fault. Times are seconds: virtual seconds in the DES,
/// scaled wall-clock offsets in the thread runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node crashes at `at`; with `rejoin = Some(t)` it comes back at
    /// `t` with empty state (transient failure), otherwise it is gone for
    /// good (the paper's crash-stop model).
    Crash {
        /// Node that fails.
        node: NodeId,
        /// Failure time (seconds).
        at: f64,
        /// Optional rejoin time (seconds, must be > `at`).
        rejoin: Option<f64>,
    },
    /// The node runs slow between `from` and `until`: its CPU and disk
    /// progress at `factor` of normal speed (`0.25` = four times slower).
    Straggler {
        /// Node that straggles.
        node: NodeId,
        /// Window start (seconds).
        from: f64,
        /// Window end (seconds).
        until: f64,
        /// Speed multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The *coordinator* (meta-scheduler leader) crashes at `at`. Unlike
    /// a worker [`FaultEvent::Crash`], this kills scheduling state, not a
    /// sub-collection: a standby must win the lease, replay the question
    /// journal and resume every in-flight question. With
    /// `rejoin = Some(t)` the ex-leader comes back at `t` as a fenced
    /// standby (its stale-term grants must be rejected).
    CoordinatorCrash {
        /// Crash time (seconds).
        at: f64,
        /// Optional time the ex-leader rejoins as a standby.
        rejoin: Option<f64>,
    },
    /// The leader is partitioned from its standbys in `[from, until)`:
    /// it keeps serving questions but its heartbeats are lost, so a
    /// standby promotes itself once the lease expires and the old leader
    /// becomes a zombie whose journal appends are fenced until the
    /// partition heals.
    LeaderPartition {
        /// Partition start (seconds).
        from: f64,
        /// Partition end (seconds).
        until: f64,
    },
    /// A whole coordinator *shard* behind the federation broker goes down
    /// at `at`: its coordinator, nodes and replica stop answering. With
    /// `rejoin = Some(t)` the shard serves again from `t`. Questions
    /// scattered while the shard is down (or in flight across the window)
    /// lose that shard's partial answer — the broker degrades federation
    /// coverage, it never fails the question. Per-shard sims and the
    /// board-level chaos driver ignore this event: only the broker tier
    /// consumes it.
    ShardDown {
        /// Shard index within the federation.
        shard: u32,
        /// Failure time (seconds).
        at: f64,
        /// Optional time the shard serves again.
        rejoin: Option<f64>,
    },
    /// The broker is partitioned from shard `shard` in `[from, until)`:
    /// the shard keeps running but its replies cannot reach the broker,
    /// which is indistinguishable (to the broker) from the shard being
    /// down — except the shard needs no recovery when the window closes.
    ShardPartition {
        /// Shard index within the federation.
        shard: u32,
        /// Partition start (seconds).
        from: f64,
        /// Partition end (seconds).
        until: f64,
    },
    /// The federation broker itself crashes at `at`. With
    /// `rejoin = Some(t)` a restarted broker resumes service at `t` and
    /// questions arriving inside the outage are *held* and re-offered at
    /// the rejoin (never lost); a permanent crash turns every later
    /// arrival into an honest rejection with a retry hint.
    BrokerCrash {
        /// Crash time (seconds).
        at: f64,
        /// Optional time the restarted broker serves again.
        rejoin: Option<f64>,
    },
    /// Operator decommission (`drain`): the node leaves the pool at `at`
    /// *gracefully* — the elastic tier evacuates its sub-collections onto
    /// survivors before it stops serving. Unlike [`FaultEvent::Crash`]
    /// nothing is lost; unlike a straggler window the departure is
    /// permanent (only a later [`FaultEvent::NodeJoin`] brings it back).
    NodeDecommission {
        /// Node that drains out.
        node: NodeId,
        /// Drain time (seconds).
        at: f64,
    },
    /// A standby (or previously drained) node joins the pool at `at`: the
    /// elastic tier migrates the newcomer's fair share of sub-collections
    /// onto it, throttled behind foreground traffic.
    NodeJoin {
        /// Node that joins.
        node: NodeId,
        /// Join time (seconds).
        at: f64,
    },
    /// Migration stall window `[from, until)`: the rebalancer may plan but
    /// must not apply steps — modeling an operator pause or a saturated
    /// replication path. Foreground questions are unaffected; healing
    /// resumes when the window closes.
    RebalanceStall {
        /// Window start (seconds).
        from: f64,
        /// Window end (seconds).
        until: f64,
    },
    /// A single bit flips inside the targeted byte store at `at` — the
    /// fail-silent fault the checksummed `DQAIDX2` format and the journal
    /// frame CRCs exist to catch. *Which* byte and bit are not stored in
    /// the event: [`CorruptionJudge`] derives them as a pure function of
    /// `(seed, target, buffer length)`, so replays corrupt the same bit
    /// regardless of thread interleaving.
    BitFlip {
        /// The byte store the flip lands in.
        target: CorruptTarget,
        /// Corruption time (seconds).
        at: f64,
    },
    /// The targeted byte store is cut short at `at`, as if the writer
    /// lost power mid-write: every byte past a judge-chosen tear point is
    /// dropped. Against a journal segment this is the classic torn tail;
    /// against an index segment it must surface as a length/CRC error,
    /// never a silently smaller index.
    TornWrite {
        /// The byte store that is torn.
        target: CorruptTarget,
        /// Corruption time (seconds).
        at: f64,
    },
}

/// Which byte store a [`FaultEvent::BitFlip`] / [`FaultEvent::TornWrite`]
/// lands in. Each target maps to a stable `u64` flow key so the
/// [`CorruptionJudge`]'s decisions are pure per-target functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CorruptTarget {
    /// The persisted index segment of one sub-collection.
    IndexSegment {
        /// Sub-collection whose segment is damaged.
        sub: u32,
    },
    /// One segment file of the coordinator's question journal.
    JournalSegment {
        /// Zero-based journal segment index.
        segment: u64,
    },
    /// An in-flight message on the given logical flow (e.g. the
    /// destination node id): the payload is corrupted on the wire.
    Message {
        /// Logical flow the corrupted message travels on.
        flow: u64,
    },
}

impl CorruptTarget {
    /// Stable flow key for the splitmix64 decision hash. The high bits
    /// separate the three target spaces so an index segment and a journal
    /// segment with the same numeric id corrupt independently.
    pub fn flow_key(&self) -> u64 {
        match *self {
            CorruptTarget::IndexSegment { sub } => 0x1000_0000_0000_0000 | u64::from(sub),
            CorruptTarget::JournalSegment { segment } => 0x2000_0000_0000_0000 | segment,
            CorruptTarget::Message { flow } => 0x3000_0000_0000_0000 | flow,
        }
    }
}

/// Per-message link-fault probabilities. Applied independently to every
/// message on the coordinator↔worker links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a message is lost.
    pub loss: f64,
    /// Probability a message is delayed by [`LinkFaults::delay_secs`].
    pub delay_prob: f64,
    /// Added latency of a delayed message (seconds).
    pub delay_secs: f64,
    /// Probability a message is duplicated.
    pub dup: f64,
    /// Modeled retransmission timeout the DES charges for a lost message
    /// before the retry goes out (seconds). The thread runtime does not
    /// retransmit at the link layer — a lost envelope is recovered by the
    /// coordinator's retry/speculation policy.
    pub retransmit_secs: f64,
}

impl LinkFaults {
    /// A fault-free link.
    pub fn none() -> LinkFaults {
        LinkFaults {
            loss: 0.0,
            delay_prob: 0.0,
            delay_secs: 0.0,
            dup: 0.0,
            retransmit_secs: 0.5,
        }
    }

    /// True when every probability is zero (the judge can short-circuit).
    pub fn is_clean(&self) -> bool {
        self.loss <= 0.0 && self.delay_prob <= 0.0 && self.dup <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// The declarative fault schedule both backends consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for every per-message/per-packet decision.
    pub seed: u64,
    /// Crash/rejoin and straggler events.
    pub events: Vec<FaultEvent>,
    /// Link-level message faults.
    pub link: LinkFaults,
    /// Probability a load-monitor broadcast packet is lost (dispatchers
    /// then act on the receiver's stale view of that node).
    pub monitor_loss: f64,
}

impl FaultSchedule {
    /// The empty schedule: no faults, seed 0.
    pub fn none() -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            events: Vec::new(),
            link: LinkFaults::none(),
            monitor_loss: 0.0,
        }
    }

    /// A schedule with the given decision seed and no faults yet.
    pub fn seeded(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            ..FaultSchedule::none()
        }
    }

    /// Add a permanent crash (crash-stop, the paper's model).
    pub fn crash(mut self, node: NodeId, at: f64) -> Self {
        self.events.push(FaultEvent::Crash {
            node,
            at,
            rejoin: None,
        });
        self
    }

    /// Add a transient crash: down at `at`, back (with reset state) at
    /// `rejoin`.
    pub fn crash_rejoin(mut self, node: NodeId, at: f64, rejoin: f64) -> Self {
        debug_assert!(rejoin > at, "rejoin must follow the crash");
        self.events.push(FaultEvent::Crash {
            node,
            at,
            rejoin: Some(rejoin),
        });
        self
    }

    /// Add a straggler window: `node` runs at `factor` speed in
    /// `[from, until)`.
    pub fn straggler(mut self, node: NodeId, from: f64, until: f64, factor: f64) -> Self {
        debug_assert!(until > from, "straggler window must be non-empty");
        debug_assert!(factor > 0.0, "factor must be positive");
        self.events.push(FaultEvent::Straggler {
            node,
            from,
            until,
            factor: factor.clamp(1e-3, 1.0),
        });
        self
    }

    /// Add a permanent coordinator (leader) crash at `at`.
    pub fn coordinator_crash(mut self, at: f64) -> Self {
        self.events
            .push(FaultEvent::CoordinatorCrash { at, rejoin: None });
        self
    }

    /// Add a transient coordinator crash: the leader dies at `at` and
    /// rejoins as a fenced standby at `rejoin`.
    pub fn coordinator_crash_rejoin(mut self, at: f64, rejoin: f64) -> Self {
        debug_assert!(rejoin > at, "rejoin must follow the crash");
        self.events.push(FaultEvent::CoordinatorCrash {
            at,
            rejoin: Some(rejoin),
        });
        self
    }

    /// Add a leader partition window `[from, until)` during which the
    /// leader's heartbeats are lost and a standby takes over.
    pub fn leader_partition(mut self, from: f64, until: f64) -> Self {
        debug_assert!(until > from, "partition window must be non-empty");
        self.events
            .push(FaultEvent::LeaderPartition { from, until });
        self
    }

    /// Add a permanent federation-shard crash at `at`.
    pub fn shard_down(mut self, shard: u32, at: f64) -> Self {
        self.events.push(FaultEvent::ShardDown {
            shard,
            at,
            rejoin: None,
        });
        self
    }

    /// Add a transient federation-shard crash: down at `at`, serving
    /// again at `rejoin`.
    pub fn shard_down_rejoin(mut self, shard: u32, at: f64, rejoin: f64) -> Self {
        debug_assert!(rejoin > at, "rejoin must follow the crash");
        self.events.push(FaultEvent::ShardDown {
            shard,
            at,
            rejoin: Some(rejoin),
        });
        self
    }

    /// Add a broker↔shard partition window `[from, until)`.
    pub fn shard_partition(mut self, shard: u32, from: f64, until: f64) -> Self {
        debug_assert!(until > from, "partition window must be non-empty");
        self.events
            .push(FaultEvent::ShardPartition { shard, from, until });
        self
    }

    /// Add a transient federation-broker crash: down at `at`, back
    /// (holding and re-offering the outage's arrivals) at `rejoin`.
    pub fn broker_crash_rejoin(mut self, at: f64, rejoin: f64) -> Self {
        debug_assert!(rejoin > at, "rejoin must follow the crash");
        self.events.push(FaultEvent::BrokerCrash {
            at,
            rejoin: Some(rejoin),
        });
        self
    }

    /// Add a permanent federation-broker crash at `at`: later arrivals
    /// are rejected with a retry hint, never silently dropped.
    pub fn broker_crash(mut self, at: f64) -> Self {
        self.events
            .push(FaultEvent::BrokerCrash { at, rejoin: None });
        self
    }

    /// Add an operator decommission (graceful drain) of `node` at `at`.
    pub fn decommission(mut self, node: NodeId, at: f64) -> Self {
        self.events.push(FaultEvent::NodeDecommission { node, at });
        self
    }

    /// Add a node join at `at`: a standby or previously drained node
    /// enters the pool and receives its fair share of sub-collections.
    pub fn node_join(mut self, node: NodeId, at: f64) -> Self {
        self.events.push(FaultEvent::NodeJoin { node, at });
        self
    }

    /// Add a migration stall window `[from, until)` during which the
    /// rebalancer must not apply steps.
    pub fn rebalance_stall(mut self, from: f64, until: f64) -> Self {
        debug_assert!(until > from, "stall window must be non-empty");
        self.events.push(FaultEvent::RebalanceStall { from, until });
        self
    }

    /// Flip one judge-chosen bit in sub-collection `sub`'s persisted
    /// index segment at `at`.
    pub fn bit_flip_index(mut self, sub: u32, at: f64) -> Self {
        self.events.push(FaultEvent::BitFlip {
            target: CorruptTarget::IndexSegment { sub },
            at,
        });
        self
    }

    /// Tear sub-collection `sub`'s persisted index segment at `at`: every
    /// byte past the judge-chosen tear point is lost.
    pub fn torn_write_index(mut self, sub: u32, at: f64) -> Self {
        self.events.push(FaultEvent::TornWrite {
            target: CorruptTarget::IndexSegment { sub },
            at,
        });
        self
    }

    /// Flip one judge-chosen bit inside journal segment `segment` at
    /// `at` — a *mid-segment* frame corruption, not a torn tail.
    pub fn bit_flip_journal(mut self, segment: u64, at: f64) -> Self {
        self.events.push(FaultEvent::BitFlip {
            target: CorruptTarget::JournalSegment { segment },
            at,
        });
        self
    }

    /// Tear journal segment `segment` at `at` (a torn tail when it is the
    /// final segment, a corrupt segment otherwise).
    pub fn torn_write_journal(mut self, segment: u64, at: f64) -> Self {
        self.events.push(FaultEvent::TornWrite {
            target: CorruptTarget::JournalSegment { segment },
            at,
        });
        self
    }

    /// Corrupt one in-flight message on `flow` at `at`.
    pub fn bit_flip_message(mut self, flow: u64, at: f64) -> Self {
        self.events.push(FaultEvent::BitFlip {
            target: CorruptTarget::Message { flow },
            at,
        });
        self
    }

    /// The corruption judge for this schedule: derives byte offsets, bit
    /// positions and tear points for [`FaultEvent::BitFlip`] /
    /// [`FaultEvent::TornWrite`] events as pure functions of the seed.
    pub fn corruption_judge(&self) -> CorruptionJudge {
        CorruptionJudge {
            seed: self.seed ^ 0xc0de_dead_beef_cafe,
        }
    }

    /// Set the message-loss probability.
    pub fn message_loss(mut self, p: f64) -> Self {
        self.link.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Set the message-delay probability and added latency.
    pub fn message_delay(mut self, p: f64, secs: f64) -> Self {
        self.link.delay_prob = p.clamp(0.0, 1.0);
        self.link.delay_secs = secs.max(0.0);
        self
    }

    /// Set the message-duplication probability.
    pub fn message_dup(mut self, p: f64) -> Self {
        self.link.dup = p.clamp(0.0, 1.0);
        self
    }

    /// Set the load-monitor packet-loss probability.
    pub fn monitor_loss(mut self, p: f64) -> Self {
        self.monitor_loss = p.clamp(0.0, 1.0);
        self
    }

    /// True when the schedule injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty() && self.link.is_clean() && self.monitor_loss <= 0.0
    }

    /// The link-fault judge for this schedule.
    pub fn link_judge(&self) -> LinkJudge {
        LinkJudge {
            seed: self.seed,
            link: self.link,
        }
    }

    /// The monitor packet-loss judge for this schedule.
    pub fn monitor_judge(&self) -> LossJudge {
        LossJudge {
            seed: self.seed ^ 0x9e37_79b9_7f4a_7c15,
            p: self.monitor_loss,
        }
    }
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self::none()
    }
}

/// What the link does with one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkDecision {
    /// Delivered unharmed.
    Deliver,
    /// Dropped on the floor.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Delivered after the given extra latency (seconds).
    Delay(f64),
}

/// Stateless per-message fault decider: a pure function of
/// `(seed, flow, msg)`. Flows number logical links (e.g. the destination
/// node); `msg` is the sender's per-flow sequence number.
#[derive(Debug, Clone, Copy)]
pub struct LinkJudge {
    seed: u64,
    link: LinkFaults,
}

impl LinkJudge {
    /// Decide the fate of message `msg` on `flow`.
    pub fn decide(&self, flow: u64, msg: u64) -> LinkDecision {
        if self.link.is_clean() {
            return LinkDecision::Deliver;
        }
        let u = unit(self.seed, flow, msg);
        let l = self.link.loss;
        let d = l + self.link.dup;
        let y = d + self.link.delay_prob;
        if u < l {
            LinkDecision::Drop
        } else if u < d {
            LinkDecision::Duplicate
        } else if u < y {
            LinkDecision::Delay(self.link.delay_secs)
        } else {
            LinkDecision::Deliver
        }
    }

    /// The modeled retransmission timeout for lost messages (seconds).
    pub fn retransmit_secs(&self) -> f64 {
        self.link.retransmit_secs
    }
}

/// Stateless corruption decider: *where* a [`FaultEvent::BitFlip`] or
/// [`FaultEvent::TornWrite`] lands in a byte buffer, as a pure function
/// of `(seed, target, buffer length)`. The backends pass the pristine
/// buffer; the judge mutates a copy. No RNG state, so a replayed
/// schedule damages the same bit of the same byte every time.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionJudge {
    seed: u64,
}

impl CorruptionJudge {
    /// The byte offset a bit flip against `target` lands on, for a buffer
    /// of `len` bytes. Deterministic per `(seed, target, len)`.
    pub fn byte_offset(&self, target: CorruptTarget, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed, target.flow_key(), 1) % len as u64) as usize
    }

    /// The bit (0–7) within that byte that flips.
    pub fn bit(&self, target: CorruptTarget) -> u8 {
        (mix(self.seed, target.flow_key(), 2) % 8) as u8
    }

    /// Flip one bit of `buf` in place. Returns the damaged byte offset,
    /// or `None` for an empty buffer (nothing to damage).
    pub fn flip(&self, target: CorruptTarget, buf: &mut [u8]) -> Option<usize> {
        if buf.is_empty() {
            return None;
        }
        let off = self.byte_offset(target, buf.len());
        buf[off] ^= 1 << self.bit(target);
        Some(off)
    }

    /// The tear point for a torn write against `target`: the buffer keeps
    /// `[0, point)` and loses the rest. Always in `[0, len)` for a
    /// non-empty buffer, so a torn write is never a no-op.
    pub fn tear_point(&self, target: CorruptTarget, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed, target.flow_key(), 3) % len as u64) as usize
    }

    /// Truncate `buf` at the judge-chosen tear point. Returns the new
    /// length, or `None` for an empty buffer.
    pub fn tear(&self, target: CorruptTarget, buf: &mut Vec<u8>) -> Option<usize> {
        if buf.is_empty() {
            return None;
        }
        let point = self.tear_point(target, buf.len());
        buf.truncate(point);
        Some(point)
    }
}

/// Stateless single-probability loss decider (monitor packets).
#[derive(Debug, Clone, Copy)]
pub struct LossJudge {
    seed: u64,
    p: f64,
}

impl LossJudge {
    /// True when packet `msg` on `flow` is lost.
    pub fn lost(&self, flow: u64, msg: u64) -> bool {
        self.p > 0.0 && unit(self.seed, flow, msg) < self.p
    }
}

/// Bounded retry policy with exponential backoff, shared by both backends
/// (the runtime converts seconds to `Duration`, the DES uses virtual
/// seconds directly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum recovery rounds per phase before the coordinator degrades.
    pub budget: u32,
    /// Base backoff before the first retry (seconds).
    pub backoff_base: f64,
    /// Backoff ceiling (seconds).
    pub backoff_cap: f64,
}

impl RetryPolicy {
    /// A policy with the given budget and a small default backoff.
    pub fn with_budget(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based), exponentially
    /// doubled and capped.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.min(24); // avoid overflow; cap dominates anyway
        (self.backoff_base * f64::from(1u32 << exp.min(24))).min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 16,
            backoff_base: 0.002,
            backoff_cap: 0.1,
        }
    }
}

/// splitmix64 finalizer over the (seed, flow, msg) triple.
fn mix(seed: u64, flow: u64, msg: u64) -> u64 {
    let mut z = seed
        .wrapping_add(flow.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(msg.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from the hash.
fn unit(seed: u64, flow: u64, msg: u64) -> f64 {
    (mix(seed, flow, msg) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn builder_accumulates_events() {
        let s = FaultSchedule::seeded(7)
            .crash(n(1), 10.0)
            .crash_rejoin(n(2), 5.0, 25.0)
            .straggler(n(0), 0.0, 50.0, 0.25)
            .message_loss(0.1)
            .message_delay(0.05, 0.2)
            .message_dup(0.02)
            .monitor_loss(0.3);
        assert_eq!(s.events.len(), 3);
        assert!(!s.is_clean());
        assert_eq!(s.link.loss, 0.1);
        assert_eq!(s.monitor_loss, 0.3);
        assert!(FaultSchedule::none().is_clean());
    }

    #[test]
    fn coordinator_fault_builders() {
        let s = FaultSchedule::seeded(11)
            .coordinator_crash(8.0)
            .coordinator_crash_rejoin(20.0, 35.0)
            .leader_partition(50.0, 60.0);
        assert_eq!(s.events.len(), 3);
        assert!(!s.is_clean());
        assert_eq!(
            s.events[0],
            FaultEvent::CoordinatorCrash {
                at: 8.0,
                rejoin: None
            }
        );
        assert_eq!(
            s.events[2],
            FaultEvent::LeaderPartition {
                from: 50.0,
                until: 60.0
            }
        );
        // Schedules with coordinator faults still serialize round-trip.
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn federation_fault_builders() {
        let s = FaultSchedule::seeded(13)
            .shard_down(0, 4.0)
            .shard_down_rejoin(1, 6.0, 18.0)
            .shard_partition(2, 10.0, 20.0)
            .broker_crash_rejoin(30.0, 40.0)
            .broker_crash(90.0);
        assert_eq!(s.events.len(), 5);
        assert!(!s.is_clean());
        assert_eq!(
            s.events[0],
            FaultEvent::ShardDown {
                shard: 0,
                at: 4.0,
                rejoin: None
            }
        );
        assert_eq!(
            s.events[2],
            FaultEvent::ShardPartition {
                shard: 2,
                from: 10.0,
                until: 20.0
            }
        );
        assert_eq!(
            s.events[3],
            FaultEvent::BrokerCrash {
                at: 30.0,
                rejoin: Some(40.0)
            }
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn elastic_membership_builders() {
        let s = FaultSchedule::seeded(17)
            .decommission(n(2), 5.0)
            .node_join(n(4), 12.0)
            .rebalance_stall(6.0, 9.0);
        assert_eq!(s.events.len(), 3);
        assert!(!s.is_clean());
        assert_eq!(
            s.events[0],
            FaultEvent::NodeDecommission {
                node: n(2),
                at: 5.0
            }
        );
        assert_eq!(
            s.events[1],
            FaultEvent::NodeJoin {
                node: n(4),
                at: 12.0
            }
        );
        assert_eq!(
            s.events[2],
            FaultEvent::RebalanceStall {
                from: 6.0,
                until: 9.0
            }
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corruption_builders() {
        let s = FaultSchedule::seeded(23)
            .bit_flip_index(2, 4.0)
            .torn_write_index(0, 8.0)
            .bit_flip_journal(1, 12.0)
            .torn_write_journal(0, 14.0)
            .bit_flip_message(3, 16.0);
        assert_eq!(s.events.len(), 5);
        assert!(!s.is_clean());
        assert_eq!(
            s.events[0],
            FaultEvent::BitFlip {
                target: CorruptTarget::IndexSegment { sub: 2 },
                at: 4.0
            }
        );
        assert_eq!(
            s.events[3],
            FaultEvent::TornWrite {
                target: CorruptTarget::JournalSegment { segment: 0 },
                at: 14.0
            }
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corruption_judge_is_deterministic_and_per_target() {
        let s = FaultSchedule::seeded(31).bit_flip_index(0, 1.0);
        let j = s.corruption_judge();
        let idx = CorruptTarget::IndexSegment { sub: 5 };
        let jrn = CorruptTarget::JournalSegment { segment: 5 };
        // Same target + length → same damage, across judge instances.
        let mut a = vec![0u8; 257];
        let mut b = vec![0u8; 257];
        let off_a = j.flip(idx, &mut a).unwrap();
        let off_b = s.corruption_judge().flip(idx, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(off_a, off_b);
        assert_eq!(a.iter().filter(|&&x| x != 0).count(), 1, "exactly one bit");
        assert_eq!(a[off_a].count_ones(), 1);
        // Index segment 5 and journal segment 5 are independent targets.
        assert!(
            j.byte_offset(idx, 100_003) != j.byte_offset(jrn, 100_003) || j.bit(idx) != j.bit(jrn),
            "target spaces must not collide"
        );
    }

    #[test]
    fn torn_write_always_loses_at_least_one_byte() {
        let j = FaultSchedule::seeded(47).corruption_judge();
        for len in [1usize, 2, 9, 1024] {
            let mut buf = vec![0xabu8; len];
            let point = j
                .tear(CorruptTarget::IndexSegment { sub: 1 }, &mut buf)
                .unwrap();
            assert!(point < len, "tear at {point} of {len} dropped nothing");
            assert_eq!(buf.len(), point);
        }
        let mut empty: Vec<u8> = Vec::new();
        assert!(j
            .tear(CorruptTarget::IndexSegment { sub: 1 }, &mut empty)
            .is_none());
        assert!(j
            .flip(CorruptTarget::Message { flow: 0 }, &mut [])
            .is_none());
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let s = FaultSchedule::seeded(42)
            .message_loss(0.2)
            .message_delay(0.2, 0.1)
            .message_dup(0.2);
        let j = s.link_judge();
        // Same triple → same decision, regardless of query order.
        let forward: Vec<_> = (0..100).map(|m| j.decide(3, m)).collect();
        let backward: Vec<_> = (0..100).rev().map(|m| j.decide(3, m)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
        // And a second judge from the same schedule agrees.
        let j2 = s.link_judge();
        assert_eq!(
            forward,
            (0..100).map(|m| j2.decide(3, m)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn probabilities_hit_their_targets_roughly() {
        let s = FaultSchedule::seeded(1).message_loss(0.25);
        let j = s.link_judge();
        let trials = 20_000u64;
        let drops = (0..trials)
            .filter(|&m| j.decide(m % 7, m) == LinkDecision::Drop)
            .count() as f64;
        let rate = drops / trials as f64;
        assert!((0.22..=0.28).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn clean_link_always_delivers_regardless_of_seed() {
        for seed in [0u64, 1, 99] {
            let j = FaultSchedule::seeded(seed).link_judge();
            assert!((0..50).all(|m| j.decide(0, m) == LinkDecision::Deliver));
        }
    }

    #[test]
    fn monitor_judge_is_independent_of_link_judge() {
        let s = FaultSchedule::seeded(5).message_loss(1.0).monitor_loss(0.0);
        assert_eq!(s.link_judge().decide(0, 0), LinkDecision::Drop);
        assert!(!s.monitor_judge().lost(0, 0));
        let s2 = FaultSchedule::seeded(5).monitor_loss(1.0);
        assert!(s2.monitor_judge().lost(0, 0));
        assert_eq!(s2.link_judge().decide(0, 0), LinkDecision::Deliver);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            budget: 4,
            backoff_base: 0.01,
            backoff_cap: 0.05,
        };
        assert!((p.backoff_secs(0) - 0.01).abs() < 1e-12);
        assert!((p.backoff_secs(1) - 0.02).abs() < 1e-12);
        assert!((p.backoff_secs(2) - 0.04).abs() < 1e-12);
        assert!((p.backoff_secs(3) - 0.05).abs() < 1e-12, "capped");
        assert!((p.backoff_secs(30) - 0.05).abs() < 1e-12, "no overflow");
        assert_eq!(RetryPolicy::with_budget(3).budget, 3);
    }

    #[test]
    fn schedule_round_trips_through_serde() {
        let s = FaultSchedule::seeded(9)
            .crash_rejoin(n(1), 2.0, 4.0)
            .straggler(n(0), 1.0, 3.0, 0.5)
            .message_loss(0.1);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
