//! Declarative overload-control policy shared by both backends.
//!
//! The paper's load functions (Eqs. 1–3) route work *away* from busy nodes,
//! but routing alone cannot bound latency once offered load exceeds cluster
//! capacity: queues grow without limit and every question's response time
//! diverges. [`OverloadPolicy`] is the missing admission layer: a bounded
//! admission queue in front of the cluster, caps on in-flight work, a
//! per-question deadline carried from the moment of admission, and a
//! saturation threshold for per-node circuit breakers. The thread runtime
//! (`dqa-runtime`) and the discrete-event simulator (`cluster-sim`) both
//! interpret the same policy so their saturation curves are comparable.
//!
//! All durations are plain `f64` seconds, like `faults::FaultSchedule`: the
//! simulator reads them as virtual time, the runtime converts to wall-clock
//! `Duration`s (scaled by its `fault_time_scale` analogue where relevant).

use serde::{Deserialize, Serialize};

/// Admission-control and load-shedding knobs for one cluster front-end.
///
/// The default policy is fully permissive — unlimited in-flight questions,
/// no deadline, no breaker — so existing single-question call sites behave
/// exactly as before the overload layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadPolicy {
    /// How many questions may wait for an in-flight slot before new
    /// arrivals are rejected outright. `0` means reject as soon as the
    /// in-flight cap is hit (no queueing at all).
    pub admission_queue: usize,
    /// Cluster-wide cap on concurrently admitted questions.
    /// `None` disables admission control entirely.
    pub max_in_flight: Option<usize>,
    /// Per-node cap on resident (hosted) questions; a node at the cap is
    /// skipped at question placement, and if *every* live node is at the
    /// cap the question is rejected. `None` disables the cap.
    pub max_per_node: Option<usize>,
    /// Per-question deadline in seconds, measured from admission (so time
    /// spent waiting in the admission queue counts against it). Phases the
    /// remaining budget can no longer cover are shed. `None` disables
    /// deadline shedding (the runtime's own `ClusterConfig::deadline`
    /// still applies if set).
    pub deadline_secs: Option<f64>,
    /// Retry hint, in seconds, attached to every rejection.
    pub retry_after_secs: f64,
    /// Safety factor applied to per-phase demand estimates when deciding
    /// whether the remaining deadline budget covers the next phase.
    /// `1.0` sheds only when the estimate itself no longer fits; values
    /// above one shed earlier.
    pub shed_headroom: f64,
    /// Per-node circuit breaker: when a node's load-function value for the
    /// module being placed exceeds this threshold, dispatch to it is
    /// suspended for the flap-quarantine window. `None` disables breakers.
    pub breaker_load: Option<f64>,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy::unlimited()
    }
}

impl OverloadPolicy {
    /// The permissive policy: admit everything, shed nothing.
    pub fn unlimited() -> OverloadPolicy {
        OverloadPolicy {
            admission_queue: 0,
            max_in_flight: None,
            max_per_node: None,
            deadline_secs: None,
            retry_after_secs: 0.05,
            shed_headroom: 1.0,
            breaker_load: None,
        }
    }

    /// A server-style policy: cap in-flight questions at `max_in_flight`,
    /// queue up to the same number again, and hint rejected clients to
    /// retry after 50 ms. Deadlines and breakers stay off until set.
    pub fn server(max_in_flight: usize) -> OverloadPolicy {
        OverloadPolicy {
            admission_queue: max_in_flight,
            max_in_flight: Some(max_in_flight),
            ..OverloadPolicy::unlimited()
        }
    }

    /// Set the admission-queue depth.
    pub fn with_queue(mut self, depth: usize) -> OverloadPolicy {
        self.admission_queue = depth;
        self
    }

    /// Set the per-node resident-question cap.
    pub fn with_per_node_cap(mut self, cap: usize) -> OverloadPolicy {
        self.max_per_node = Some(cap);
        self
    }

    /// Set the per-question deadline (seconds from admission).
    pub fn with_deadline(mut self, secs: f64) -> OverloadPolicy {
        self.deadline_secs = Some(secs);
        self
    }

    /// Set the shed-headroom safety factor.
    pub fn with_headroom(mut self, factor: f64) -> OverloadPolicy {
        self.shed_headroom = factor;
        self
    }

    /// Enable the per-node saturation breaker at the given load value.
    pub fn with_breaker(mut self, load: f64) -> OverloadPolicy {
        self.breaker_load = Some(load);
        self
    }

    /// Whether any admission limit is active at all.
    pub fn limits_admission(&self) -> bool {
        self.max_in_flight.is_some() || self.max_per_node.is_some()
    }
}

/// How one offered question left the system. Every question terminates in
/// exactly one of these states; the overload soak asserts the three counts
/// sum back to the offered load (zero silent drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuestionOutcome {
    /// Admitted and answered with full coverage.
    Answered,
    /// Admitted, but shedding or faults degraded coverage below 100 %.
    Degraded,
    /// Refused at admission (queue full, every node at its cap, or the
    /// deadline expired while waiting for a slot).
    Rejected,
}

/// Outcome tally for one offered-load level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadCounts {
    /// Full-coverage completions.
    pub answered: usize,
    /// Partial-coverage completions.
    pub degraded: usize,
    /// Admission rejections.
    pub rejected: usize,
}

impl OverloadCounts {
    /// Record one outcome.
    pub fn record(&mut self, outcome: QuestionOutcome) {
        match outcome {
            QuestionOutcome::Answered => self.answered += 1,
            QuestionOutcome::Degraded => self.degraded += 1,
            QuestionOutcome::Rejected => self.rejected += 1,
        }
    }

    /// Total questions accounted for — must equal the offered count.
    pub fn offered(&self) -> usize {
        self.answered + self.degraded + self.rejected
    }

    /// Fraction of offered questions that did not complete with full
    /// coverage (rejected or degraded). The soak harness asserts this is
    /// monotone in offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        (self.rejected + self.degraded) as f64 / self.offered() as f64
    }

    /// Fraction of offered questions answered with full coverage.
    pub fn goodput(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.answered as f64 / self.offered() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_fully_permissive() {
        let p = OverloadPolicy::default();
        assert!(!p.limits_admission());
        assert!(p.deadline_secs.is_none());
        assert!(p.breaker_load.is_none());
    }

    #[test]
    fn server_policy_caps_and_queues() {
        let p = OverloadPolicy::server(8)
            .with_deadline(2.0)
            .with_breaker(6.0);
        assert_eq!(p.max_in_flight, Some(8));
        assert_eq!(p.admission_queue, 8);
        assert!(p.limits_admission());
        assert_eq!(p.deadline_secs, Some(2.0));
        assert_eq!(p.breaker_load, Some(6.0));
    }

    #[test]
    fn counts_conserve_and_rate_is_sane() {
        let mut c = OverloadCounts::default();
        for _ in 0..6 {
            c.record(QuestionOutcome::Answered);
        }
        for _ in 0..3 {
            c.record(QuestionOutcome::Degraded);
        }
        c.record(QuestionOutcome::Rejected);
        assert_eq!(c.offered(), 10);
        assert!((c.shed_rate() - 0.4).abs() < 1e-12);
        assert!((c.goodput() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn policy_round_trips_through_serde() {
        let p = OverloadPolicy::server(4).with_deadline(1.5);
        let json = serde_json::to_string(&p).unwrap();
        let back: OverloadPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
