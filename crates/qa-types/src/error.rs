//! Error type shared across the workspace.

use crate::ids::{NodeId, QuestionId};
use std::fmt;

/// Errors surfaced by the Q/A subsystems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QaError {
    /// A referenced sub-collection index does not exist.
    UnknownSubCollection(u32),
    /// A question produced no usable keywords.
    NoKeywords(QuestionId),
    /// A node failed while processing a sub-task.
    NodeFailed(NodeId),
    /// The requested configuration is invalid (empty node set, zero chunk
    /// size, weight vector mismatch, …).
    InvalidConfig(String),
    /// Index (de)serialization failed.
    Codec(String),
    /// The distributed runtime lost contact with a peer.
    Disconnected(String),
    /// A peer answered with a message that violates the coordination
    /// protocol (e.g. an AP result on a PR reply channel). The question is
    /// aborted with an error instead of panicking the coordinator.
    Protocol(String),
    /// The cluster refused the question at admission: the admission queue
    /// was full, every live node sat at its resident-question cap, or the
    /// front-end is shutting down. Carries a retry hint in milliseconds.
    Overloaded {
        /// Why admission was refused.
        reason: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for QaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaError::UnknownSubCollection(c) => write!(f, "unknown sub-collection C{c}"),
            QaError::NoKeywords(q) => write!(f, "question {q} produced no keywords"),
            QaError::NodeFailed(n) => write!(f, "node {n} failed"),
            QaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QaError::Codec(msg) => write!(f, "codec error: {msg}"),
            QaError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            QaError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            QaError::Overloaded {
                reason,
                retry_after_ms,
            } => {
                write!(f, "overloaded: {reason} (retry after {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for QaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            QaError::UnknownSubCollection(9).to_string(),
            "unknown sub-collection C9"
        );
        assert_eq!(
            QaError::NoKeywords(QuestionId::new(3)).to_string(),
            "question Q3 produced no keywords"
        );
        assert_eq!(
            QaError::NodeFailed(NodeId::new(2)).to_string(),
            "node N2 failed"
        );
        assert!(QaError::InvalidConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&QaError::Codec("bad".into()));
    }
}
