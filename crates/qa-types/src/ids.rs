//! Strongly-typed identifiers.
//!
//! Every entity that crosses a module or crate boundary is addressed by a
//! newtype over a small integer. The newtypes prevent the classic "passed a
//! paragraph index where a document index was expected" bug and keep hot
//! structures compact (`u32` indices instead of `usize`, per the type-size
//! guidance in the Rust performance book).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw value widened for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a question submitted to the system.
    QuestionId,
    "Q"
);
id_type!(
    /// Identifier of a processing node (a machine in the paper's cluster).
    NodeId,
    "N"
);
id_type!(
    /// Identifier of a document within the full collection.
    DocId,
    "D"
);
id_type!(
    /// Identifier of a sub-collection (the paper splits TREC-9 into 8).
    SubCollectionId,
    "C"
);

/// Identifier of a paragraph: a document plus the paragraph ordinal inside it.
///
/// Paragraphs are the unit of granularity of the PS and AP modules, so this
/// type is hot; it packs into eight bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParagraphId {
    /// Document that contains the paragraph.
    pub doc: DocId,
    /// Zero-based paragraph ordinal within the document.
    pub ordinal: u32,
}

impl ParagraphId {
    /// Construct a paragraph id.
    #[inline]
    pub const fn new(doc: DocId, ordinal: u32) -> Self {
        Self { doc, ordinal }
    }
}

impl fmt::Display for ParagraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.doc, self.ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(QuestionId::new(226).to_string(), "Q226");
        assert_eq!(NodeId::new(3).to_string(), "N3");
        assert_eq!(DocId::new(7).to_string(), "D7");
        assert_eq!(SubCollectionId::new(0).to_string(), "C0");
    }

    #[test]
    fn paragraph_id_orders_by_doc_then_ordinal() {
        let a = ParagraphId::new(DocId::new(1), 5);
        let b = ParagraphId::new(DocId::new(2), 0);
        let c = ParagraphId::new(DocId::new(2), 1);
        assert!(a < b && b < c);
        assert_eq!(b.to_string(), "D2#0");
    }

    #[test]
    fn ids_round_trip_through_serde() {
        let id = QuestionId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42", "transparent serde representation");
        let back: QuestionId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn raw_and_index_agree() {
        let id = DocId::from(9);
        assert_eq!(id.raw(), 9);
        assert_eq!(id.index(), 9usize);
    }
}
