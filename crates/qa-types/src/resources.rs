//! Resources and the weighted load-function machinery.
//!
//! The paper's load functions (Eqs. 1–3) are weighted sums of per-resource
//! loads: `load(P) = w_cpu · cpuLoad(P) + w_disk · diskLoad(P)` where the
//! weights equal the fraction of module execution time spent on each
//! resource (Table 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A schedulable hardware resource.
///
/// "CPU" follows the paper's footnote: the combination of the processing
/// unit and dynamic memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Processor + dynamic memory.
    Cpu,
    /// Disk subsystem.
    Disk,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Cpu => "CPU",
            Resource::Disk => "DISK",
        })
    }
}

/// A per-resource measurement: utilization (0.0 = idle, 1.0 = saturated) or
/// queue length, depending on context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    /// CPU load.
    pub cpu: f64,
    /// Disk load.
    pub disk: f64,
}

impl ResourceVector {
    /// Construct from components.
    pub const fn new(cpu: f64, disk: f64) -> Self {
        Self { cpu, disk }
    }

    /// Access a component by resource kind.
    pub fn get(&self, r: Resource) -> f64 {
        match r {
            Resource::Cpu => self.cpu,
            Resource::Disk => self.disk,
        }
    }
}

/// Weights of a load function: how significant each resource is for a task.
///
/// Invariant: both weights are non-negative; they typically sum to 1 because
/// they are measured as fractions of execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceWeights {
    /// Weight of the CPU load component.
    pub cpu: f64,
    /// Weight of the disk load component.
    pub disk: f64,
}

impl ResourceWeights {
    /// Weights measured for the whole Q/A task on the paper's platform
    /// (Table 3, first row).
    pub const QA: ResourceWeights = ResourceWeights {
        cpu: 0.79,
        disk: 0.21,
    };
    /// Weights for the Paragraph Retrieval module (Table 3, second row).
    pub const PR: ResourceWeights = ResourceWeights {
        cpu: 0.20,
        disk: 0.80,
    };
    /// Weights for the Answer Processing module (Table 3, third row).
    pub const AP: ResourceWeights = ResourceWeights {
        cpu: 1.00,
        disk: 0.00,
    };
    /// Uniform weights, used by the ablation bench.
    pub const UNIFORM: ResourceWeights = ResourceWeights {
        cpu: 0.5,
        disk: 0.5,
    };

    /// Construct weights, normalizing so they sum to 1 (when nonzero).
    pub fn normalized(cpu: f64, disk: f64) -> Self {
        let s = cpu + disk;
        if s > 0.0 {
            Self {
                cpu: cpu / s,
                disk: disk / s,
            }
        } else {
            Self::UNIFORM
        }
    }

    /// Evaluate the weighted load function (Eqs. 1–3) for a load vector.
    pub fn load(&self, v: ResourceVector) -> f64 {
        self.cpu * v.cpu + self.disk * v.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants_match_paper() {
        assert_eq!(ResourceWeights::QA.cpu, 0.79);
        assert_eq!(ResourceWeights::QA.disk, 0.21);
        assert_eq!(ResourceWeights::PR.cpu, 0.20);
        assert_eq!(ResourceWeights::PR.disk, 0.80);
        assert_eq!(ResourceWeights::AP.cpu, 1.00);
        assert_eq!(ResourceWeights::AP.disk, 0.00);
    }

    #[test]
    fn load_is_weighted_sum() {
        let v = ResourceVector::new(0.5, 1.0);
        // Eq. 5: 0.2 * 0.5 + 0.8 * 1.0
        assert!((ResourceWeights::PR.load(v) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ap_load_ignores_disk() {
        let low_disk = ResourceVector::new(0.7, 0.0);
        let high_disk = ResourceVector::new(0.7, 1.0);
        assert_eq!(
            ResourceWeights::AP.load(low_disk),
            ResourceWeights::AP.load(high_disk)
        );
    }

    #[test]
    fn normalized_sums_to_one() {
        let w = ResourceWeights::normalized(2.0, 6.0);
        assert!((w.cpu - 0.25).abs() < 1e-12);
        assert!((w.disk - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_falls_back_to_uniform() {
        assert_eq!(
            ResourceWeights::normalized(0.0, 0.0),
            ResourceWeights::UNIFORM
        );
    }

    #[test]
    fn resource_vector_get() {
        let v = ResourceVector::new(0.3, 0.6);
        assert_eq!(v.get(Resource::Cpu), 0.3);
        assert_eq!(v.get(Resource::Disk), 0.6);
        assert_eq!(Resource::Cpu.to_string(), "CPU");
        assert_eq!(Resource::Disk.to_string(), "DISK");
    }
}
