#![warn(missing_docs)]
//! Shared vocabulary for the `falcon-dqa` workspace.
//!
//! This crate defines the data types exchanged between every subsystem of the
//! distributed question/answering reproduction: questions and answers, the
//! document/paragraph model, the five pipeline modules of the sequential
//! Falcon architecture (Fig. 1 of the paper), resource descriptors used by the
//! load-balancing machinery, and the calibration constants taken from the
//! paper's own measurements (Tables 2, 3 and 8).
//!
//! Everything here is plain data: no I/O, no concurrency. Higher crates
//! (`ir-engine`, `qa-pipeline`, `cluster-sim`, …) build behaviour on top.

pub mod answer;
pub mod calibration;
pub mod document;
pub mod error;
pub mod federation;
pub mod ids;
pub mod modules;
pub mod overload;
pub mod params;
pub mod question;
pub mod resources;

pub use answer::{Answer, AnswerWindow, Coverage, RankedAnswers};
pub use calibration::{ModuleProfile, Trec8Profile, Trec9Profile};
pub use document::{Document, Paragraph, SubCollectionMeta};
pub use error::QaError;
pub use federation::{FederationPolicy, ShardReport, ShardStatus};
pub use ids::{DocId, NodeId, ParagraphId, QuestionId, SubCollectionId};
pub use modules::{ModuleTimings, QaModule};
pub use overload::{OverloadCounts, OverloadPolicy, QuestionOutcome};
pub use params::SystemParams;
pub use question::{AnswerType, Keyword, ProcessedQuestion, Question};
pub use resources::{Resource, ResourceVector, ResourceWeights};
