//! Federation-tier vocabulary: the broker's robustness contract.
//!
//! The paper stops at one coordinator; ROADMAP item 1 puts a broker tier
//! in front of several coordinator *shards*, each owning a partition of
//! the corpus. This module holds the plain-data policy and status types
//! that tier shares between the thread-backed broker (`federation`), its
//! virtual-time mirror, `qa-cli` and the soak harnesses. Everything here
//! follows the `OverloadPolicy` conventions: durations are `f64` seconds
//! (virtual in the DES, scaled wall-clock in the runtime), defaults are
//! permissive, and the types are serde round-trippable.

use serde::{Deserialize, Serialize};

/// Scatter-gather policy for one federation broker.
///
/// The contract the policy encodes: a slow, crashed or partitioned shard
/// degrades the merged answer's [`Coverage`](crate::Coverage) — it never
/// fails the question and never drops it silently. Hedging is budgeted
/// (like the coordinator's chunk speculation) and deduplicated per shard:
/// whichever of primary/replica answers first wins, the loser's reply is
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederationPolicy {
    /// Shards that must respond before the merged answer counts as
    /// quorum-complete. Below quorum the broker *still* answers from what
    /// it has (annotated, never an error) and counts a quorum shortfall.
    pub quorum: usize,
    /// Floor on the hedge trigger, seconds: a shard slower than
    /// `max(hedge_after_secs, its EWMA p99)` gets a hedged retry against
    /// its replica, budget permitting.
    pub hedge_after_secs: f64,
    /// Hedged requests allowed per question across all shards. `0`
    /// disables hedging.
    pub hedge_budget: usize,
    /// Consecutive shard failures (timeouts or hard errors) that open the
    /// shard's circuit breaker.
    pub breaker_failures: u32,
    /// How long an open breaker bypasses the primary, seconds.
    pub breaker_cooldown_secs: f64,
    /// Shard-level load breaker: when the shard's worst `dqa_node_load`
    /// gauge exceeds this value the breaker opens without waiting for
    /// failures. `None` disables the load feed.
    pub breaker_load: Option<f64>,
    /// Fraction of the question deadline each shard request may spend
    /// before the broker stops waiting for it.
    pub shard_deadline_frac: f64,
    /// Per-shard deadline, seconds, when the overload policy carries no
    /// question deadline of its own.
    pub default_deadline_secs: f64,
    /// Answers kept in the merged global ranking.
    pub keep_answers: usize,
}

impl FederationPolicy {
    /// The policy used when nothing is configured: majority quorum over
    /// `shards`, a generous hedge floor and a 3-failure breaker.
    pub fn for_shards(shards: usize) -> FederationPolicy {
        FederationPolicy {
            quorum: shards / 2 + 1,
            ..FederationPolicy::default()
        }
    }

    /// Set the quorum (clamped to at least 1 by consumers; stored as-is).
    pub fn with_quorum(mut self, quorum: usize) -> FederationPolicy {
        self.quorum = quorum;
        self
    }

    /// Set the hedge-trigger floor in seconds.
    pub fn with_hedge_after(mut self, secs: f64) -> FederationPolicy {
        self.hedge_after_secs = secs.max(0.0);
        self
    }

    /// Set the per-question hedge budget.
    pub fn with_hedge_budget(mut self, budget: usize) -> FederationPolicy {
        self.hedge_budget = budget;
        self
    }

    /// Enable the shard-level load breaker at the given gauge value.
    pub fn with_breaker_load(mut self, load: f64) -> FederationPolicy {
        self.breaker_load = Some(load);
        self
    }

    /// The per-shard deadline in seconds given the question deadline the
    /// overload policy carries (if any).
    pub fn shard_deadline(&self, question_deadline_secs: Option<f64>) -> f64 {
        let base = question_deadline_secs.unwrap_or(self.default_deadline_secs);
        (base * self.shard_deadline_frac).max(1e-3)
    }
}

impl Default for FederationPolicy {
    fn default() -> Self {
        FederationPolicy {
            quorum: 1,
            hedge_after_secs: 0.25,
            hedge_budget: 2,
            breaker_failures: 3,
            breaker_cooldown_secs: 1.0,
            breaker_load: None,
            shard_deadline_frac: 0.9,
            default_deadline_secs: 30.0,
            keep_answers: 5,
        }
    }
}

/// How one shard left one scatter-gathered question. Exactly one status
/// per shard per question — the conservation ledger the federation soak
/// sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardStatus {
    /// The shard answered with full coverage.
    Answered,
    /// The shard answered but its own coordinator degraded coverage.
    Degraded,
    /// The shard's admission gate refused the question (retry-after hint
    /// aggregated at the broker).
    Rejected,
    /// The shard request failed hard (coordinator error).
    Failed,
    /// No reply within the per-shard deadline.
    TimedOut,
    /// The shard (and its replica, if any) was down or unreachable when
    /// the broker scattered.
    Down,
    /// The shard's circuit breaker was open and no replica could absorb
    /// the request.
    BreakerOpen,
}

impl ShardStatus {
    /// True when the shard contributed answers to the merge.
    pub fn responded(&self) -> bool {
        matches!(self, ShardStatus::Answered | ShardStatus::Degraded)
    }

    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShardStatus::Answered => "answered",
            ShardStatus::Degraded => "degraded",
            ShardStatus::Rejected => "rejected",
            ShardStatus::Failed => "failed",
            ShardStatus::TimedOut => "timed_out",
            ShardStatus::Down => "down",
            ShardStatus::BreakerOpen => "breaker_open",
        }
    }

    /// Deterministic code for digesting (bit-stable replay assertions).
    pub fn code(&self) -> u64 {
        match self {
            ShardStatus::Answered => 0,
            ShardStatus::Degraded => 1,
            ShardStatus::Rejected => 2,
            ShardStatus::Failed => 3,
            ShardStatus::TimedOut => 4,
            ShardStatus::Down => 5,
            ShardStatus::BreakerOpen => 6,
        }
    }
}

/// Per-shard accounting for one question, carried on the merged answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Which shard.
    pub shard: u32,
    /// How it left the question.
    pub status: ShardStatus,
    /// Response latency in seconds (0 for non-responders).
    pub latency_secs: f64,
    /// Whether a hedged retry was issued against this shard's replica.
    pub hedged: bool,
    /// Whether the hedged replica reply, not the primary's, was used.
    pub hedge_won: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_quorum_and_defaults() {
        assert_eq!(FederationPolicy::for_shards(1).quorum, 1);
        assert_eq!(FederationPolicy::for_shards(2).quorum, 2);
        assert_eq!(FederationPolicy::for_shards(4).quorum, 3);
        let p = FederationPolicy::default();
        assert!(p.hedge_budget > 0);
        assert!(p.breaker_load.is_none());
    }

    #[test]
    fn shard_deadline_derives_from_question_deadline() {
        let p = FederationPolicy::default();
        let d = p.shard_deadline(Some(10.0));
        assert!((d - 9.0).abs() < 1e-9);
        let fallback = p.shard_deadline(None);
        assert!((fallback - 27.0).abs() < 1e-9);
        // Never collapses to zero.
        assert!(p.shard_deadline(Some(0.0)) > 0.0);
    }

    #[test]
    fn statuses_partition_into_responders_and_not() {
        assert!(ShardStatus::Answered.responded());
        assert!(ShardStatus::Degraded.responded());
        for s in [
            ShardStatus::Rejected,
            ShardStatus::Failed,
            ShardStatus::TimedOut,
            ShardStatus::Down,
            ShardStatus::BreakerOpen,
        ] {
            assert!(!s.responded(), "{s:?}");
        }
    }

    #[test]
    fn status_codes_are_distinct() {
        let all = [
            ShardStatus::Answered,
            ShardStatus::Degraded,
            ShardStatus::Rejected,
            ShardStatus::Failed,
            ShardStatus::TimedOut,
            ShardStatus::Down,
            ShardStatus::BreakerOpen,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn policy_round_trips_through_serde() {
        let p = FederationPolicy::for_shards(4)
            .with_hedge_after(0.5)
            .with_breaker_load(6.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: FederationPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
