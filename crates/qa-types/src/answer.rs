//! Answers and answer windows.
//!
//! The Answer Processing module identifies *candidate answers* (entities of
//! the expected answer type) inside paragraphs, builds an *answer window*
//! around each candidate — a text span containing the candidate plus question
//! keywords — scores windows with seven heuristics and returns the best `N_a`.

use crate::ids::ParagraphId;
use crate::question::AnswerType;
use serde::{Deserialize, Serialize};

/// The answer-window length limits used by TREC (Table 1 of the paper).
pub const SHORT_ANSWER_BYTES: usize = 50;
/// Long-answer window limit.
pub const LONG_ANSWER_BYTES: usize = 250;

/// A candidate answer window before final ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerWindow {
    /// Paragraph the window was cut from.
    pub paragraph: ParagraphId,
    /// Candidate answer entity text.
    pub candidate: String,
    /// Category the candidate was recognized as.
    pub entity_type: AnswerType,
    /// Window text (candidate plus surrounding keywords).
    pub window: String,
    /// Byte offset of the candidate within the paragraph.
    pub offset: usize,
    /// Combined score from the seven AP heuristics.
    pub score: f64,
}

/// A final answer returned to the user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// Paragraph that supplied the answer.
    pub paragraph: ParagraphId,
    /// The extracted answer entity.
    pub candidate: String,
    /// Supporting text span (truncated to the requested answer length).
    pub text: String,
    /// Final score; answers are returned in decreasing score order.
    pub score: f64,
}

impl Answer {
    /// Size in bytes as transferred to the user (`S_ans` in the model).
    pub fn wire_size(&self) -> usize {
        self.text.len() + self.candidate.len() + std::mem::size_of::<ParagraphId>()
    }

    /// Total order used when deduplicating the same candidate found in
    /// several paragraphs: higher score wins; ties go to the lower
    /// paragraph id. Order-independent, so sequential and partitioned AP
    /// agree exactly.
    pub fn better(a: &Answer, b: &Answer) -> bool {
        match a.score.partial_cmp(&b.score) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            _ => a.paragraph < b.paragraph,
        }
    }
}

/// An ordered set of answers for one question.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankedAnswers {
    /// Answers in decreasing score order.
    pub answers: Vec<Answer>,
}

impl RankedAnswers {
    /// Build from an unordered set, keeping the best `keep` answers.
    ///
    /// Sorting is stable on (score desc, paragraph id) so results are
    /// deterministic regardless of the order sub-task results arrive in —
    /// the property the paper's centralized *answer sorting* module exists
    /// to guarantee.
    pub fn from_unsorted(mut answers: Vec<Answer>, keep: usize) -> Self {
        answers.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.paragraph.cmp(&b.paragraph))
                .then_with(|| a.candidate.cmp(&b.candidate))
        });
        answers.truncate(keep);
        Self { answers }
    }

    /// Merge several locally-ranked answer sets into a global ranking.
    ///
    /// This is the paper's *answer merging + answer sorting* stage: each AP
    /// partition returns its local best `keep` answers and the global best
    /// `keep` are selected centrally. Duplicate candidates (the same entity
    /// found by two partitions) are deduplicated with the same rule AP uses
    /// locally, so a partitioned run returns exactly the answers a
    /// sequential run would.
    ///
    /// # Examples
    /// ```
    /// use qa_types::{Answer, DocId, ParagraphId, RankedAnswers};
    /// let part = |doc: u32, score: f64| {
    ///     RankedAnswers::from_unsorted(
    ///         vec![Answer {
    ///             paragraph: ParagraphId::new(DocId::new(doc), 0),
    ///             candidate: format!("c{doc}"),
    ///             text: String::new(),
    ///             score,
    ///         }],
    ///         5,
    ///     )
    /// };
    /// let merged = RankedAnswers::merge([part(1, 0.4), part(2, 0.9)], 1);
    /// assert_eq!(merged.best().unwrap().candidate, "c2");
    /// ```
    pub fn merge(parts: impl IntoIterator<Item = RankedAnswers>, keep: usize) -> Self {
        let mut best: std::collections::HashMap<String, Answer> = std::collections::HashMap::new();
        for part in parts {
            for ans in part.answers {
                match best.get_mut(&ans.candidate) {
                    Some(cur) if !Answer::better(&ans, cur) => {}
                    Some(cur) => *cur = ans,
                    None => {
                        best.insert(ans.candidate.clone(), ans);
                    }
                }
            }
        }
        Self::from_unsorted(best.into_values().collect(), keep)
    }

    /// Number of answers held.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when no answer was found.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The best answer, if any.
    pub fn best(&self) -> Option<&Answer> {
        self.answers.first()
    }
}

/// Fraction of a distributed phase's work that actually completed.
///
/// Under graceful degradation (retry budget or deadline exhausted) the
/// coordinator abandons the chunks it could not place and answers from what
/// it has; `Coverage` makes that loss explicit instead of silently shipping
/// a partial ranking. `completed == total` marks a non-degraded phase whose
/// answers must be byte-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Work units (shards or chunks) that finished.
    pub completed: u32,
    /// Work units the phase started with.
    pub total: u32,
}

impl Coverage {
    /// Full coverage over `total` units.
    pub fn full(total: u32) -> Coverage {
        Coverage {
            completed: total,
            total,
        }
    }

    /// Completed fraction in `[0, 1]`; an empty phase counts as complete.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            f64::from(self.completed) / f64::from(self.total)
        }
    }

    /// True when nothing was lost.
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total
    }

    /// Pointwise minimum-coverage combination of two phases (the question
    /// is only as complete as its least-complete phase).
    pub fn and(self, other: Coverage) -> Coverage {
        if self.fraction() <= other.fraction() {
            self
        } else {
            other
        }
    }
}

impl Default for Coverage {
    fn default() -> Self {
        Coverage::full(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DocId;

    fn ans(doc: u32, score: f64) -> Answer {
        Answer {
            paragraph: ParagraphId::new(DocId::new(doc), 0),
            candidate: format!("cand{doc}"),
            text: format!("text{doc}"),
            score,
        }
    }

    #[test]
    fn from_unsorted_orders_by_score_desc() {
        let ranked = RankedAnswers::from_unsorted(vec![ans(1, 0.2), ans(2, 0.9), ans(3, 0.5)], 5);
        let scores: Vec<_> = ranked.answers.iter().map(|a| a.score).collect();
        assert_eq!(scores, [0.9, 0.5, 0.2]);
    }

    #[test]
    fn from_unsorted_truncates_to_keep() {
        let ranked = RankedAnswers::from_unsorted((0..10).map(|i| ans(i, i as f64)).collect(), 3);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked.best().unwrap().score, 9.0);
    }

    #[test]
    fn ties_break_deterministically_on_paragraph() {
        let a = RankedAnswers::from_unsorted(vec![ans(2, 1.0), ans(1, 1.0)], 5);
        let b = RankedAnswers::from_unsorted(vec![ans(1, 1.0), ans(2, 1.0)], 5);
        assert_eq!(a, b, "input order must not matter");
        assert_eq!(a.answers[0].paragraph.doc, DocId::new(1));
    }

    #[test]
    fn merge_selects_global_best() {
        let p1 = RankedAnswers::from_unsorted(vec![ans(1, 0.9), ans(2, 0.1)], 2);
        let p2 = RankedAnswers::from_unsorted(vec![ans(3, 0.8), ans(4, 0.7)], 2);
        let merged = RankedAnswers::merge([p1, p2], 2);
        let scores: Vec<_> = merged.answers.iter().map(|a| a.score).collect();
        assert_eq!(scores, [0.9, 0.8]);
    }

    #[test]
    fn merge_dedups_same_candidate_across_partitions() {
        let mut dup_a = ans(1, 0.5);
        dup_a.candidate = "same".into();
        let mut dup_b = ans(2, 0.9);
        dup_b.candidate = "same".into();
        let p1 = RankedAnswers::from_unsorted(vec![dup_a], 2);
        let p2 = RankedAnswers::from_unsorted(vec![dup_b], 2);
        let merged = RankedAnswers::merge([p1, p2], 5);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.best().unwrap().score, 0.9);
    }

    #[test]
    fn better_is_a_deterministic_total_preference() {
        let a = ans(1, 0.5);
        let b = ans(2, 0.5);
        assert!(Answer::better(&a, &b), "tie goes to lower paragraph id");
        assert!(!Answer::better(&b, &a));
        let c = ans(3, 0.9);
        assert!(Answer::better(&c, &a));
    }

    #[test]
    fn coverage_fraction_and_combination() {
        let full = Coverage::full(8);
        assert!(full.is_complete());
        assert_eq!(full.fraction(), 1.0);
        let part = Coverage {
            completed: 3,
            total: 8,
        };
        assert!(!part.is_complete());
        assert!((part.fraction() - 0.375).abs() < 1e-12);
        assert_eq!(full.and(part), part, "least-complete phase wins");
        assert_eq!(part.and(full), part);
        let empty = Coverage::default();
        assert!(empty.is_complete(), "empty phase counts as complete");
        assert_eq!(empty.fraction(), 1.0);
    }

    #[test]
    fn empty_merge_is_empty() {
        let merged = RankedAnswers::merge(std::iter::empty(), 5);
        assert!(merged.is_empty());
        assert!(merged.best().is_none());
    }
}
