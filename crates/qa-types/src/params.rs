//! The analytical-model parameter block (Section 5 / Fig. 8b of the paper).
//!
//! The published figure listing the plot parameters is partially garbled in
//! the archived text, so the defaults below are reconstructed from the
//! quantities the paper states elsewhere (Q226 trace: ~880 accepted
//! paragraphs; Table 8 module times; 100 Mbps test network) and tuned so the
//! model reproduces the paper's headline analytical results: efficiency ≈ 0.9
//! at 1000 processors on a 1 Gbps network (Fig. 8a) and practical
//! intra-question limits of roughly 11–93 processors (Table 4). Every value
//! is documented with its symbol from the paper's notation list.

use serde::{Deserialize, Serialize};

/// Bandwidth and size constants are expressed in bytes and bytes/second.
pub const MBPS: f64 = 1_000_000.0 / 8.0;
/// One gigabit per second in bytes/second.
pub const GBPS: f64 = 1_000.0 * MBPS;

/// Parameters of the analytical performance model (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// `N_k` — average number of keywords extracted from a question.
    pub keywords_per_question: f64,
    /// `N_p` — average number of paragraphs produced by paragraph retrieval.
    pub paragraphs_retrieved: f64,
    /// `N_pa` — average number of paragraphs accepted after paragraph ordering.
    pub paragraphs_accepted: f64,
    /// `S_kw` — average keyword length in bytes.
    pub keyword_bytes: f64,
    /// `S_par` — average paragraph size in bytes.
    pub paragraph_bytes: f64,
    /// `N_a` — number of answers requested by the user.
    pub answers_requested: f64,
    /// `S_ans` — answer size in bytes.
    pub answer_bytes: f64,
    /// `T_loc` — average time to measure the local system load (seconds).
    pub load_measure_secs: f64,
    /// `S_load` — size of the load-monitoring broadcast packet (bytes).
    pub load_packet_bytes: f64,
    /// `S_q` — average question size in bytes.
    pub question_bytes: f64,
    /// `B_net` — network bandwidth (bytes/second).
    pub net_bandwidth: f64,
    /// `B_disk` — disk bandwidth (bytes/second).
    pub disk_bandwidth: f64,
    /// `B_mem` — local memory bandwidth (bytes/second).
    pub mem_bandwidth: f64,
    /// Reference disk bandwidth of the measurement platform (bytes/second):
    /// the `T_PR` of Table 8 was measured at this bandwidth, and the
    /// intra-question model rescales PR's disk portion as
    /// `ref_disk_bandwidth / disk_bandwidth`.
    pub ref_disk_bandwidth: f64,
    /// Disk read amplification of the partition-overhead term: the merging
    /// modules read paragraph data back at block granularity, touching more
    /// bytes than the logical paragraph payload.
    pub disk_read_amplification: f64,
    /// Constant CPU cost of the extra partition-control modules (paragraph
    /// assignment, paragraph/answer merging, answer sorting), seconds.
    pub partition_constant_secs: f64,
    /// `p_QA` — probability a task is migrated before it is started
    /// (measured in Table 7: 37/96 questions at 12 nodes).
    pub p_migrate_qa: f64,
    /// `p_PR` — probability of migration at the PR dispatcher (43/96).
    pub p_migrate_pr: f64,
    /// `p_AP` — probability of migration at the AP dispatcher (41/96).
    pub p_migrate_ap: f64,
    /// `p_net` — probability a Q/A task accesses the network at any time.
    pub p_net: f64,
    /// `q` — average number of simultaneous questions per processor.
    pub questions_per_node: f64,
    /// Per-dispatcher scan cost per node (seconds); the dispatcher scan is
    /// linear in N (Eq. 15).
    pub dispatch_scan_secs_per_node: f64,
}

impl SystemParams {
    /// Parameters reconstructed for the TREC-9 question set (see module docs).
    pub fn trec9() -> Self {
        Self {
            keywords_per_question: 6.0,
            paragraphs_retrieved: 1500.0,
            paragraphs_accepted: 880.0,
            keyword_bytes: 8.0,
            paragraph_bytes: 400.0,
            answers_requested: 5.0,
            answer_bytes: 250.0,
            load_measure_secs: 1e-3,
            load_packet_bytes: 64.0,
            question_bytes: 100.0,
            net_bandwidth: 100.0 * MBPS,
            disk_bandwidth: 250.0 * MBPS,
            mem_bandwidth: 800.0 * GBPS / 1000.0, // 100 MB/s-class PC100 SDRAM
            ref_disk_bandwidth: 100.0 * MBPS,
            disk_read_amplification: 3.3,
            partition_constant_secs: 0.61,
            p_migrate_qa: 37.0 / 96.0,
            p_migrate_pr: 43.0 / 96.0,
            p_migrate_ap: 41.0 / 96.0,
            p_net: 0.25,
            questions_per_node: 4.0,
            dispatch_scan_secs_per_node: 1e-6,
        }
    }

    /// Same parameter block with a different network bandwidth (bytes/s).
    pub fn with_net_bandwidth(mut self, bps_bytes: f64) -> Self {
        self.net_bandwidth = bps_bytes;
        self
    }

    /// Same parameter block with a different disk bandwidth (bytes/s).
    pub fn with_disk_bandwidth(mut self, bps_bytes: f64) -> Self {
        self.disk_bandwidth = bps_bytes;
        self
    }

    /// Bytes of paragraph data produced by PR (`N_p · S_par`).
    pub fn retrieved_bytes(&self) -> f64 {
        self.paragraphs_retrieved * self.paragraph_bytes
    }

    /// Bytes of paragraph data accepted by PO (`N_pa · S_par`).
    pub fn accepted_bytes(&self) -> f64 {
        self.paragraphs_accepted * self.paragraph_bytes
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::trec9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constants() {
        assert_eq!(MBPS, 125_000.0);
        assert_eq!(GBPS, 125_000_000.0);
    }

    #[test]
    fn trec9_defaults_are_positive() {
        let p = SystemParams::trec9();
        assert!(p.paragraphs_retrieved >= p.paragraphs_accepted);
        assert!(p.net_bandwidth > 0.0 && p.disk_bandwidth > 0.0 && p.mem_bandwidth > 0.0);
        assert!(p.p_migrate_qa > 0.0 && p.p_migrate_qa < 1.0);
    }

    #[test]
    fn builders_override_bandwidths() {
        let p = SystemParams::trec9()
            .with_net_bandwidth(GBPS)
            .with_disk_bandwidth(2.0 * GBPS);
        assert_eq!(p.net_bandwidth, GBPS);
        assert_eq!(p.disk_bandwidth, 2.0 * GBPS);
    }

    #[test]
    fn byte_totals() {
        let p = SystemParams::trec9();
        assert_eq!(p.retrieved_bytes(), 1500.0 * 400.0);
        assert_eq!(p.accepted_bytes(), 880.0 * 400.0);
        assert!(p.ref_disk_bandwidth > 0.0);
        assert!(p.disk_read_amplification >= 1.0);
        assert!(p.partition_constant_secs >= 0.0);
    }
}
