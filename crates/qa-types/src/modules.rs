//! The five pipeline modules and per-module timing records.
//!
//! Fig. 1 of the paper: Question Processing → Paragraph Retrieval →
//! Paragraph Scoring → Paragraph Ordering → Answer Processing. Table 2
//! classifies PR, PS and AP as *iterative* (partitionable) with collection or
//! paragraph granularity, while QP and PO are inherently sequential.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// One of the five modules of the sequential Q/A architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QaModule {
    /// Question Processing: answer-type detection + keyword extraction.
    Qp,
    /// Paragraph Retrieval: Boolean IR plus paragraph extraction.
    Pr,
    /// Paragraph Scoring: three surface-text heuristics.
    Ps,
    /// Paragraph Ordering: sort by rank and filter with a threshold.
    Po,
    /// Answer Processing: candidate detection, answer windows, ranking.
    Ap,
}

/// The granularity at which an iterative module can be partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Not iterative — cannot be partitioned (QP, PO).
    None,
    /// Iterates over document sub-collections (PR).
    Collection,
    /// Iterates over paragraphs (PS, AP).
    Paragraph,
}

impl QaModule {
    /// All modules in pipeline order.
    pub const PIPELINE: [QaModule; 5] = [
        QaModule::Qp,
        QaModule::Pr,
        QaModule::Ps,
        QaModule::Po,
        QaModule::Ap,
    ];

    /// Whether the module is an iterative task (Table 2, last column).
    pub const fn is_iterative(self) -> bool {
        matches!(self, QaModule::Pr | QaModule::Ps | QaModule::Ap)
    }

    /// Partitioning granularity of the module (Table 2).
    pub const fn granularity(self) -> Granularity {
        match self {
            QaModule::Pr => Granularity::Collection,
            QaModule::Ps | QaModule::Ap => Granularity::Paragraph,
            QaModule::Qp | QaModule::Po => Granularity::None,
        }
    }
}

impl fmt::Display for QaModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QaModule::Qp => "QP",
            QaModule::Pr => "PR",
            QaModule::Ps => "PS",
            QaModule::Po => "PO",
            QaModule::Ap => "AP",
        };
        f.write_str(s)
    }
}

/// Wall-clock time attributed to each module for one question.
///
/// This is the record behind Tables 2 and 8 of the paper. Stored as `f64`
/// seconds so the same type serves both real measurements (`qa-pipeline`)
/// and simulated virtual time (`cluster-sim`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleTimings {
    /// Question processing seconds.
    pub qp: f64,
    /// Paragraph retrieval seconds.
    pub pr: f64,
    /// Paragraph scoring seconds.
    pub ps: f64,
    /// Paragraph ordering seconds.
    pub po: f64,
    /// Answer processing seconds.
    pub ap: f64,
    /// Distribution/partitioning overhead seconds (zero for sequential runs).
    pub overhead: f64,
}

impl ModuleTimings {
    /// Access one module's time.
    pub fn get(&self, m: QaModule) -> f64 {
        match m {
            QaModule::Qp => self.qp,
            QaModule::Pr => self.pr,
            QaModule::Ps => self.ps,
            QaModule::Po => self.po,
            QaModule::Ap => self.ap,
        }
    }

    /// Set one module's time.
    pub fn set(&mut self, m: QaModule, secs: f64) {
        match m {
            QaModule::Qp => self.qp = secs,
            QaModule::Pr => self.pr = secs,
            QaModule::Ps => self.ps = secs,
            QaModule::Po => self.po = secs,
            QaModule::Ap => self.ap = secs,
        }
    }

    /// Accumulate time onto one module.
    pub fn accumulate(&mut self, m: QaModule, secs: f64) {
        let cur = self.get(m);
        self.set(m, cur + secs);
    }

    /// Record a real elapsed duration against a module.
    pub fn add_duration(&mut self, m: QaModule, d: Duration) {
        self.accumulate(m, d.as_secs_f64());
    }

    /// Total question time including overhead (the paper's "question
    /// response time (including overhead)" column of Table 8).
    pub fn total(&self) -> f64 {
        self.qp + self.pr + self.ps + self.po + self.ap + self.overhead
    }

    /// Fraction of the task each module accounts for, in pipeline order
    /// (Table 2's "% of task time" column). Returns `None` when total is 0.
    pub fn percentages(&self) -> Option<[f64; 5]> {
        let t = self.total();
        if t <= 0.0 {
            return None;
        }
        Some([
            self.qp / t * 100.0,
            self.pr / t * 100.0,
            self.ps / t * 100.0,
            self.po / t * 100.0,
            self.ap / t * 100.0,
        ])
    }

    /// Element-wise average of a set of timings (e.g. over a question set).
    pub fn mean<'a>(items: impl IntoIterator<Item = &'a ModuleTimings>) -> ModuleTimings {
        let mut sum = ModuleTimings::default();
        let mut n = 0usize;
        for t in items {
            sum += *t;
            n += 1;
        }
        if n == 0 {
            return sum;
        }
        let n = n as f64;
        ModuleTimings {
            qp: sum.qp / n,
            pr: sum.pr / n,
            ps: sum.ps / n,
            po: sum.po / n,
            ap: sum.ap / n,
            overhead: sum.overhead / n,
        }
    }
}

impl Add for ModuleTimings {
    type Output = ModuleTimings;
    fn add(self, rhs: ModuleTimings) -> ModuleTimings {
        ModuleTimings {
            qp: self.qp + rhs.qp,
            pr: self.pr + rhs.pr,
            ps: self.ps + rhs.ps,
            po: self.po + rhs.po,
            ap: self.ap + rhs.ap,
            overhead: self.overhead + rhs.overhead,
        }
    }
}

impl AddAssign for ModuleTimings {
    fn add_assign(&mut self, rhs: ModuleTimings) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order_and_iterativity_match_table2() {
        assert_eq!(QaModule::PIPELINE.len(), 5);
        assert!(QaModule::Pr.is_iterative());
        assert!(QaModule::Ps.is_iterative());
        assert!(QaModule::Ap.is_iterative());
        assert!(!QaModule::Qp.is_iterative());
        assert!(!QaModule::Po.is_iterative());
        assert_eq!(QaModule::Pr.granularity(), Granularity::Collection);
        assert_eq!(QaModule::Ap.granularity(), Granularity::Paragraph);
        assert_eq!(QaModule::Po.granularity(), Granularity::None);
    }

    #[test]
    fn total_includes_overhead() {
        let t = ModuleTimings {
            qp: 1.0,
            pr: 2.0,
            ps: 3.0,
            po: 4.0,
            ap: 5.0,
            overhead: 0.5,
        };
        assert!((t.total() - 15.5).abs() < 1e-12);
    }

    #[test]
    fn percentages_sum_close_to_100_without_overhead() {
        let t = ModuleTimings {
            qp: 1.0,
            pr: 2.0,
            ps: 3.0,
            po: 4.0,
            ap: 5.0,
            overhead: 0.0,
        };
        let p = t.percentages().unwrap();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentages_none_for_zero_total() {
        assert!(ModuleTimings::default().percentages().is_none());
    }

    #[test]
    fn get_set_add_round_trip() {
        let mut t = ModuleTimings::default();
        for m in QaModule::PIPELINE {
            t.set(m, 2.0);
            t.accumulate(m, 1.0);
            assert_eq!(t.get(m), 3.0);
        }
    }

    #[test]
    fn mean_averages_elementwise() {
        let a = ModuleTimings {
            qp: 1.0,
            pr: 2.0,
            ..Default::default()
        };
        let b = ModuleTimings {
            qp: 3.0,
            pr: 6.0,
            ..Default::default()
        };
        let m = ModuleTimings::mean([&a, &b]);
        assert_eq!(m.qp, 2.0);
        assert_eq!(m.pr, 4.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = ModuleTimings::mean(std::iter::empty());
        assert_eq!(m.total(), 0.0);
    }
}
