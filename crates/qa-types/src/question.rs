//! Questions, answer types and keywords.
//!
//! The Question Processing (QP) module of the paper classifies every natural
//! language question into an expected *answer type* (the lexico-semantic
//! category an answer entity must belong to) and extracts the keywords used
//! for document retrieval. [`Question`] is the raw input; [`ProcessedQuestion`]
//! is QP's output consumed by the rest of the pipeline.

use crate::ids::QuestionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lexico-semantic category an answer entity is expected to belong to.
///
/// The paper's examples (Table 1) cover DISEASE, LOCATION and NATIONALITY;
/// TREC-8/9 factual questions additionally exercise the categories below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnswerType {
    /// A person name ("Who…").
    Person,
    /// A geographic location ("Where…").
    Location,
    /// An organization or company.
    Organization,
    /// A calendar date or year ("When…").
    Date,
    /// A count or measurement ("How many…", "How far…").
    Quantity,
    /// A monetary amount ("How much does … cost").
    Money,
    /// A nationality ("What is the nationality of…").
    Nationality,
    /// A disease or medical condition.
    Disease,
    /// A generic definition/phrase answer ("What is a…").
    Definition,
    /// QP could not determine the category; AP falls back to proximity only.
    Unknown,
}

impl AnswerType {
    /// All concrete (non-[`Unknown`](AnswerType::Unknown)) categories.
    pub const ALL: [AnswerType; 9] = [
        AnswerType::Person,
        AnswerType::Location,
        AnswerType::Organization,
        AnswerType::Date,
        AnswerType::Quantity,
        AnswerType::Money,
        AnswerType::Nationality,
        AnswerType::Disease,
        AnswerType::Definition,
    ];
}

impl fmt::Display for AnswerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnswerType::Person => "PERSON",
            AnswerType::Location => "LOCATION",
            AnswerType::Organization => "ORGANIZATION",
            AnswerType::Date => "DATE",
            AnswerType::Quantity => "QUANTITY",
            AnswerType::Money => "MONEY",
            AnswerType::Nationality => "NATIONALITY",
            AnswerType::Disease => "DISEASE",
            AnswerType::Definition => "DEFINITION",
            AnswerType::Unknown => "UNKNOWN",
        };
        f.write_str(s)
    }
}

/// A retrieval keyword extracted from the question by the QP module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keyword {
    /// Normalized (lower-cased, stemmed) surface form.
    pub term: String,
    /// Relative importance assigned by QP; higher keywords are dropped last
    /// when the Boolean query must be relaxed.
    pub weight: f32,
}

impl Keyword {
    /// Construct a keyword with the given normalized term and weight.
    pub fn new(term: impl Into<String>, weight: f32) -> Self {
        Self {
            term: term.into(),
            weight,
        }
    }
}

/// A natural-language question submitted to the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Unique id (TREC numbering in the paper's examples, e.g. Q226).
    pub id: QuestionId,
    /// The raw question text.
    pub text: String,
}

impl Question {
    /// Construct a question.
    pub fn new(id: QuestionId, text: impl Into<String>) -> Self {
        Self {
            id,
            text: text.into(),
        }
    }

    /// Size of the question in bytes as transferred over the network
    /// (`S_q` in the analytical model).
    pub fn wire_size(&self) -> usize {
        self.text.len() + std::mem::size_of::<QuestionId>()
    }
}

/// Output of the Question Processing module: answer type plus keywords.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessedQuestion {
    /// The originating question.
    pub question: Question,
    /// Expected answer category.
    pub answer_type: AnswerType,
    /// Retrieval keywords ordered by decreasing weight.
    pub keywords: Vec<Keyword>,
}

impl ProcessedQuestion {
    /// Keywords as plain terms, in weight order.
    pub fn keyword_terms(&self) -> impl Iterator<Item = &str> {
        self.keywords.iter().map(|k| k.term.as_str())
    }

    /// Total keyword payload in bytes (`N_k · S_kw` in the analytical model).
    pub fn keyword_bytes(&self) -> usize {
        self.keywords.iter().map(|k| k.term.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_type_display_matches_paper_examples() {
        assert_eq!(AnswerType::Disease.to_string(), "DISEASE");
        assert_eq!(AnswerType::Location.to_string(), "LOCATION");
        assert_eq!(AnswerType::Nationality.to_string(), "NATIONALITY");
    }

    #[test]
    fn all_covers_every_concrete_variant() {
        assert_eq!(AnswerType::ALL.len(), 9);
        assert!(!AnswerType::ALL.contains(&AnswerType::Unknown));
    }

    #[test]
    fn wire_size_counts_text_bytes() {
        let q = Question::new(QuestionId::new(73), "Where is the Taj Mahal ?");
        assert_eq!(q.wire_size(), q.text.len() + 4);
    }

    #[test]
    fn processed_question_keyword_accessors() {
        let q = ProcessedQuestion {
            question: Question::new(QuestionId::new(1), "who?"),
            answer_type: AnswerType::Person,
            keywords: vec![Keyword::new("taj", 2.0), Keyword::new("mahal", 1.0)],
        };
        let terms: Vec<_> = q.keyword_terms().collect();
        assert_eq!(terms, ["taj", "mahal"]);
        assert_eq!(q.keyword_bytes(), 8);
    }
}
