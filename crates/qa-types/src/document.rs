//! The document / paragraph data model.
//!
//! The Paragraph Retrieval module of the paper operates on documents grouped
//! into *sub-collections* (the TREC-9 collection is split into eight), and
//! the downstream PS/PO/AP modules operate on individual *paragraphs*.

use crate::ids::{DocId, ParagraphId, SubCollectionId};
use serde::{Deserialize, Serialize};

/// A paragraph extracted from a document: the unit of work of PS and AP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Paragraph {
    /// Identity of this paragraph.
    pub id: ParagraphId,
    /// Sub-collection the parent document lives in.
    pub sub_collection: SubCollectionId,
    /// Paragraph text.
    pub text: String,
}

impl Paragraph {
    /// Size in bytes as it crosses the network (`S_par` in the model).
    pub fn wire_size(&self) -> usize {
        self.text.len() + std::mem::size_of::<ParagraphId>()
    }
}

/// A document: a title plus a sequence of paragraphs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Unique id within the whole collection.
    pub id: DocId,
    /// Sub-collection this document belongs to.
    pub sub_collection: SubCollectionId,
    /// Headline / title line.
    pub title: String,
    /// Body paragraphs, in document order.
    pub paragraphs: Vec<String>,
}

impl Document {
    /// Total body size in bytes.
    pub fn body_bytes(&self) -> usize {
        self.paragraphs.iter().map(String::len).sum()
    }

    /// Iterate the body as [`Paragraph`] values with proper ids.
    pub fn iter_paragraphs(&self) -> impl Iterator<Item = Paragraph> + '_ {
        self.paragraphs
            .iter()
            .enumerate()
            .map(move |(i, text)| Paragraph {
                id: ParagraphId::new(self.id, i as u32),
                sub_collection: self.sub_collection,
                text: text.clone(),
            })
    }
}

/// Summary statistics for one sub-collection, used by the load balancer and
/// by the corpus generator's reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubCollectionMeta {
    /// Which sub-collection this describes.
    pub id: SubCollectionId,
    /// Number of documents.
    pub documents: usize,
    /// Number of paragraphs across all documents.
    pub paragraphs: usize,
    /// Total body bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Document {
        Document {
            id: DocId::new(4),
            sub_collection: SubCollectionId::new(1),
            title: "Sample".into(),
            paragraphs: vec!["first para".into(), "second para text".into()],
        }
    }

    #[test]
    fn iter_paragraphs_assigns_sequential_ordinals() {
        let doc = sample_doc();
        let paras: Vec<_> = doc.iter_paragraphs().collect();
        assert_eq!(paras.len(), 2);
        assert_eq!(paras[0].id, ParagraphId::new(DocId::new(4), 0));
        assert_eq!(paras[1].id, ParagraphId::new(DocId::new(4), 1));
        assert_eq!(paras[1].text, "second para text");
        assert_eq!(paras[0].sub_collection, SubCollectionId::new(1));
    }

    #[test]
    fn body_bytes_sums_paragraph_lengths() {
        let doc = sample_doc();
        assert_eq!(
            doc.body_bytes(),
            "first para".len() + "second para text".len()
        );
    }

    #[test]
    fn paragraph_wire_size_includes_id() {
        let doc = sample_doc();
        let p = doc.iter_paragraphs().next().unwrap();
        assert_eq!(p.wire_size(), "first para".len() + 8);
    }
}
