//! Calibration profiles taken from the paper's measurements.
//!
//! The discrete-event simulator (`cluster-sim`) does not run real NLP on
//! 3 GB of news text; instead it replays the *service demands* the paper
//! measured on its Pentium III cluster. Two profiles are provided:
//!
//! * [`Trec8Profile`] — Table 2, TREC-8 column (48 s average question,
//!   2 GB collection);
//! * [`Trec9Profile`] — Table 2, TREC-9 column plus the absolute module
//!   times of Table 8 (1-processor row: 158.47 s for the 307 "complex"
//!   questions used in the intra-question experiments, 94 s for the average
//!   question).

use crate::modules::{ModuleTimings, QaModule};
use crate::resources::ResourceWeights;
use serde::{Deserialize, Serialize};

/// Measured per-module service demands plus resource mix for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleProfile {
    /// Mean sequential execution times per module (seconds).
    pub times: ModuleTimings,
    /// Number of sub-collections the collection is divided into
    /// (PR granularity).
    pub sub_collections: usize,
    /// Mean number of paragraphs retrieved by PR.
    pub paragraphs_retrieved: usize,
    /// Mean number of paragraphs accepted by PO (AP granularity).
    pub paragraphs_accepted: usize,
    /// Coefficient of variation of per-sub-collection PR demand. The Q226
    /// trace shows 0.19–1.52 s per collection, i.e. high variance.
    pub pr_granularity_cv: f64,
    /// Coefficient of variation of per-paragraph AP demand.
    pub ap_granularity_cv: f64,
    /// Memory required by one in-flight question, bytes (25–40 MB measured).
    pub question_memory_lo: u64,
    /// Upper bound of the per-question memory band, bytes.
    pub question_memory_hi: u64,
    /// Per-node memory, bytes (256 MB on the paper's cluster).
    pub node_memory: u64,
    /// Whole-task resource weights (Table 3 row "QA").
    pub qa_weights: ResourceWeights,
    /// PR resource weights (Table 3 row "PR").
    pub pr_weights: ResourceWeights,
    /// AP resource weights (Table 3 row "AP").
    pub ap_weights: ResourceWeights,
}

impl ModuleProfile {
    /// Average sequential question time `T̄` (Eq. 10 denominator).
    pub fn sequential_total(&self) -> f64 {
        self.times.total()
    }

    /// Time of the parallelizable part `T_par = T_PR + T_PS + T_AP` (Eq. 32).
    pub fn parallelizable(&self) -> f64 {
        self.times.pr + self.times.ps + self.times.ap
    }

    /// Time of the inherently sequential part `T_QP + T_PO` (part of Eq. 33).
    pub fn sequential_fixed(&self) -> f64 {
        self.times.qp + self.times.po
    }

    /// Mean PR demand per sub-collection (seconds).
    pub fn pr_per_collection(&self) -> f64 {
        self.times.pr / self.sub_collections as f64
    }

    /// Mean AP demand per accepted paragraph (seconds).
    pub fn ap_per_paragraph(&self) -> f64 {
        self.times.ap / self.paragraphs_accepted as f64
    }

    /// Mean PS demand per retrieved paragraph (seconds).
    pub fn ps_per_paragraph(&self) -> f64 {
        self.times.ps / self.paragraphs_retrieved as f64
    }

    /// Resource weights for a module's load function (Eqs. 1–3):
    /// PR and AP have dedicated rows in Table 3; the other modules use the
    /// whole-task weights.
    pub fn weights_for(&self, m: QaModule) -> ResourceWeights {
        match m {
            QaModule::Pr => self.pr_weights,
            QaModule::Ap => self.ap_weights,
            _ => self.qa_weights,
        }
    }
}

/// Marker type exposing the TREC-8 profile (Table 2, first column).
pub struct Trec8Profile;

impl Trec8Profile {
    /// Table 2 percentages applied to the 48 s average TREC-8 question.
    pub fn profile() -> ModuleProfile {
        let total = 48.0;
        ModuleProfile {
            times: ModuleTimings {
                qp: 0.011 * total,
                pr: 0.444 * total,
                ps: 0.054 * total,
                po: 0.001 * total,
                ap: 0.487 * total,
                overhead: 0.0,
            },
            sub_collections: 8,
            paragraphs_retrieved: 1000,
            paragraphs_accepted: 600,
            pr_granularity_cv: 0.8,
            ap_granularity_cv: 0.5,
            question_memory_lo: 25 << 20,
            question_memory_hi: 40 << 20,
            node_memory: 256 << 20,
            qa_weights: ResourceWeights::QA,
            pr_weights: ResourceWeights::PR,
            ap_weights: ResourceWeights::AP,
        }
    }
}

/// Marker type exposing the TREC-9 profiles.
pub struct Trec9Profile;

impl Trec9Profile {
    /// The *average* TREC-9 question (Table 2 percentages on 94 s total).
    pub fn average() -> ModuleProfile {
        let total = 94.0;
        ModuleProfile {
            times: ModuleTimings {
                qp: 0.012 * total,
                pr: 0.265 * total,
                ps: 0.022 * total,
                po: 0.001 * total,
                ap: 0.697 * total,
                overhead: 0.0,
            },
            ..Self::complex()
        }
    }

    /// The "complex" question profile of Table 8 (307 questions with at
    /// least 20 paragraphs per AP module on 12 nodes): absolute 1-processor
    /// module times.
    pub fn complex() -> ModuleProfile {
        ModuleProfile {
            times: ModuleTimings {
                qp: 0.81,
                pr: 38.01,
                ps: 2.06,
                po: 0.02,
                ap: 117.55,
                overhead: 0.0,
            },
            sub_collections: 8,
            paragraphs_retrieved: 1500,
            paragraphs_accepted: 880,
            // The Q226 trace shows per-collection PR times of 0.19–1.52 s
            // around a ~0.66 s mean: CV ≈ 0.65.
            pr_granularity_cv: 0.65,
            ap_granularity_cv: 0.5,
            question_memory_lo: 25 << 20,
            question_memory_hi: 40 << 20,
            node_memory: 256 << 20,
            qa_weights: ResourceWeights::QA,
            pr_weights: ResourceWeights::PR,
            ap_weights: ResourceWeights::AP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trec9_complex_matches_table8_row1() {
        let p = Trec9Profile::complex();
        assert_eq!(p.times.qp, 0.81);
        assert_eq!(p.times.pr, 38.01);
        assert_eq!(p.times.ps, 2.06);
        assert_eq!(p.times.po, 0.02);
        assert_eq!(p.times.ap, 117.55);
        // Table 8's 1-processor response time is 158.47 s; the module times
        // printed in the paper sum to 158.45 (rounding in the source table).
        assert!((p.sequential_total() - 158.45).abs() < 0.05);
    }

    #[test]
    fn trec9_average_percentages_match_table2() {
        let p = Trec9Profile::average();
        let pct = p.times.percentages().unwrap();
        // The Table-2 column does not sum to exactly 100 % (rounding), so the
        // reconstructed percentages land within half a point.
        assert!((pct[0] - 1.2).abs() < 0.1, "QP {}", pct[0]);
        assert!((pct[1] - 26.5).abs() < 0.5, "PR {}", pct[1]);
        assert!((pct[4] - 69.7).abs() < 0.5, "AP {}", pct[4]);
    }

    #[test]
    fn trec8_bottlenecks_are_pr_and_ap() {
        let p = Trec8Profile::profile();
        assert!(p.times.pr > 20.0 && p.times.ap > 20.0);
        assert!(p.times.qp < 1.0 && p.times.po < 0.1);
    }

    #[test]
    fn parallelizable_fraction_exceeds_90_percent() {
        // Section 5.2: "over 90% of the overall execution time can be
        // parallelized".
        for p in [
            Trec8Profile::profile(),
            Trec9Profile::average(),
            Trec9Profile::complex(),
        ] {
            assert!(p.parallelizable() / p.sequential_total() > 0.90);
        }
    }

    #[test]
    fn per_item_demands_are_consistent() {
        let p = Trec9Profile::complex();
        assert!((p.pr_per_collection() * p.sub_collections as f64 - p.times.pr).abs() < 1e-9);
        assert!((p.ap_per_paragraph() * p.paragraphs_accepted as f64 - p.times.ap).abs() < 1e-9);
        assert!((p.ps_per_paragraph() * p.paragraphs_retrieved as f64 - p.times.ps).abs() < 1e-9);
    }

    #[test]
    fn weights_for_dispatchers() {
        let p = Trec9Profile::complex();
        assert_eq!(p.weights_for(QaModule::Pr), ResourceWeights::PR);
        assert_eq!(p.weights_for(QaModule::Ap), ResourceWeights::AP);
        assert_eq!(p.weights_for(QaModule::Qp), ResourceWeights::QA);
    }

    #[test]
    fn memory_band_matches_section6() {
        let p = Trec9Profile::complex();
        assert_eq!(p.question_memory_lo, 25 << 20);
        assert_eq!(p.question_memory_hi, 40 << 20);
        assert_eq!(p.node_memory, 256 << 20);
        // Four simultaneous questions fit; more than four overload (§6).
        assert!(4 * p.question_memory_hi <= p.node_memory + (64 << 20));
    }
}
