//! Table 5: system throughput (questions/minute) under the three
//! load-balancing strategies at high load. Averaged over five seeds (a
//! single simulated run is as noisy as a single hardware run).

use cluster_sim::experiments::load_balancing_summary;

const SEEDS: [u64; 5] = [2001, 2002, 2003, 2004, 2005];
const PAPER: [(usize, f64, f64, f64); 3] = [
    (4, 2.64, 3.45, 4.18),
    (8, 5.04, 5.52, 7.77),
    (12, 7.89, 9.71, 12.09),
];

fn main() {
    println!(
        "Table 5 — throughput (questions/minute, mean of {} runs)\n",
        SEEDS.len()
    );
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>26}",
        "", "DNS", "INTER", "DQA", "paper (DNS/INTER/DQA)"
    );
    for &(nodes, pd, pi, pq) in &PAPER {
        let s = load_balancing_summary(nodes, &SEEDS);
        println!(
            "{:<14}{:>8.2}{:>8.2}{:>8.2}{:>14.2}{:>6.2}{:>6.2}",
            format!("{nodes} processors"),
            s.throughput[0],
            s.throughput[1],
            s.throughput[2],
            pd,
            pi,
            pq
        );
    }
    println!("\nshape check: DNS < INTER < DQA at every size");
}
