//! Observability overhead gate: the fully instrumented metrics path must
//! cost less than [`OVERHEAD_LIMIT`] of simulator throughput next to a
//! disabled (no-op) registry.
//!
//! Both configurations run the identical seeded workload — a disabled
//! [`MetricsRegistry`] turns every counter/gauge/histogram handle into a
//! no-op, which is the "observability off" baseline DESIGN.md §12
//! budgets against. Timing is best-of-N with the two modes interleaved,
//! so cache warmup and scheduler drift hit both sides equally. The bin
//! also asserts the instrumented run's simulation outcome is identical
//! to the baseline's: recording metrics must never perturb the sim.
//!
//! `--ci` runs the short configuration sized for a per-commit gate.

use cluster_sim::{BalancingStrategy, QaSimulation, SimConfig, SimReport};
use dqa_obs::MetricsRegistry;
use std::time::Instant;

/// Maximum tolerated relative throughput loss with metrics enabled.
const OVERHEAD_LIMIT: f64 = 0.02;

struct Args {
    ci: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 4001,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            other => {
                eprintln!("unknown argument {other}; usage: obs_overhead [--ci] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn run_once(seed: u64, questions: usize, registry: MetricsRegistry) -> (f64, SimReport) {
    let cfg = SimConfig {
        questions,
        metrics: Some(registry),
        ..SimConfig::paper_high_load(8, BalancingStrategy::Dqa, seed)
    };
    let t = Instant::now();
    let report = QaSimulation::new(cfg).run();
    (t.elapsed().as_secs_f64(), report)
}

fn main() {
    let args = parse_args();
    let (questions, repeats) = if args.ci { (256, 3) } else { (1024, 7) };

    // Warmup, and the perturbation check: everything but the metrics
    // snapshot itself must be identical across the two modes.
    let (_, base) = run_once(args.seed, questions, MetricsRegistry::disabled());
    let (_, inst) = run_once(args.seed, questions, MetricsRegistry::new());
    assert_eq!(
        base.questions, inst.questions,
        "instrumentation perturbed the per-question records"
    );
    assert_eq!(
        base.migrations, inst.migrations,
        "instrumentation perturbed the migration counts"
    );
    assert!(
        base.metrics.counters.is_empty() && base.metrics.histograms.is_empty(),
        "a disabled registry must export an empty snapshot"
    );
    assert!(
        !inst.metrics.histograms.is_empty(),
        "an enabled registry must export the recorded histograms"
    );

    let mut t_off = f64::INFINITY;
    let mut t_on = f64::INFINITY;
    for _ in 0..repeats {
        t_off = t_off.min(run_once(args.seed, questions, MetricsRegistry::disabled()).0);
        t_on = t_on.min(run_once(args.seed, questions, MetricsRegistry::new()).0);
    }
    let q_off = questions as f64 / t_off;
    let q_on = questions as f64 / t_on;
    let delta = (q_off - q_on) / q_off;

    println!(
        "Observability overhead — seed {}, {questions} questions, best of {repeats}\n",
        args.seed
    );
    println!("  registry   best wall s   questions/s");
    println!("  disabled   {t_off:>11.4}   {q_off:>11.0}");
    println!("  enabled    {t_on:>11.4}   {q_on:>11.0}");
    println!(
        "\n  throughput delta {:+.2}% (budget {:.0}%)",
        delta * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
    if delta > OVERHEAD_LIMIT {
        eprintln!(
            "obs-overhead VIOLATION: instrumented throughput is {:.2}% below the disabled \
             baseline, over the {:.0}% budget",
            delta * 100.0,
            OVERHEAD_LIMIT * 100.0
        );
        std::process::exit(1);
    }
    println!("  invariants held: identical outcomes, overhead within budget");
}
