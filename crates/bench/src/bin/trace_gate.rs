//! trace_gate: the causal-tracing latency-budget regression gate.
//!
//! Three clauses over the span trees the tracing tier records:
//!
//! 1. **Determinism** — every seeded DES schedule (including the chaos
//!    matrix entries: node crash, elastic drain) is run twice and the
//!    exported Perfetto/chrome-tracing JSON must be byte-identical.
//!    Span identity is derived arithmetic (`derive_trace_id` +
//!    per-trace ordinals), never wall time or RNG, so any divergence is
//!    a real nondeterminism bug.
//! 2. **Attribution** — for every completed question the critical-path
//!    components must sum to the measured end-to-end latency within
//!    [`RESIDUAL_BUDGET`] (1 %), the span set must be well nested, and
//!    every export must validate as chrome-tracing JSON.
//! 3. **Budget** — latency budgets per component share: the queue-wait
//!    (coordination/overhead) share of the DES critical path stays
//!    under [`DES_QUEUE_SHARE_BUDGET`]; on the thread runtime the
//!    admission+queue share stays under [`RUNTIME_QUEUE_SHARE_BUDGET`]
//!    and the flight-recorder ring must not overflow; on the federated
//!    broker the hedge-span share stays under [`HEDGE_SHARE_BUDGET`].
//!
//! On a violation the per-scenario summaries are dumped to
//! `--trace-out` (default `target/trace_gate_dump.txt`) and the process
//! exits non-zero. `--bench-out` writes the schema-v1 `BENCH_9.json`
//! point set: per-scenario span counts, mean end-to-end seconds, queue
//! share and worst attribution residual. `--ci` runs the short
//! fixed-seed configuration sized for a per-commit gate.

use bench::fixtures::QaFixture;
use cluster_sim::{BalancingStrategy, QaSimulation, SimConfig};
use dqa_obs::{critical_path, validate_chrome_json, validate_nesting, CausalSpan, MetricsRegistry};
use dqa_runtime::{Admission, Cluster, ClusterConfig};
use faults::FaultSchedule;
use federation::{FederatedAdmission, FederationBroker, FederationConfig};
use nlp::NamedEntityRecognizer;
use qa_types::NodeId;
use rebalance::ElasticConfig;
use scheduler::partition::PartitionStrategy;
use std::collections::BTreeSet;

/// Largest tolerated |end-to-end − attributed| as a fraction of the
/// end-to-end latency (the acceptance bar's 1 % clause).
const RESIDUAL_BUDGET: f64 = 0.01;
/// Largest tolerated queue-wait share of the DES critical path (the
/// Table 9 coordination overhead must not dominate the phases).
const DES_QUEUE_SHARE_BUDGET: f64 = 0.60;
/// Largest tolerated admission/ingress queue share on the thread
/// runtime under a serial, uncontended workload.
const RUNTIME_QUEUE_SHARE_BUDGET: f64 = 0.50;
/// Largest tolerated hedge-span share of the federated critical path:
/// hedges are a tail patch, not the common case.
const HEDGE_SHARE_BUDGET: f64 = 0.75;

struct Args {
    ci: bool,
    seed: u64,
    trace_out: String,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 9001,
        trace_out: "target/trace_gate_dump.txt".into(),
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--bench-out" => args.bench_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: trace_gate [--ci] [--seed N] \
                     [--trace-out PATH] [--bench-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// One gate point for the bench JSON.
struct Point {
    scenario: &'static str,
    questions: usize,
    spans: usize,
    mean_e2e_s: f64,
    queue_share: f64,
    max_residual_frac: f64,
}

/// Critical-path attribution + budget checks over one span set holding
/// one or more per-question trees. Returns (paths, total e2e, total
/// queue, worst residual fraction).
fn check_paths(
    tag: &str,
    spans: &[CausalSpan],
    violations: &mut Vec<String>,
) -> (usize, f64, f64, f64) {
    if let Err(e) = validate_nesting(spans) {
        violations.push(format!("{tag}: spans are not well nested: {e}"));
    }
    let traces: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.trace)
        .collect();
    let (mut n, mut e2e_sum, mut queue_sum, mut worst) = (0usize, 0.0f64, 0.0f64, 0.0f64);
    for trace in traces {
        let tree: Vec<CausalSpan> = spans.iter().filter(|s| s.trace == trace).cloned().collect();
        let Some(cp) = critical_path(&tree) else {
            violations.push(format!("{tag}: trace {trace:016x} has no critical path"));
            continue;
        };
        let e2e = cp.total();
        if e2e <= 0.0 {
            continue;
        }
        let residual = (e2e - cp.attributed()).abs() / e2e;
        if residual > RESIDUAL_BUDGET {
            violations.push(format!(
                "{tag}: trace {trace:016x} attribution residual {:.2} % exceeds {:.0} % \
                 (e2e {e2e:.6} s, attributed {:.6} s)",
                100.0 * residual,
                100.0 * RESIDUAL_BUDGET,
                cp.attributed()
            ));
        }
        n += 1;
        e2e_sum += e2e;
        queue_sum += cp.queue_total();
        worst = worst.max(residual);
    }
    (n, e2e_sum, queue_sum, worst)
}

/// Run one DES schedule twice, require byte-identical exports, and
/// apply the attribution + queue-share budgets.
fn run_des_scenario(
    name: &'static str,
    build: &dyn Fn() -> SimConfig,
    seed: u64,
    violations: &mut Vec<String>,
) -> (Point, String) {
    let tag = format!("des [{name}]");
    let report = QaSimulation::new(build()).run();
    let json = report.chrome_trace(seed);
    let rerun = QaSimulation::new(build()).run().chrome_trace(seed);
    if rerun != json {
        violations.push(format!(
            "{tag}: span export diverged across a seeded double run"
        ));
    }
    let events = match validate_chrome_json(&json) {
        Ok(n) => n,
        Err(e) => {
            violations.push(format!("{tag}: export is not valid chrome tracing: {e}"));
            0
        }
    };
    let spans = report.all_causal_spans(seed);
    let (paths, e2e_sum, queue_sum, worst) = check_paths(&tag, &spans, violations);
    let queue_share = queue_sum / e2e_sum.max(f64::MIN_POSITIVE);
    if paths > 0 && queue_share > DES_QUEUE_SHARE_BUDGET {
        violations.push(format!(
            "{tag}: queue-wait share {:.1} % exceeds the {:.0} % budget",
            100.0 * queue_share,
            100.0 * DES_QUEUE_SHARE_BUDGET
        ));
    }
    let point = Point {
        scenario: name,
        questions: paths,
        spans: spans.len(),
        mean_e2e_s: e2e_sum / (paths.max(1)) as f64,
        queue_share,
        max_residual_frac: worst,
    };
    let summary = format!(
        "{tag}: {paths} path(s) over {} span(s) ({events} trace event(s)), mean e2e {:.2} s, \
         queue share {:.1} %, worst residual {:.3e}",
        spans.len(),
        point.mean_e2e_s,
        100.0 * queue_share,
        worst
    );
    (point, summary)
}

/// Thread-runtime clause: answer questions through the admission gate,
/// seal spans, and hold the nesting/attribution/queue budgets on wall
/// time. Also proves the flight-recorder ring was large enough.
fn run_runtime(args: &Args, violations: &mut Vec<String>) -> (Point, String) {
    let tag = "runtime";
    let n = if args.ci { 3 } else { 6 };
    let fixture = QaFixture::small(args.seed, n);
    let registry = MetricsRegistry::new();
    let cluster = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            metrics: Some(registry.clone()),
            trace_seed: args.seed,
            ..ClusterConfig::default()
        },
    );
    for gq in &fixture.questions {
        match cluster.submit(&gq.question) {
            Admission::Answered(_) => {}
            other => violations.push(format!(
                "{tag}: question {} did not answer under a permissive policy ({other:?})",
                gq.question.id
            )),
        }
    }
    if cluster.tracer().dropped() > 0 {
        violations.push(format!(
            "{tag}: flight-recorder ring overflowed ({} span(s) dropped)",
            cluster.tracer().dropped()
        ));
    }
    let spans = cluster.tracer().spans();
    cluster.shutdown();
    let (paths, e2e_sum, queue_sum, worst) = check_paths(tag, &spans, violations);
    if paths != n {
        violations.push(format!(
            "{tag}: {paths} sealed trace(s) for {n} answered question(s)"
        ));
    }
    let queue_share = queue_sum / e2e_sum.max(f64::MIN_POSITIVE);
    if paths > 0 && queue_share > RUNTIME_QUEUE_SHARE_BUDGET {
        violations.push(format!(
            "{tag}: admission/queue share {:.1} % exceeds the {:.0} % budget",
            100.0 * queue_share,
            100.0 * RUNTIME_QUEUE_SHARE_BUDGET
        ));
    }
    let point = Point {
        scenario: "runtime",
        questions: paths,
        spans: spans.len(),
        mean_e2e_s: e2e_sum / (paths.max(1)) as f64,
        queue_share,
        max_residual_frac: worst,
    };
    let summary = format!(
        "{tag}: {paths} question(s) sealed into {} span(s), mean e2e {:.3} s, \
         queue share {:.1} %, worst residual {:.3e}",
        spans.len(),
        point.mean_e2e_s,
        100.0 * queue_share,
        worst
    );
    (point, summary)
}

/// Federated clause: scatter-gather through the broker and hold the
/// hedge-share budget over the broker's own span trees.
fn run_federated(args: &Args, violations: &mut Vec<String>) -> (Point, String) {
    let tag = "federated";
    let n = if args.ci { 2 } else { 4 };
    let fixture = QaFixture::small(args.seed ^ 0x5eed, n);
    let mut cfg = FederationConfig::new(2);
    cfg.nodes_per_shard = 2;
    cfg.metrics = Some(MetricsRegistry::new());
    cfg.trace_seed = args.seed;
    let broker = FederationBroker::start(
        &fixture.corpus.documents,
        fixture.corpus.config.sub_collections,
        cfg,
    );
    for gq in &fixture.questions {
        match broker.ask(&gq.question) {
            FederatedAdmission::Answered(_) => {}
            FederatedAdmission::Rejected { .. } => violations.push(format!(
                "{tag}: question {} rejected under a permissive policy",
                gq.question.id
            )),
        }
    }
    let spans = broker.tracer().spans();
    broker.shutdown();
    let (paths, e2e_sum, queue_sum, worst) = check_paths(tag, &spans, violations);
    let hedge_s: f64 = {
        // Hedge seconds on the critical path, summed across traces.
        let traces: BTreeSet<u64> = spans.iter().map(|s| s.trace).collect();
        traces
            .iter()
            .filter_map(|t| {
                let tree: Vec<CausalSpan> =
                    spans.iter().filter(|s| s.trace == *t).cloned().collect();
                critical_path(&tree).map(|cp| cp.seconds_for("hedge"))
            })
            .sum()
    };
    let hedge_share = hedge_s / e2e_sum.max(f64::MIN_POSITIVE);
    if paths > 0 && hedge_share > HEDGE_SHARE_BUDGET {
        violations.push(format!(
            "{tag}: hedge share {:.1} % exceeds the {:.0} % budget",
            100.0 * hedge_share,
            100.0 * HEDGE_SHARE_BUDGET
        ));
    }
    let queue_share = queue_sum / e2e_sum.max(f64::MIN_POSITIVE);
    let point = Point {
        scenario: "federated",
        questions: paths,
        spans: spans.len(),
        mean_e2e_s: e2e_sum / (paths.max(1)) as f64,
        queue_share,
        max_residual_frac: worst,
    };
    let summary = format!(
        "{tag}: {paths} scatter(s) into {} span(s), mean e2e {:.3} s, hedge share {:.1} %, \
         worst residual {:.3e}",
        spans.len(),
        point.mean_e2e_s,
        100.0 * hedge_share,
        worst
    );
    (point, summary)
}

/// Schema-v1 `BENCH_9.json`: per-scenario tracing/attribution summary.
fn render_bench_json(args: &Args, points: &[Point]) -> String {
    let body = points
        .iter()
        .map(|p| {
            format!(
                "{{\"scenario\":\"{}\",\"questions\":{},\"spans\":{},\"mean_e2e_s\":{:.6},\
                 \"queue_share\":{:.4},\"max_residual_frac\":{:.6}}}",
                p.scenario, p.questions, p.spans, p.mean_e2e_s, p.queue_share, p.max_residual_frac
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"bench\":\"trace_gate\",\"schema\":1,\"seed\":{},\"ci\":{},\
         \"residual_budget\":{RESIDUAL_BUDGET},\"points\":[{body}]}}\n",
        args.seed, args.ci
    )
}

fn main() {
    let args = parse_args();
    let questions = if args.ci { 6 } else { 12 };
    let seed = args.seed;
    let mut violations = Vec::new();
    let mut summaries = Vec::new();
    let mut points = Vec::new();
    println!("Trace gate — seed {seed}, {questions} question(s) per DES run\n");

    let low = move || {
        SimConfig::paper_low_load(
            4,
            PartitionStrategy::Recv { chunk_size: 40 },
            questions,
            seed,
        )
    };
    let scenarios: Vec<(&'static str, Box<dyn Fn() -> SimConfig>)> = vec![
        ("low-load", Box::new(low)),
        (
            "high-load",
            Box::new(move || SimConfig::paper_high_load(4, BalancingStrategy::Dqa, seed)),
        ),
        (
            // Chaos matrix: a mid-run node crash re-queues chunks; the
            // retried work must still attribute cleanly.
            "node-crash",
            Box::new(move || {
                let mut cfg = low();
                cfg.faults = FaultSchedule::seeded(seed).crash(NodeId::new(2), 20.0);
                cfg
            }),
        ),
        (
            // Chaos matrix: a live drain migrates sub-collections while
            // questions run.
            "elastic-drain",
            Box::new(move || {
                let mut cfg = low();
                cfg.elastic = Some(ElasticConfig::default());
                cfg.faults = FaultSchedule::seeded(seed).decommission(NodeId::new(1), 15.0);
                cfg
            }),
        ),
    ];
    for (name, build) in scenarios {
        let (point, summary) = run_des_scenario(name, build.as_ref(), seed, &mut violations);
        println!("  {summary}");
        summaries.push(summary);
        points.push(point);
    }

    let (point, summary) = run_runtime(&args, &mut violations);
    println!("  {summary}");
    summaries.push(summary);
    points.push(point);

    let (point, summary) = run_federated(&args, &mut violations);
    println!("  {summary}");
    summaries.push(summary);
    points.push(point);

    if let Some(path) = &args.bench_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, render_bench_json(&args, &points)) {
            Ok(()) => println!("\n  bench summary written to {path}"),
            Err(e) => {
                eprintln!("trace-gate: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !violations.is_empty() {
        let mut dump = String::new();
        for v in &violations {
            eprintln!("trace-gate VIOLATION: {v}");
            dump.push_str(&format!("VIOLATION: {v}\n"));
        }
        dump.push_str("\n--- run summaries ---\n");
        for s in &summaries {
            dump.push_str(s);
            dump.push('\n');
        }
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&args.trace_out, dump) {
            eprintln!("trace-gate: cannot write {}: {e}", args.trace_out);
        } else {
            eprintln!("trace-gate: summaries dumped to {}", args.trace_out);
        }
        std::process::exit(1);
    }
    println!(
        "\n  invariants held: span exports bit-identical across seeded double runs \
         (chaos matrix included), every critical path attributes the end-to-end \
         latency within {:.0} %, and every component stayed inside its latency budget",
        100.0 * RESIDUAL_BUDGET
    );
}
