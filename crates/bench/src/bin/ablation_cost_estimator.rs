//! Ablation: cost-aware PR scheduling (the §1.4 future-work extension).
//!
//! The paper notes that a query-cost estimator "could be used by the load
//! balancing mechanism" but leaves it unexplored. Here: PR workers pull
//! sub-collections in decreasing estimated-cost order (LPT) instead of
//! arbitrary order, with an imperfect estimator.

use cluster_sim::workload::{QaSimulation, SimConfig};
use scheduler::partition::PartitionStrategy;

fn pr_time(nodes: usize, cost_aware: bool, cv: f64) -> f64 {
    let seeds = [31u64, 32, 33];
    let mut total = 0.0;
    for &seed in &seeds {
        let cfg = SimConfig {
            pr_cost_aware: cost_aware,
            pr_estimate_cv: cv,
            ..SimConfig::paper_low_load(nodes, PartitionStrategy::Recv { chunk_size: 40 }, 10, seed)
        };
        total += QaSimulation::new(cfg).run().mean_timings().pr;
    }
    total / seeds.len() as f64
}

fn main() {
    println!("Ablation — cost-aware (LPT) PR scheduling, mean PR time in s\n");
    println!(
        "{:<8}{:>12}{:>16}{:>16}{:>14}",
        "nodes", "id order", "LPT cv=0.3", "LPT cv=1.0", "LPT oracle"
    );
    for nodes in [4usize, 8] {
        let base = pr_time(nodes, false, 0.3);
        let lpt = pr_time(nodes, true, 0.3);
        let noisy = pr_time(nodes, true, 1.0);
        let oracle = pr_time(nodes, true, 0.0);
        println!("{nodes:<8}{base:>12.2}{lpt:>16.2}{noisy:>16.2}{oracle:>14.2}");
    }
    println!("\nreading: starting the biggest sub-collections first trims the PR");
    println!("makespan tail; the gain survives a fairly sloppy estimator, which is");
    println!("why the paper's citation [7] considered frequency-based estimates enough");
}
