//! The §6 adaptivity claim: "the Q/A system dynamically detects the current
//! load and selects the appropriate degree of inter and intra task
//! parallelism at runtime". Sweep the offered load and watch the AP fan-out
//! collapse from cluster-wide partitioning to pure migration.

use cluster_sim::experiments::load_ramp;

fn main() {
    println!("Load ramp — 8-node DQA, offered load vs achieved parallelism\n");
    println!(
        "{:>14}{:>12}{:>14}{:>16}",
        "mean gap (s)", "q/min", "response (s)", "AP fan-out"
    );
    for p in load_ramp(8, &[120.0, 30.0, 10.0, 3.0, 1.0], 71) {
        println!(
            "{:>14.0}{:>12.2}{:>14.1}{:>16.1}",
            p.arrival_gap, p.throughput, p.response_time, p.mean_ap_nodes
        );
    }
    println!("\nreading: at sparse arrivals every question is partitioned across");
    println!("(nearly) all nodes; as arrivals densify the meta-scheduler finds no");
    println!("under-loaded nodes and degenerates to single-node placement — the");
    println!("same code path, switching regimes purely on observed load");
}
