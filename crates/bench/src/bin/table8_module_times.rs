//! Table 8: observed module times and average question response times for
//! the intra-question (low-load) experiment.

use cluster_sim::experiments::intra_experiment;

const PAPER: [(usize, [f64; 6]); 4] = [
    (1, [0.81, 38.01, 2.06, 0.02, 117.55, 158.47]),
    (4, [0.81, 9.78, 0.54, 0.02, 31.51, 43.13]),
    (8, [0.81, 7.34, 0.41, 0.02, 17.86, 27.07]),
    (12, [0.81, 7.34, 0.41, 0.02, 11.90, 21.17]),
];

fn main() {
    println!("Table 8 — module times and question response time (seconds)\n");
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>10}   paper (QP/PR/PS/PO/AP/resp)",
        "", "QP", "PR+PS", "PO", "AP", "response"
    );
    let rows = intra_experiment(&[1, 4, 8, 12], 24, 2001);
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        let t = row.report.mean_timings();
        let p = paper.1;
        println!(
            "{:<14}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>10.2}   {:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.2}",
            format!("{} processors", row.nodes),
            t.qp,
            t.pr,
            t.po,
            t.ap,
            row.report.mean_response_time(),
            p[0],
            p[1],
            p[2],
            p[3],
            p[4],
            p[5]
        );
    }
    println!("\nnotes: PS runs fused with its PR partition (Fig. 3), so our PR column");
    println!("covers the paper's PR+PS; PR stops improving past 8 processors because");
    println!("the collection has 8 sub-collections — same plateau as the paper");
}
