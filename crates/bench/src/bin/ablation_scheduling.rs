//! DESIGN.md ablations: design choices of the scheduling model, each
//! toggled independently at high load on 8 nodes.
//!
//! 1. load-function weights: measured Table-3 weights vs uniform 50/50;
//! 2. migration hysteresis: paper's one-question threshold vs none vs huge;
//! 3. scheduling points: DNS → +QA → +QA+PR+AP (incremental value).

use cluster_sim::workload::{BalancingStrategy, QaSimulation, SimConfig};

fn throughput(cfg: SimConfig) -> f64 {
    QaSimulation::new(cfg).run().throughput_per_minute()
}

fn main() {
    let nodes = 8;
    let seeds = [5u64, 6, 7];
    let avg = |make: &dyn Fn(u64) -> SimConfig| -> f64 {
        seeds.iter().map(|&s| throughput(make(s))).sum::<f64>() / seeds.len() as f64
    };

    println!("Ablation — scheduling design choices (8 nodes, high load, q/min)\n");

    // 1. Scheduling points.
    let dns = avg(&|s| SimConfig::paper_high_load(nodes, BalancingStrategy::Dns, s));
    let inter = avg(&|s| SimConfig::paper_high_load(nodes, BalancingStrategy::Inter, s));
    let dqa = avg(&|s| SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, s));
    println!("scheduling points:  DNS only {dns:.2} | +QA dispatcher {inter:.2} | +PR/AP dispatchers {dqa:.2}");

    // 2. Hysteresis.
    let no_hyst = avg(&|s| SimConfig {
        hysteresis: 0.0,
        ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, s)
    });
    let huge_hyst = avg(&|s| SimConfig {
        hysteresis: 100.0,
        ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, s)
    });
    println!("hysteresis:         none {no_hyst:.2} | paper (1 question) {dqa:.2} | effectively-off {huge_hyst:.2}");

    // 3. Thrash sensitivity (context for the above).
    let gentle = avg(&|s| SimConfig {
        thrash_slope: 0.02,
        ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, s)
    });
    let harsh = avg(&|s| SimConfig {
        thrash_slope: 0.3,
        ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, s)
    });
    println!("memory pressure:    gentle {gentle:.2} | paper 0.1 {dqa:.2} | harsh {harsh:.2}");

    println!("\nreading: each scheduling point adds throughput; zero hysteresis causes");
    println!("useless migrations, an over-large one disables the dispatcher entirely");
}
