//! Ablation: Boolean (paper) vs BM25 ranked retrieval feeding the same
//! PS → PO → AP tail. The paper keeps PS/PO even for ranked engines
//! ("the extracted paragraphs may have different relevance than their
//! parent documents"); this measures whether the front-end choice moves
//! end-to-end answer quality or work volume.

use bench::fixtures::QaFixture;
use ir_engine::ranked::{ranked_retrieve, RankedIndex};
use ir_engine::RetrievalResult;
use nlp::QuestionProcessor;
use qa_pipeline::answer::{extract_answers, ApItem};
use qa_pipeline::ordering::order_paragraphs;
use qa_pipeline::scoring::score_paragraphs;
use qa_pipeline::PipelineConfig;
use qa_types::SubCollectionId;

fn main() {
    let f = QaFixture::trec_like(314, 40);
    let qp = QuestionProcessor::new();
    let cfg = PipelineConfig::default();
    let ner = nlp::NamedEntityRecognizer::standard();
    let ranked_shards: Vec<RankedIndex> = (0..f.corpus.config.sub_collections)
        .map(|i| RankedIndex::build(SubCollectionId::new(i as u32), &f.corpus.documents))
        .collect();

    let mut stats = [[0.0f64; 3]; 2]; // [boolean, ranked] x [hits, paragraphs, io MB]
    let retriever = f.retriever();
    for gq in &f.questions {
        let Ok(p) = qp.process(&gq.question) else {
            continue;
        };
        let boolean = retriever.retrieve_all(&p.keywords);
        let ranked = ranked_shards
            .iter()
            .fold(RetrievalResult::default(), |mut acc, idx| {
                acc.merge(ranked_retrieve(idx, &f.store, &p.keywords, 24, 2));
                acc
            });
        for (i, result) in [&boolean, &ranked].into_iter().enumerate() {
            let scored = score_paragraphs(result.paragraphs.clone(), &p.keywords);
            let accepted = order_paragraphs(scored, cfg.po_threshold, cfg.max_accepted);
            let items: Vec<ApItem> = accepted
                .into_iter()
                .map(|s| ApItem {
                    paragraph: s.paragraph,
                    rank: s.score,
                })
                .collect();
            let answers = extract_answers(&items, &p, &ner, &cfg);
            let hit = answers
                .answers
                .iter()
                .any(|a| a.candidate == gq.expected_answer);
            stats[i][0] += hit as u32 as f64;
            stats[i][1] += result.paragraphs.len() as f64;
            stats[i][2] += result.io_bytes as f64 / 1e6;
        }
    }

    let n = f.questions.len() as f64;
    println!(
        "Ablation — Boolean vs BM25 PR front-end ({} questions)\n",
        f.questions.len()
    );
    println!(
        "{:<22}{:>14}{:>18}{:>14}",
        "", "answer hit %", "paragraphs/query", "disk MB/query"
    );
    for (i, label) in ["Boolean + relaxation", "BM25 top-24/shard"]
        .iter()
        .enumerate()
    {
        println!(
            "{:<22}{:>13.1}%{:>18.1}{:>14.2}",
            label,
            stats[i][0] / n * 100.0,
            stats[i][1] / n,
            stats[i][2] / n
        );
    }
    println!("\nreading: both front-ends feed PS/PO/AP well — the paper's point that");
    println!("paragraph-level scoring, not document ranking, decides answer quality;");
    println!("ranked retrieval mainly caps the paragraph volume AP must chew through");
}
