//! §4.2 experiment: single-node throughput vs simultaneous questions.
//! Peak at 2–3 concurrent questions (I/O overlap), collapse past 4
//! (memory thrashing) — the measurement behind the under-load conditions.

use cluster_sim::experiments::concurrency_experiment;

fn main() {
    println!("§4.2 — single-node throughput vs multiprogramming level\n");
    println!("{:>12}{:>24}", "concurrent", "relative throughput");
    for p in concurrency_experiment(8, 2001) {
        let bar = "#".repeat((p.relative_throughput * 20.0) as usize);
        println!(
            "{:>12}{:>14.2}   {}",
            p.concurrent, p.relative_throughput, bar
        );
    }
    println!("\npaper: 2–3 simultaneous questions beat sequential; >4 falls below it");
}
