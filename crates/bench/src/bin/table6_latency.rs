//! Table 6: average question response times (seconds) under the three
//! load-balancing strategies at high load, averaged over five seeds.

use cluster_sim::experiments::load_balancing_summary;

const SEEDS: [u64; 5] = [2001, 2002, 2003, 2004, 2005];
const PAPER: [(usize, f64, f64, f64); 3] = [
    (4, 143.88, 122.51, 111.85),
    (8, 135.30, 118.82, 113.53),
    (12, 132.45, 115.29, 106.03),
];

fn main() {
    println!(
        "Table 6 — average question response times (seconds, mean of {} runs)\n",
        SEEDS.len()
    );
    println!(
        "{:<14}{:>9}{:>9}{:>9}{:>30}",
        "", "DNS", "INTER", "DQA", "paper (DNS/INTER/DQA)"
    );
    for &(nodes, pd, pi, pq) in &PAPER {
        let s = load_balancing_summary(nodes, &SEEDS);
        println!(
            "{:<14}{:>9.1}{:>9.1}{:>9.1}{:>14.1}{:>8.1}{:>8.1}",
            format!("{nodes} processors"),
            s.response_time[0],
            s.response_time[1],
            s.response_time[2],
            pd,
            pi,
            pq
        );
    }
    println!("\nshape check: DQA lowest latency at every size");
    println!("(absolute values differ: our open-loop burst holds more questions in");
    println!(" flight than the paper's; the strategy ordering is the result)");
}
