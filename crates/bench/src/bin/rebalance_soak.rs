//! Elastic-membership soak: drive the re-sharding tier through drains,
//! joins, permanent losses and stall windows on *both* backends — the
//! virtual-time mirror (`cluster_sim`) and the thread runtime
//! (`dqa_runtime::Cluster`) — and assert the self-healing contract end
//! to end:
//!
//! 1. **Conservation** — every offered question completes; membership
//!    churn never loses or rejects a question under a permissive policy.
//! 2. **Determinism** — running any DES schedule twice yields
//!    bit-identical reports (`PartialEq` over every record and the full
//!    metrics snapshot).
//! 3. **Convergence** — after every drill the ownership map covers all
//!    sub-collections exactly once across the live pool
//!    (`dqa_rebalance_converged` back at 1), and on the runtime a
//!    post-healing answer set is byte-identical to the fault-free
//!    baseline.
//! 4. **Foreground protection** — with a deadline set to a generous
//!    multiple of the fault-free p99, a mid-run drain must shed nothing:
//!    migration yields to foreground instead of pushing it past its
//!    deadline.
//!
//! On a violation the run summaries (and the runtime trace) are dumped
//! to `--trace-out` (default `target/rebalance_soak_trace.txt`) and the
//! process exits non-zero; the CI rebalance job uploads the dump as an
//! artifact. `--bench-out` writes the schema-v1 `BENCH_8.json` point
//! set: per-scenario outcome counts, admitted p99, migrated
//! sub-collections and heal latency.
//!
//! `--ci` runs the short fixed-seed configuration sized for a
//! per-commit gate.

use bench::fixtures::QaFixture;
use cluster_sim::{QaSimulation, SimConfig, SimReport};
use dqa_obs::{metric_key, names, MetricsRegistry};
use dqa_runtime::{Cluster, ClusterConfig};
use faults::FaultSchedule;
use nlp::NamedEntityRecognizer;
use qa_types::NodeId;
use rebalance::ElasticConfig;
use scheduler::partition::PartitionStrategy;

struct Args {
    ci: bool,
    seed: u64,
    trace_out: String,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 8001,
        trace_out: "target/rebalance_soak_trace.txt".into(),
        metrics_out: None,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            "--bench-out" => args.bench_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: rebalance_soak [--ci] [--seed N] \
                     [--trace-out PATH] [--metrics-out PATH] [--bench-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Sum of the labelled `dqa_rebalance_plans_total` family.
fn plans_total(report: &SimReport) -> u64 {
    ["permanent-loss", "drain", "join", "load-skew"]
        .iter()
        .map(|r| {
            report
                .metrics
                .counter(&metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", r)]))
        })
        .sum()
}

/// One soak point for the bench JSON.
struct Point {
    scenario: &'static str,
    nodes: usize,
    report: SimReport,
}

/// Run one DES schedule twice and check determinism, conservation and
/// (when the elastic tier is active) convergence. Returns the first
/// report alongside a one-line summary.
fn run_des_scenario(
    name: &'static str,
    nodes: usize,
    build: &dyn Fn() -> SimConfig,
    violations: &mut Vec<String>,
) -> (SimReport, String) {
    let offered = build().questions;
    let report = QaSimulation::new(build()).run();
    let replay = QaSimulation::new(build()).run();
    let tag = format!("des {nodes} node(s) [{name}]");
    if report != replay {
        violations.push(format!("{tag}: double run diverged"));
    }
    let counts = report.outcome_counts();
    if report.questions.len() != offered || counts.offered() != offered {
        violations.push(format!(
            "{tag}: {} record(s) / {} outcome(s) for {offered} offered — a question was lost",
            report.questions.len(),
            counts.offered()
        ));
    }
    if counts.rejected > 0 {
        violations.push(format!(
            "{tag}: membership churn rejected {} question(s) under a permissive policy",
            counts.rejected
        ));
    }
    if let Some(converged) = report.metrics.gauges.get(names::REBALANCE_CONVERGED) {
        if *converged != 1.0 {
            violations.push(format!(
                "{tag}: ownership never re-converged (gauge {converged})"
            ));
        }
    } else if name != "clean" {
        violations.push(format!("{tag}: elastic tier never activated"));
    }
    let summary = format!(
        "{tag}: {} answered / {} degraded / {} rejected, {} plan(s), {} migrated, \
         heal {:.1} s, p99 {:.1} s",
        counts.answered,
        counts.degraded,
        counts.rejected,
        plans_total(&report),
        report.metrics.counter(names::REBALANCE_MIGRATED_TOTAL),
        report
            .metrics
            .histograms
            .get(names::REBALANCE_HEAL_SECONDS)
            .map_or(0.0, |h| h.sum),
        report.admitted_response_percentile(0.99)
    );
    (report, summary)
}

/// The serial §6.2-style base schedule the membership drills ride on.
fn low_cfg(questions: usize, seed: u64) -> SimConfig {
    SimConfig::paper_low_load(
        4,
        PartitionStrategy::Recv { chunk_size: 40 },
        questions,
        seed,
    )
}

/// Thread-runtime drill: a live drain and a standby join between answer
/// waves, with every post-healing answer byte-compared against the
/// fault-free baseline. This is the "Coverage byte-identical" clause of
/// the acceptance bar, on real threads.
fn run_runtime_demo(
    args: &Args,
    registry: &MetricsRegistry,
    violations: &mut Vec<String>,
) -> Vec<String> {
    let burst = if args.ci { 4 } else { 8 };
    let fixture = QaFixture::small(args.seed, burst);
    let mut lines = Vec::new();

    // Fault-free baseline answers, no elastic tier.
    let clean = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            metrics: Some(registry.clone()),
            ..ClusterConfig::default()
        },
    );
    let mut baseline = Vec::new();
    for gq in &fixture.questions {
        let out = clean.ask(&gq.question).expect("fault-free ask failed");
        assert!(out.coverage.is_complete(), "fault-free run degraded");
        baseline.push(serde_json::to_string(&out.answers).expect("serialize answers"));
    }
    clean.shutdown();

    // Elastic cluster: nodes 0–2 active, node 3 a warm spare. Migration
    // steps are paced fast so the drill stays CI-sized.
    let mut ecfg = ElasticConfig::with_standby(1);
    ecfg.throttle.step_secs = 0.002;
    let cluster = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            metrics: Some(registry.clone()),
            elastic: Some(ecfg),
            ..ClusterConfig::default()
        },
    );
    let mut check_wave = |wave: &str, cluster: &Cluster, violations: &mut Vec<String>| {
        for (i, gq) in fixture.questions.iter().enumerate() {
            match cluster.ask(&gq.question) {
                Err(e) => violations.push(format!(
                    "runtime {wave}: question {} was lost (ask returned {e:?})",
                    gq.question.id
                )),
                Ok(out) => {
                    if !out.coverage.is_complete() {
                        violations.push(format!(
                            "runtime {wave}: question {} degraded under elastic routing",
                            gq.question.id
                        ));
                    } else {
                        let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
                        if bytes != baseline[i] {
                            violations.push(format!(
                                "runtime {wave}: answer for question {} diverged from the \
                                 fault-free baseline",
                                gq.question.id
                            ));
                        }
                    }
                }
            }
        }
    };

    check_wave("pre-drain", &cluster, violations);
    let drained = cluster.drain(NodeId::new(1));
    if drained == 0 {
        violations.push("runtime: drain of an owner moved nothing".into());
    }
    check_wave("post-drain", &cluster, violations);
    let joined = cluster.join(NodeId::new(3));
    if joined == 0 {
        violations.push("runtime: standby join moved nothing".into());
    }
    cluster.heal();
    check_wave("post-join", &cluster, violations);

    match cluster.rebalance_status() {
        Some((epoch, true)) if epoch > 0 => {
            lines.push(format!(
                "runtime: drain moved {drained}, join moved {joined}, epoch {epoch}, converged"
            ));
        }
        status => violations.push(format!(
            "runtime: ownership did not converge after the round trip ({status:?})"
        )),
    }
    if cluster.ownership().iter().any(|&(_, node)| node == 1) {
        violations.push("runtime: the drained node still owns a sub-collection".into());
    }
    cluster.shutdown();

    let snap = registry.snapshot();
    for reason in ["drain", "join"] {
        let key = metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", reason)]);
        if snap.counter(&key) != 1 {
            violations.push(format!(
                "runtime: expected exactly one {reason} plan, saw {}",
                snap.counter(&key)
            ));
        }
    }
    if snap.counter(names::REBALANCE_MIGRATED_TOTAL) < (drained + joined) as u64 {
        violations.push("runtime: migrated counter under-reports the applied steps".into());
    }
    if snap
        .histograms
        .get(names::REBALANCE_HEAL_SECONDS)
        .map_or(true, |h| h.count == 0)
    {
        violations.push("runtime: no heal latency was recorded".into());
    }
    lines.push(format!(
        "runtime counters: {} migrated, {} throttle deferral(s), {} wave(s) byte-identical",
        snap.counter(names::REBALANCE_MIGRATED_TOTAL),
        snap.counter_family(names::REBALANCE_THROTTLED_TOTAL),
        3
    ));
    lines
}

/// Schema-v1 `BENCH_8.json`: per-scenario outcome counts, tail latency
/// and healing effort.
fn render_bench_json(args: &Args, points: &[Point]) -> String {
    let body = points
        .iter()
        .map(|p| {
            let counts = p.report.outcome_counts();
            format!(
                "{{\"scenario\":\"{}\",\"nodes\":{},\"offered\":{},\"answered\":{},\
                 \"degraded\":{},\"rejected\":{},\"p99_s\":{:.4},\"plans\":{},\
                 \"migrated\":{},\"heal_s\":{:.4}}}",
                p.scenario,
                p.nodes,
                p.report.questions.len(),
                counts.answered,
                counts.degraded,
                counts.rejected,
                p.report.admitted_response_percentile(0.99),
                plans_total(&p.report),
                p.report.metrics.counter(names::REBALANCE_MIGRATED_TOTAL),
                p.report
                    .metrics
                    .histograms
                    .get(names::REBALANCE_HEAL_SECONDS)
                    .map_or(0.0, |h| h.sum)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"bench\":\"rebalance_soak\",\"schema\":1,\"seed\":{},\"ci\":{},\
         \"points\":[{body}]}}\n",
        args.seed, args.ci
    )
}

fn main() {
    let args = parse_args();
    let questions = if args.ci { 6 } else { 12 };
    let seed = args.seed;
    let mut violations = Vec::new();
    let mut summaries = Vec::new();
    let mut points = Vec::new();
    println!("Rebalance soak — seed {seed}, {questions} question(s) per DES run\n");

    // Fault-free elastic reference: the tier is on, nothing happens, and
    // its p99 anchors the deadline drill below.
    let clean_build = move || {
        let mut cfg = low_cfg(questions, seed);
        cfg.elastic = Some(ElasticConfig::default());
        cfg
    };
    let (clean, summary) = run_des_scenario("clean", 4, &clean_build, &mut violations);
    if plans_total(&clean) != 0 {
        violations.push("des clean: a quiescent cluster minted a migration plan".into());
    }
    let clean_p99 = clean.admitted_response_percentile(0.99);
    println!("  {summary}");
    summaries.push(summary);
    points.push(Point {
        scenario: "clean",
        nodes: 4,
        report: clean,
    });

    // Named membership drills over the same base schedule.
    let scenarios: Vec<(&'static str, usize, Box<dyn Fn() -> SimConfig>)> = vec![
        (
            "drain-mid-run",
            4,
            Box::new(move || {
                let mut cfg = low_cfg(questions, seed);
                cfg.faults = FaultSchedule::seeded(seed).decommission(NodeId::new(1), 15.0);
                cfg
            }),
        ),
        (
            "drain-join-round-trip",
            3,
            Box::new(move || {
                let mut cfg = low_cfg(questions, seed);
                cfg.nodes = 3;
                cfg.faults = FaultSchedule::seeded(seed)
                    .decommission(NodeId::new(2), 10.0)
                    .node_join(NodeId::new(2), 120.0);
                cfg
            }),
        ),
        (
            "permanent-loss",
            4,
            Box::new(move || {
                let mut cfg = low_cfg(questions, seed);
                cfg.elastic = Some(ElasticConfig::default());
                cfg.faults = FaultSchedule::seeded(seed).crash(NodeId::new(2), 20.0);
                cfg
            }),
        ),
        (
            "drain-under-stall",
            4,
            Box::new(move || {
                let mut cfg = low_cfg(questions, seed);
                cfg.faults = FaultSchedule::seeded(seed)
                    .decommission(NodeId::new(1), 5.0)
                    .rebalance_stall(5.0, 60.0);
                cfg
            }),
        ),
        (
            // The foreground-protection clause: a drain mid-run with a
            // deadline four times the fault-free tail must shed nothing.
            "drain-under-deadline",
            4,
            Box::new(move || {
                let mut cfg = low_cfg(questions, seed);
                cfg.overload.deadline_secs = Some((clean_p99 * 4.0).max(60.0));
                cfg.faults = FaultSchedule::seeded(seed).decommission(NodeId::new(1), 15.0);
                cfg
            }),
        ),
    ];

    for (name, nodes, build) in &scenarios {
        let (report, summary) = run_des_scenario(name, *nodes, build.as_ref(), &mut violations);
        println!("  {summary}");
        summaries.push(summary);
        let tag = format!("des {nodes} node(s) [{name}]");
        match name as &str {
            "drain-mid-run" | "drain-under-stall" | "drain-under-deadline" => {
                let key = metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", "drain")]);
                if report.metrics.counter(&key) != 1 {
                    violations.push(format!("{tag}: drain never minted a plan"));
                }
                if report
                    .questions
                    .iter()
                    .any(|q| q.arrival > 20.0 && q.home == NodeId::new(1))
                {
                    violations.push(format!("{tag}: a question homed on the drained node"));
                }
            }
            _ => {}
        }
        match name as &str {
            "drain-join-round-trip" => {
                let key = metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", "join")]);
                if report.metrics.counter(&key) != 1 {
                    violations.push(format!("{tag}: rejoin never minted a join plan"));
                }
            }
            "permanent-loss" => {
                let key = metric_key(
                    names::REBALANCE_PLANS_TOTAL,
                    &[("reason", "permanent-loss")],
                );
                if report.metrics.counter(&key) != 1 {
                    violations.push(format!("{tag}: the detector never evacuated the victim"));
                }
            }
            "drain-under-stall" => {
                let key = metric_key(names::REBALANCE_THROTTLED_TOTAL, &[("cause", "stalled")]);
                if report.metrics.counter(&key) == 0 {
                    violations.push(format!("{tag}: the stall window deferred no steps"));
                }
            }
            "drain-under-deadline" => {
                let counts = report.outcome_counts();
                let deadline = (clean_p99 * 4.0).max(60.0);
                if counts.degraded > 0 || counts.rejected > 0 {
                    violations.push(format!(
                        "{tag}: migration pushed foreground past its deadline \
                         ({} degraded, {} rejected)",
                        counts.degraded, counts.rejected
                    ));
                }
                if report.admitted_response_percentile(0.99) > deadline {
                    violations.push(format!(
                        "{tag}: admitted p99 {:.1} s exceeds the {deadline:.1} s deadline",
                        report.admitted_response_percentile(0.99)
                    ));
                }
            }
            _ => {}
        }
        points.push(Point {
            scenario: name,
            nodes: *nodes,
            report,
        });
    }

    println!();
    let registry = MetricsRegistry::new();
    let lines = run_runtime_demo(&args, &registry, &mut violations);
    for line in &lines {
        println!("  {line}");
        summaries.push(line.clone());
    }

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => println!("\n  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("rebalance-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.bench_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, render_bench_json(&args, &points)) {
            Ok(()) => println!("  bench summary written to {path}"),
            Err(e) => {
                eprintln!("rebalance-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !violations.is_empty() {
        let mut dump = String::new();
        for v in &violations {
            eprintln!("rebalance-soak VIOLATION: {v}");
            dump.push_str(&format!("VIOLATION: {v}\n"));
        }
        dump.push_str("\n--- run summaries ---\n");
        for s in &summaries {
            dump.push_str(s);
            dump.push('\n');
        }
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&args.trace_out, dump) {
            eprintln!("rebalance-soak: cannot write {}: {e}", args.trace_out);
        } else {
            eprintln!("rebalance-soak: summaries dumped to {}", args.trace_out);
        }
        std::process::exit(1);
    }
    println!(
        "\n  invariants held: zero questions lost on every schedule, double runs \
         bit-identical, ownership re-converged after every drill, post-healing \
         answers byte-identical, migration never pushed foreground past its deadline"
    );
}
