//! Table 4: practical upper limits on the processor count and the
//! corresponding speedups, over the disk × network bandwidth grid.

use analytical::tables::table4;
use bench::render::fmt_bandwidth;

const PAPER: [[(u32, f64); 4]; 4] = [
    [(17, 8.65), (64, 32.84), (89, 45.75), (93, 47.73)],
    [(13, 6.61), (49, 25.30), (68, 35.33), (71, 36.87)],
    [(12, 6.01), (43, 22.49), (61, 31.81), (64, 33.28)],
    [(11, 5.59), (41, 21.35), (57, 29.90), (60, 31.34)],
];

fn main() {
    println!("Table 4 — practical processor limits (N) and speedups (S)\n");
    println!(
        "{:<12}{:>24}{:>24}{:>24}{:>24}",
        "disk \\ net", "1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps"
    );
    for (row, cells) in table4().chunks(4).enumerate() {
        let mut line = format!("{:<12}", fmt_bandwidth(cells[0].disk_bandwidth));
        for (col, c) in cells.iter().enumerate() {
            let (pn, ps) = PAPER[row][col];
            line.push_str(&format!(
                "  N={:<3} S={:<5.2} ({:>3},{:>5.2})",
                c.n_max, c.speedup, pn, ps
            ));
        }
        println!("{line}");
    }
    println!("\n(each cell: model output, then the paper's (N, S) in parentheses)");
}
