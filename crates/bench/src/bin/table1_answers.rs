//! Table 1: example answers returned by the Q/A system (50/250-byte
//! windows). The paper shows Falcon's answers to four TREC questions; we
//! show the reproduction's answers to generated questions with ground
//! truth, plus the hit/miss verdict.

use bench::fixtures::QaFixture;

fn main() {
    let f = QaFixture::trec_like(2001, 8);
    println!("Table 1 — example answers (candidate in brackets, 250-byte windows)\n");
    for gq in &f.questions {
        let out = f.pipeline.answer(&gq.question).expect("pipeline runs");
        println!("{}  {}", gq.question.id, gq.question.text);
        match out.answers.best() {
            Some(a) => {
                let hit = out
                    .answers
                    .answers
                    .iter()
                    .any(|x| x.candidate == gq.expected_answer);
                println!(
                    "    answer  ... {} ... [{}]  ({})",
                    a.text,
                    a.candidate,
                    if hit {
                        "expected answer ranked"
                    } else {
                        "expected answer missed"
                    }
                );
            }
            None => println!("    answer  (none found)"),
        }
        println!(
            "    truth   {} in paragraph {}\n",
            gq.expected_answer, gq.source
        );
    }
}
