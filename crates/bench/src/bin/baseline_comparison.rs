//! Extended baseline comparison: the paper evaluates DQA against DNS and
//! INTER only; this adds two classic models from its related work —
//! sender-initiated diffusion and the gradient model — on the same
//! high-load workload.

use cluster_sim::experiments::{baseline_comparison, BASELINE_ORDER};

const SEEDS: [u64; 5] = [2001, 2002, 2003, 2004, 2005];

fn main() {
    println!(
        "Extended baseline comparison (mean of {} runs)\n",
        SEEDS.len()
    );
    println!(
        "{:<14}{:>8}{:>8}{:>10}{:>8}{:>8}",
        "", "DNS", "SID", "Gradient", "INTER", "DQA"
    );
    for nodes in [4usize, 8, 12] {
        let b = baseline_comparison(nodes, &SEEDS);
        print!("{:<14}", format!("{nodes}p q/min"));
        for t in b.throughput {
            print!("{t:>8.2}");
        }
        println!();
        print!("{:<14}", format!("{nodes}p resp s"));
        for r in b.response_time {
            print!("{r:>8.1}");
        }
        println!();
    }
    println!("\nstrategies: {BASELINE_ORDER:?}");
    println!("\nreading: the local policies (bounded probing, one-hop gradient routing)");
    println!("land between DNS and the global-knowledge INTER; DQA's extra scheduling");
    println!("points beat all of them — the paper's conclusion extended to the");
    println!("related-work baselines it cites");
}
