//! Fig. 7 from the simulator: virtual-time traces of a 4-node run with the
//! calibrated 2001-hardware demands, complementing `figure7_traces` (real
//! threads, real text, wall-clock milliseconds).

use cluster_sim::workload::{QaSimulation, SimConfig, SimEventKind};
use scheduler::partition::PartitionStrategy;

fn main() {
    for (label, strategy) in [
        ("(a) SEND for AP", PartitionStrategy::Send),
        ("(b) ISEND for AP", PartitionStrategy::Isend),
        (
            "(c) RECV for AP (40-paragraph chunks)",
            PartitionStrategy::Recv { chunk_size: 40 },
        ),
    ] {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::paper_low_load(4, strategy, 1, 226)
        };
        let r = QaSimulation::new(cfg).run();
        println!("Figure 7 {label} — virtual seconds, calibrated Pentium-III demands\n");
        for e in &r.trace {
            let line = match e.kind {
                SimEventKind::Submitted { dns, home } => {
                    format!("question started on {home} (DNS chose {dns})")
                }
                SimEventKind::PrChunkDone { node, collection } => {
                    format!("{node} finished collection C{collection}")
                }
                SimEventKind::PoMerged { node } => format!("{node} merged + ordered paragraphs"),
                SimEventKind::ApBatchDone { node, paragraphs } => {
                    format!("{node} finished {paragraphs} paragraphs")
                }
                SimEventKind::Completed { node } => format!("{node} sorted final answers"),
            };
            println!("  [{:>8.2}s] {line}", e.at);
        }
        println!();
    }
    println!("compare (a)'s uneven batch completions against (b)'s tight window and");
    println!("(c)'s many small pulls — the contrast of the paper's three listings");
}
