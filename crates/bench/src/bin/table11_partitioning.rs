//! Table 11: answer-processing speedup for the SEND / ISEND / RECV
//! partitioning strategies.

use cluster_sim::experiments::partition_comparison;

const PAPER: [(usize, f64, f64, f64); 3] = [
    (4, 2.71, 3.61, 3.73),
    (8, 4.78, 6.25, 6.58),
    (12, 7.17, 9.22, 9.87),
];

fn main() {
    println!("Table 11 — AP speedup by partitioning strategy\n");
    println!(
        "{:<14}{:>8}{:>8}{:>8}{:>30}",
        "", "SEND", "ISEND", "RECV", "paper (SEND/ISEND/RECV)"
    );
    let rows = partition_comparison(&[4, 8, 12], 16, 2001);
    for (r, &(_, ps, pi, pr)) in rows.iter().zip(PAPER.iter()) {
        println!(
            "{:<14}{:>8.2}{:>8.2}{:>8.2}{:>16.2}{:>7.2}{:>7.2}",
            format!("{} processors", r.nodes),
            r.send,
            r.isend,
            r.recv,
            ps,
            pi,
            pr
        );
    }
    println!("\nshape check: SEND worst by far; RECV best, ISEND close behind");
}
