//! Fig. 10: answer-processing speedup under RECV for chunk sizes 5–100, on
//! 4- and 8-processor configurations.

use cluster_sim::experiments::chunk_sweep;

fn main() {
    println!("Figure 10 — AP speedup vs RECV chunk granularity\n");
    let sizes = [5usize, 10, 20, 40, 60, 80, 100];
    println!("{:>8}{:>14}{:>14}", "chunk", "4 processors", "8 processors");
    let s4 = chunk_sweep(4, &sizes, 16, 2001);
    let s8 = chunk_sweep(8, &sizes, 16, 2001);
    for ((a, b), &size) in s4.iter().zip(s8.iter()).zip(sizes.iter()) {
        println!("{:>8}{:>14.2}{:>14.2}", size, a.ap_speedup, b.ap_speedup);
    }
    println!("\npaper: best ≈ 40 paragraphs (3.73 at 4p); small chunks lose to per-chunk");
    println!("overhead, large chunks lose to uneven granularity — the peak must be interior");
}
