//! Ablation: shared-Ethernet (the paper's 100 Mbps segment) vs a switched
//! network with per-node links, at several bandwidths under HIGH load —
//! where many questions' partition transfers contend on a shared segment.
//! Quantifies how much distribution overhead is *contention* rather than
//! raw bandwidth.

use cluster_sim::workload::{BalancingStrategy, QaSimulation, SimConfig};

fn throughput(nodes: usize, mbps: f64, switched: bool) -> f64 {
    let seeds = [21u64, 22, 23];
    let mut total = 0.0;
    for &seed in &seeds {
        let cfg = SimConfig {
            net_bandwidth: mbps * 125_000.0,
            switched_network: switched,
            ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, seed)
        };
        total += QaSimulation::new(cfg).run().throughput_per_minute();
    }
    total / seeds.len() as f64
}

fn main() {
    println!("Ablation — shared segment vs switched network (8-node DQA high load,");
    println!("mean throughput in questions/minute)\n");
    println!(
        "{:>12}{:>12}{:>12}{:>12}",
        "bandwidth", "shared", "switched", "gain"
    );
    for mbps in [2.0, 10.0, 100.0] {
        let shared = throughput(8, mbps, false);
        let switched = throughput(8, mbps, true);
        println!(
            "{:>9} Mb{:>12.2}{:>12.2}{:>11.1}%",
            mbps,
            shared,
            switched,
            (switched / shared - 1.0) * 100.0
        );
    }
    println!("\nreading: a null result, and an informative one — even at 2 Mbps the");
    println!("differences sit inside run-to-run noise, because a question moves only");
    println!("~2 MB over a >100 s lifetime. Table 9's sub-second overheads already");
    println!("implied the network model is not where this workload's time goes");
}
