//! Coordinator-crash recovery soak: kill the journaled leader mid-load,
//! fail a successor over, replay the journal and *resume* — not restart
//! — the in-flight question, asserting the failover layer's hard
//! invariants:
//!
//! 1. **Zero lost questions.** Every pre-crash answer survives replay
//!    byte-for-byte, and the question caught in flight by the crash is
//!    resumed to a full-coverage answer.
//! 2. **Crash transparency.** The resumed answer is byte-identical to
//!    the crash-free baseline of the same seed.
//! 3. **Fencing.** A surviving handle of the deposed incarnation (the
//!    zombie ex-leader) keeps computing, but every grant it tries to
//!    journal after the successor's term is rejected — visible in
//!    `dqa_fenced_grants_total`, with zero records appended.
//!
//! The live and crashed journal images live under `--artifacts-dir`
//! (default `target/recovery_soak/`); on a violation a metrics snapshot
//! is dumped next to them and the process exits non-zero, which is what
//! the CI recovery job uploads.
//!
//! `--ci` runs the short fixed-seed configuration sized for a
//! per-commit gate.

use bench::fixtures::QaFixture;
use dqa_obs::MetricsRegistry;
use dqa_runtime::{Cluster, ClusterConfig, CoordinatorJournal};
use journal::{read_segment, JournalRecord};
use nlp::NamedEntityRecognizer;
use qa_types::QuestionId;
use scheduler::partition::PartitionStrategy;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    ci: bool,
    seed: u64,
    questions: usize,
    artifacts_dir: String,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 4242,
        questions: 6,
        artifacts_dir: "target/recovery_soak".into(),
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--questions" => {
                args.questions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.questions)
            }
            "--artifacts-dir" => {
                if let Some(p) = it.next() {
                    args.artifacts_dir = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: recovery_soak [--ci] [--seed N] \
                     [--questions N] [--artifacts-dir DIR] [--metrics-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.ci {
        args.questions = args.questions.min(4);
    }
    args
}

fn config(journal: Option<CoordinatorJournal>, registry: &MetricsRegistry) -> ClusterConfig {
    ClusterConfig {
        nodes: 3,
        ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
        journal,
        metrics: Some(registry.clone()),
        ..ClusterConfig::default()
    }
}

/// Dump the active metrics registry next to the journal images and die.
fn fail(msg: &str, artifacts: &Path, registry: &MetricsRegistry) -> ! {
    eprintln!("recovery-soak VIOLATION: {msg}");
    let _ = std::fs::create_dir_all(artifacts);
    let path = artifacts.join("metrics.json");
    match std::fs::write(&path, registry.snapshot().to_json()) {
        Ok(()) => eprintln!("recovery-soak: metrics dumped to {}", path.display()),
        Err(e) => eprintln!("recovery-soak: cannot write {}: {e}", path.display()),
    }
    eprintln!(
        "recovery-soak: journal images left under {} for upload",
        artifacts.display()
    );
    std::process::exit(1);
}

/// Copy the journal at `live` to `crash`, truncated immediately before
/// `question`'s final-answer record: the exact on-disk image of a
/// coordinator killed after granting and collecting that question's
/// chunks but before durably answering it.
fn crash_image(live: &Path, crash: &Path, question: QuestionId) {
    std::fs::create_dir_all(crash).expect("create crash dir");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(live)
        .expect("read journal dir")
        .map(|e| e.expect("journal dir entry").path())
        .collect();
    segments.sort();
    let mut cut = None;
    for (i, seg) in segments.iter().enumerate() {
        for (offset, framed) in read_segment(seg).expect("journal segment readable") {
            if matches!(
                &framed.record,
                JournalRecord::Answered { question: q, .. } if *q == question
            ) {
                cut = Some((i, offset));
            }
        }
    }
    let (cut_seg, cut_off) = cut.expect("the doomed question's answer must be journaled");
    for (i, seg) in segments.iter().enumerate() {
        if i > cut_seg {
            continue; // written after the kill: never existed
        }
        let bytes = std::fs::read(seg).expect("read segment");
        let keep = if i == cut_seg {
            &bytes[..cut_off as usize]
        } else {
            &bytes[..]
        };
        std::fs::write(crash.join(seg.file_name().expect("segment name")), keep)
            .expect("write crash segment");
    }
}

fn main() {
    let args = parse_args();
    let artifacts = PathBuf::from(&args.artifacts_dir);
    let live_dir = artifacts.join("journal");
    let crash_dir = artifacts.join("journal-crash");
    let _ = std::fs::remove_dir_all(&live_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
    let fixture = QaFixture::small(args.seed, args.questions);

    // Phase 0 — crash-free baseline: the answer bytes every later
    // incarnation must reproduce.
    let baseline_registry = MetricsRegistry::new();
    let clean = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        config(None, &baseline_registry),
    );
    let mut baseline = Vec::new();
    for gq in &fixture.questions {
        let out = clean.ask(&gq.question).expect("crash-free ask failed");
        if !out.coverage.is_complete() {
            fail(
                "crash-free baseline degraded",
                &artifacts,
                &baseline_registry,
            );
        }
        baseline.push(serde_json::to_string(&out.answers).expect("serialize answers"));
    }
    clean.shutdown();

    // Phase 1 — the doomed leader: a journaled run of the same load.
    let (leader, _) = CoordinatorJournal::open(&live_dir).expect("open live journal");
    let leader_registry = MetricsRegistry::new();
    let cl = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        config(Some(leader.clone()), &leader_registry),
    );
    for (i, gq) in fixture.questions.iter().enumerate() {
        let out = cl.ask(&gq.question).expect("journaled ask failed");
        let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
        if bytes != baseline[i] {
            fail(
                &format!("journaling perturbed question {}", gq.question.id),
                &artifacts,
                &leader_registry,
            );
        }
    }
    let appended = leader.appended();
    cl.shutdown();
    drop(leader); // the kill: the leader process is gone

    // The crash lands mid-question: cut the journal just before the last
    // question's durable answer.
    let doomed = fixture.questions[args.questions - 1].question.id;
    crash_image(&live_dir, &crash_dir, doomed);

    // Phase 2 — failover: a successor replays the crashed journal and
    // promotes past the dead incarnation's term. A handle frozen at the
    // old term, minted before the promotion, plays the zombie ex-leader.
    let recovery_start = Instant::now();
    let (successor, recovery) = CoordinatorJournal::open(&crash_dir).expect("open crashed journal");
    let recovery_registry = MetricsRegistry::new();
    if recovery.state.gate_occupancy() != 1 {
        fail(
            &format!(
                "replay found {} in-flight question(s), want exactly the one killed mid-load",
                recovery.state.gate_occupancy()
            ),
            &artifacts,
            &recovery_registry,
        );
    }
    for (i, gq) in fixture.questions[..args.questions - 1].iter().enumerate() {
        let survived = recovery
            .state
            .get(gq.question.id)
            .and_then(|rec| rec.answer())
            .is_some_and(|(payload, complete)| complete && payload == baseline[i].as_bytes());
        if !survived {
            fail(
                &format!(
                    "pre-crash answer for {} lost or changed in replay",
                    gq.question.id
                ),
                &artifacts,
                &recovery_registry,
            );
        }
    }
    let zombie = successor.standby();
    let term = successor.promote().expect("promote successor");

    // Phase 3 — resume the in-flight question on a fresh cluster.
    let cl2 = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        config(Some(successor), &recovery_registry),
    );
    let resumed = cl2.resume(&recovery);
    let recovery_ms = recovery_start.elapsed().as_secs_f64() * 1e3;
    if resumed.len() != 1 {
        fail(
            &format!("resume returned {} question(s), want 1", resumed.len()),
            &artifacts,
            &recovery_registry,
        );
    }
    let (q, res) = &resumed[0];
    match res {
        Ok(out) if !out.coverage.is_complete() => fail(
            "resumed answer lost coverage",
            &artifacts,
            &recovery_registry,
        ),
        Ok(out) => {
            let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
            if bytes != baseline[args.questions - 1] {
                fail(
                    &format!("resumed answer for {} diverged from the baseline", q.id),
                    &artifacts,
                    &recovery_registry,
                );
            }
        }
        Err(e) => fail(
            &format!("resume of {} failed: {e}", q.id),
            &artifacts,
            &recovery_registry,
        ),
    }
    cl2.shutdown();
    let snap = recovery_registry.snapshot();
    for (key, want) in [
        ("dqa_failovers_total", 1u64),
        ("dqa_resumed_questions_total", 1u64),
    ] {
        if snap.counter(key) != want {
            fail(
                &format!("{key} = {}, want {want}", snap.counter(key)),
                &artifacts,
                &recovery_registry,
            );
        }
    }
    if snap.counter("dqa_replayed_records_total") == 0 {
        fail(
            "no journal records replayed",
            &artifacts,
            &recovery_registry,
        );
    }
    if snap.gauges.get("dqa_leader_term").copied() != Some(term as f64) {
        fail(
            "leader-term gauge did not follow the promotion",
            &artifacts,
            &recovery_registry,
        );
    }

    // Phase 4 — the zombie ex-leader keeps answering but appends nothing:
    // every post-term grant must bounce off the fence.
    let zombie_registry = MetricsRegistry::new();
    let cl3 = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        config(Some(zombie), &zombie_registry),
    );
    let out = cl3
        .ask(&fixture.questions[0].question)
        .expect("zombie ask failed");
    cl3.shutdown();
    if serde_json::to_string(&out.answers).expect("serialize answers") != baseline[0] {
        fail(
            "fencing corrupted the zombie's in-memory answer",
            &artifacts,
            &zombie_registry,
        );
    }
    let zsnap = zombie_registry.snapshot();
    if zsnap.counter("dqa_fenced_grants_total") == 0 {
        fail(
            "zombie grants were not fenced",
            &artifacts,
            &zombie_registry,
        );
    }
    if zsnap.counter("dqa_journal_records_total") != 0 {
        fail(
            "a fenced incarnation appended records",
            &artifacts,
            &zombie_registry,
        );
    }

    println!(
        "Recovery soak — seed {}, {} questions, 3 nodes",
        args.seed, args.questions
    );
    println!(
        "  leader journaled {appended} record(s); crash cut mid-question {doomed}; \
         successor promoted to term {term}"
    );
    println!(
        "  replayed {} record(s), resumed 1 question in {recovery_ms:.1} ms wall \
         (recovery histogram: {} sample(s))",
        snap.counter("dqa_replayed_records_total"),
        snap.histograms
            .get("dqa_recovery_seconds")
            .map_or(0, |h| h.count),
    );
    println!(
        "  zombie fenced: {} grant(s) rejected, 0 appended",
        zsnap.counter("dqa_fenced_grants_total")
    );
    if let Some(path) = &args.metrics_out {
        if let Some(dir) = Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => println!("  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("recovery-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("  invariants held: zero lost questions, byte-identical resume, zombie fenced");
}
