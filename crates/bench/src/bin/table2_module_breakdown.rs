//! Table 2: per-module percentage of the Q/A task time, TREC-8 vs TREC-9.
//!
//! Reproduced two ways: (a) the calibrated simulator profiles (which by
//! construction match the paper), and (b) the *real* pipeline on the
//! synthetic corpus — whose absolute times are milliseconds, but whose
//! bottleneck structure (PR and AP dominate; QP and PO negligible) must
//! reproduce.

use bench::fixtures::QaFixture;
use qa_types::{ModuleTimings, Trec8Profile, Trec9Profile};

fn main() {
    println!("Table 2 — % of task time per module\n");
    println!(
        "{:<8}{:>12}{:>12}{:>16}",
        "Module", "TREC-8", "TREC-9", "ours (real)"
    );
    let t8 = Trec8Profile::profile().times;
    let t9 = Trec9Profile::average().times;

    let f = QaFixture::trec_like(42, 24);
    let mut sum = ModuleTimings::default();
    let mut n = 0;
    for gq in &f.questions {
        if let Ok(out) = f.pipeline.answer(&gq.question) {
            sum += out.timings;
            n += 1;
        }
    }
    assert!(n > 0, "no question answered");
    let ours = sum.percentages().expect("nonzero total");
    let p8 = t8.percentages().unwrap();
    let p9 = t9.percentages().unwrap();
    for (i, m) in ["QP", "PR", "PS", "PO", "AP"].iter().enumerate() {
        println!(
            "{:<8}{:>10.1} %{:>10.1} %{:>14.1} %",
            m, p8[i], p9[i], ours[i]
        );
    }
    println!("\npaper: QP 1.1/1.2, PR 44.4/26.5, PS 5.4/2.2, PO 0.1/0.1, AP 48.7/69.7");
    println!("(real-pipeline column: shape check — PR+AP must dominate)");
}
