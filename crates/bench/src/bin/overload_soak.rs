//! Overload soak: sweep offered load from 0.5× to 4× of the admitted
//! capacity on *both* backends — the thread runtime (`dqa-runtime`) and
//! the discrete-event simulator (`cluster-sim`) — under one shared
//! [`OverloadPolicy`], and report goodput, shed rate and admitted
//! p50/p99 latency per load level.
//!
//! Hard invariants asserted at every level:
//!
//! 1. zero silent drops — answered + degraded + rejected == offered;
//! 2. admitted p99 stays within the configured deadline (the simulator
//!    gets one committed phase of grace: a question that passed its last
//!    shed check may overrun by the phase it was already running);
//! 3. shed rate is monotone non-decreasing in offered load (the wall
//!    clock backend gets a small tolerance for scheduler jitter, the
//!    virtual-time backend none);
//! 4. the two backends' saturation curves agree in shape — their shed
//!    rates never move in strongly opposite directions between adjacent
//!    load levels.
//!
//! On a violation the runtime traces are dumped to `--trace-out`
//! (default `target/overload_soak_trace.txt`) and the process exits
//! non-zero; the CI overload job uploads the dump as an artifact.
//!
//! `--ci` runs the short fixed-seed configuration (two load levels)
//! sized for a per-commit gate.

use bench::fixtures::QaFixture;
use cluster_sim::{BalancingStrategy, QaSimulation, SimConfig};
use dqa_obs::MetricsRegistry;
use dqa_runtime::{Admission, Cluster, ClusterConfig};
use nlp::NamedEntityRecognizer;
use qa_types::{OverloadCounts, OverloadPolicy};
use std::time::Instant;

/// In-flight cap shared by both backends; `OverloadPolicy::server` adds
/// an admission queue of the same depth, so 2× capacity saturates the
/// queue and 4× rejects roughly half of the offered burst.
const CAP: usize = 3;
/// Burst size at 1× load: cap plus queue, fully utilized but unshed.
const UNIT_BURST: usize = 2 * CAP;
/// Wall-clock deadline for the thread runtime (seconds from admission);
/// generous next to millisecond-scale questions, so sheds at this level
/// are admission-queue rejections, not phase sheds.
const WALL_DEADLINE: f64 = 10.0;
/// Virtual-time deadline for the simulator (seconds from admission).
const VIRT_DEADLINE: f64 = 600.0;
/// One-committed-phase grace for the simulator's p99 check (see module
/// docs, invariant 2).
const VIRT_GRACE: f64 = 1.25;
/// Scheduler-jitter tolerance on the wall-clock monotonicity check: a
/// thread that submits late into a draining burst can be admitted where
/// the virtual-time backend would reject it.
const WALL_JITTER: f64 = 0.10;

struct Args {
    ci: bool,
    seed: u64,
    trace_out: String,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 3001,
        trace_out: "target/overload_soak_trace.txt".into(),
        metrics_out: None,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            "--bench-out" => args.bench_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: overload_soak [--ci] [--seed N] \
                     [--trace-out PATH] [--metrics-out PATH] [--bench-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// One backend's measurements at one offered-load level.
struct LoadPoint {
    mult: f64,
    counts: OverloadCounts,
    /// Admitted (answered or degraded) latency percentiles; ms for the
    /// runtime, virtual seconds for the simulator. 0.0 when nothing was
    /// admitted.
    p50: f64,
    p99: f64,
}

fn offered_at(mult: f64) -> usize {
    ((UNIT_BURST as f64) * mult).round().max(1.0) as usize
}

fn policy(deadline: f64) -> OverloadPolicy {
    OverloadPolicy::server(CAP).with_deadline(deadline)
}

/// Nearest-rank percentile of an unsorted sample; 0.0 when empty.
fn percentile(sample: &mut [f64], p: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p * sample.len() as f64).ceil() as usize).clamp(1, sample.len());
    sample[rank - 1]
}

/// Offer `offered_at(mult)` questions to a fresh thread-runtime cluster
/// in one concurrent burst and tally every outcome. Returns the point
/// and the rendered trace (kept for the violation dump).
fn run_runtime_point(
    fixture: &QaFixture,
    mult: f64,
    registry: &MetricsRegistry,
    violations: &mut Vec<String>,
) -> (LoadPoint, Vec<String>) {
    let offered = offered_at(mult);
    let cluster = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            overload: policy(WALL_DEADLINE),
            metrics: Some(registry.clone()),
            ..ClusterConfig::default()
        },
    );
    let questions: Vec<_> = fixture.questions[..offered]
        .iter()
        .map(|gq| gq.question.clone())
        .collect();

    let results: Vec<(Admission, f64)> = std::thread::scope(|scope| {
        let cluster = &cluster;
        let handles: Vec<_> = questions
            .iter()
            .map(|q| {
                scope.spawn(move || {
                    let t = Instant::now();
                    let admission = cluster.submit(q);
                    (admission, t.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submit thread panicked"))
            .collect()
    });

    let mut counts = OverloadCounts::default();
    let mut admitted_ms = Vec::new();
    for (admission, ms) in &results {
        match admission.outcome() {
            Some(outcome) => {
                counts.record(outcome);
                if admission.answer().is_some() {
                    admitted_ms.push(*ms);
                }
            }
            None => violations.push(format!(
                "runtime {mult}x: a question failed outright ({admission:?}) — silent drop"
            )),
        }
    }
    if counts.offered() != offered {
        violations.push(format!(
            "runtime {mult}x: outcome conservation broken — {} accounted of {offered} offered",
            counts.offered()
        ));
    }
    let p50 = percentile(&mut admitted_ms, 0.50);
    let p99 = percentile(&mut admitted_ms, 0.99);
    if !admitted_ms.is_empty() && p99 > WALL_DEADLINE * 1e3 {
        violations.push(format!(
            "runtime {mult}x: admitted p99 {p99:.1} ms exceeds the {WALL_DEADLINE} s deadline"
        ));
    }
    let trace = cluster.trace().render();
    cluster.shutdown();
    (
        LoadPoint {
            mult,
            counts,
            p50,
            p99,
        },
        trace,
    )
}

/// The same burst on the simulator's virtual hardware: identical policy
/// shape, virtual-time deadline, all arrivals at t=0.
fn run_sim_point(
    seed: u64,
    mult: f64,
    registry: &MetricsRegistry,
    violations: &mut Vec<String>,
) -> LoadPoint {
    let offered = offered_at(mult);
    let cfg = SimConfig {
        questions: offered,
        arrival_spacing: (0.0, 0.0),
        overload: policy(VIRT_DEADLINE).with_headroom(1.5),
        metrics: Some(registry.clone()),
        ..SimConfig::paper_high_load(4, BalancingStrategy::Dqa, seed)
    };
    let report = QaSimulation::new(cfg).run();
    let counts = report.outcome_counts();
    if counts.offered() != offered || report.questions.len() != offered {
        violations.push(format!(
            "sim {mult}x: outcome conservation broken — {} accounted of {offered} offered",
            counts.offered()
        ));
    }
    let p50 = report.admitted_response_percentile(0.50);
    let p99 = report.admitted_response_percentile(0.99);
    if counts.offered() > counts.rejected && p99 > VIRT_DEADLINE * VIRT_GRACE {
        violations.push(format!(
            "sim {mult}x: admitted p99 {p99:.1} s exceeds the {VIRT_DEADLINE} s deadline \
             (even with one phase of grace)"
        ));
    }
    LoadPoint {
        mult,
        counts,
        p50,
        p99,
    }
}

/// Invariant 3: shed rate never falls as offered load rises.
fn check_monotone(
    points: &[LoadPoint],
    backend: &str,
    tolerance: f64,
    violations: &mut Vec<String>,
) {
    for pair in points.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if hi.counts.shed_rate() < lo.counts.shed_rate() - tolerance {
            violations.push(format!(
                "{backend}: shed rate fell from {:.3} at {}x to {:.3} at {}x",
                lo.counts.shed_rate(),
                lo.mult,
                hi.counts.shed_rate(),
                hi.mult
            ));
        }
    }
}

/// Invariant 4: between adjacent load levels the two backends' shed
/// rates must not move in strongly opposite directions.
fn check_shape_agreement(runtime: &[LoadPoint], sim: &[LoadPoint], violations: &mut Vec<String>) {
    for (rt, ds) in runtime.windows(2).zip(sim.windows(2)) {
        let d_rt = rt[1].counts.shed_rate() - rt[0].counts.shed_rate();
        let d_ds = ds[1].counts.shed_rate() - ds[0].counts.shed_rate();
        if (d_rt > WALL_JITTER && d_ds < -0.05) || (d_rt < -WALL_JITTER && d_ds > 0.05) {
            violations.push(format!(
                "curve shapes diverge between {}x and {}x: runtime shed moved {:+.3}, \
                 simulator {:+.3}",
                rt[0].mult, rt[1].mult, d_rt, d_ds
            ));
        }
    }
    if let (Some(rt_top), Some(ds_top)) = (runtime.last(), sim.last()) {
        if offered_at(rt_top.mult) > 2 * CAP {
            if rt_top.counts.rejected == 0 {
                violations.push(format!(
                    "runtime {}x: burst exceeds cap+queue yet nothing was rejected",
                    rt_top.mult
                ));
            }
            if ds_top.counts.rejected == 0 {
                violations.push(format!(
                    "sim {}x: burst exceeds cap+queue yet nothing was rejected",
                    ds_top.mult
                ));
            }
        }
    }
}

/// Machine-readable summary for the `BENCH_*.json` perf trajectory
/// (schema v1): both backends' load points with outcome counts, goodput,
/// shed rate and admitted latency percentiles, keyed by the run config so
/// a future regression gate can refuse to compare unlike runs.
fn render_bench_json(args: &Args, runtime: &[LoadPoint], sim: &[LoadPoint]) -> String {
    fn point_list(points: &[LoadPoint]) -> String {
        points
            .iter()
            .map(|p| {
                format!(
                    "{{\"mult\":{},\"offered\":{},\"answered\":{},\"degraded\":{},\
                     \"rejected\":{},\"goodput\":{:.4},\"shed_rate\":{:.4},\
                     \"p50\":{:.4},\"p99\":{:.4}}}",
                    p.mult,
                    p.counts.offered(),
                    p.counts.answered,
                    p.counts.degraded,
                    p.counts.rejected,
                    p.counts.goodput(),
                    p.counts.shed_rate(),
                    p.p50,
                    p.p99
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    }
    format!(
        "{{\"bench\":\"overload_soak\",\"schema\":1,\"seed\":{},\"ci\":{},\
         \"cap\":{CAP},\"queue\":{CAP},\"wall_deadline_s\":{WALL_DEADLINE},\
         \"virt_deadline_s\":{VIRT_DEADLINE},\"backends\":[\
         {{\"name\":\"dqa-runtime\",\"latency_unit\":\"ms\",\"points\":[{}]}},\
         {{\"name\":\"cluster-sim\",\"latency_unit\":\"s\",\"points\":[{}]}}]}}\n",
        args.seed,
        args.ci,
        point_list(runtime),
        point_list(sim)
    )
}

fn print_table(backend: &str, unit: &str, points: &[LoadPoint]) {
    println!("  {backend}");
    println!(
        "    load  offered  answered  degraded  rejected  goodput  shed   p50 {unit}  p99 {unit}"
    );
    for p in points {
        println!(
            "    {:>3.1}x  {:>7}  {:>8}  {:>8}  {:>8}  {:>6.2}  {:>5.2}  {:>7.1}  {:>7.1}",
            p.mult,
            p.counts.offered(),
            p.counts.answered,
            p.counts.degraded,
            p.counts.rejected,
            p.counts.goodput(),
            p.counts.shed_rate(),
            p.p50,
            p.p99
        );
    }
}

fn main() {
    let args = parse_args();
    let mults: &[f64] = if args.ci {
        &[1.0, 4.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    let max_offered = offered_at(mults[mults.len() - 1]);
    let fixture = QaFixture::small(args.seed, max_offered);

    // One registry across every cluster and simulation in the sweep, so
    // the exported snapshot aggregates the whole soak.
    let registry = MetricsRegistry::new();
    let mut violations = Vec::new();
    let mut traces = Vec::new();
    let mut runtime_points = Vec::new();
    let mut sim_points = Vec::new();
    for &mult in mults {
        let (point, trace) = run_runtime_point(&fixture, mult, &registry, &mut violations);
        runtime_points.push(point);
        traces.push((mult, trace));
        sim_points.push(run_sim_point(args.seed, mult, &registry, &mut violations));
    }
    check_monotone(&runtime_points, "runtime", WALL_JITTER, &mut violations);
    check_monotone(&sim_points, "sim", 1e-9, &mut violations);
    check_shape_agreement(&runtime_points, &sim_points, &mut violations);

    println!(
        "Overload soak — seed {}, cap {CAP} in-flight + {CAP} queued, \
         {} s wall / {} s virtual deadline\n",
        args.seed, WALL_DEADLINE, VIRT_DEADLINE
    );
    print_table("thread runtime (dqa-runtime)", "ms", &runtime_points);
    println!();
    print_table("discrete-event simulator (cluster-sim)", "s", &sim_points);

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => println!("\n  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("overload-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.bench_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, render_bench_json(&args, &runtime_points, &sim_points)) {
            Ok(()) => println!("  bench summary written to {path}"),
            Err(e) => {
                eprintln!("overload-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !violations.is_empty() {
        let mut dump = String::new();
        for v in &violations {
            eprintln!("overload-soak VIOLATION: {v}");
            dump.push_str(&format!("VIOLATION: {v}\n"));
        }
        for (mult, trace) in &traces {
            dump.push_str(&format!("\n--- runtime trace at {mult}x ---\n"));
            for line in trace {
                dump.push_str(line);
                dump.push('\n');
            }
        }
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&args.trace_out, dump) {
            eprintln!("overload-soak: cannot write {}: {e}", args.trace_out);
        } else {
            eprintln!("overload-soak: traces dumped to {}", args.trace_out);
        }
        std::process::exit(1);
    }
    println!(
        "\n  invariants held: outcomes conserved, admitted p99 within deadline, \
         shed rate monotone, backend curves agree"
    );
}
