//! Federation chaos soak: drive the broker tier through shard loss,
//! shard partitions and broker crashes on *both* backends — the
//! virtual-time mirror (`federation::sim`) and the thread runtime
//! (`federation::FederationBroker`) — and assert the partial-failure
//! contract end to end:
//!
//! 1. **Conservation** — every offered question leaves exactly one way:
//!    merged (possibly with degraded coverage) or rejected with a
//!    retry-after hint. Never an error, never a silent drop.
//! 2. **Determinism** — running any DES configuration twice yields
//!    bit-identical reports (`PartialEq` over every record, plus a
//!    splitmix64 digest of every shard decision).
//! 3. **Partial-failure tolerance** — with any single shard crashed or
//!    partitioned, every admitted question still yields a merged answer
//!    with coverage < 1.0 at worst; a transient broker crash delays
//!    questions instead of losing them.
//! 4. **Observability** — the runtime burst demo across ≥ 2 shards must
//!    surface hedge / merge / coverage counters in the broker registry.
//!
//! On a violation the per-run summaries are dumped to `--trace-out`
//! (default `target/federation_soak_trace.txt`) and the process exits
//! non-zero; the CI federation job uploads the dump as an artifact.
//! `--bench-out` writes the schema-v1 `BENCH_7.json` perf point: goodput
//! and merged-answer p99 at 1, 2 and 4 shards.
//!
//! `--ci` runs the short fixed-seed configuration sized for a per-commit
//! gate.

use bench::fixtures::QaFixture;
use dqa_obs::{names, MetricsRegistry};
use faults::FaultSchedule;
use federation::{
    run_fed_sim, FedSimConfig, FedSimReport, FederatedAdmission, FederationBroker, FederationConfig,
};
use qa_types::QuestionOutcome;

struct Args {
    ci: bool,
    seed: u64,
    trace_out: String,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 7001,
        trace_out: "target/federation_soak_trace.txt".into(),
        metrics_out: None,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            "--bench-out" => args.bench_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: federation_soak [--ci] [--seed N] \
                     [--trace-out PATH] [--metrics-out PATH] [--bench-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// One named fault schedule of the DES sweep.
struct Scenario {
    name: &'static str,
    schedule: fn(u64) -> FaultSchedule,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "clean",
        schedule: FaultSchedule::seeded,
    },
    Scenario {
        name: "shard-loss",
        schedule: |seed| FaultSchedule::seeded(seed).shard_down(0, 0.0),
    },
    Scenario {
        name: "shard-partition",
        schedule: |seed| FaultSchedule::seeded(seed).shard_partition(0, 4.0, 12.0),
    },
    Scenario {
        name: "broker-crash",
        schedule: |seed| FaultSchedule::seeded(seed).broker_crash_rejoin(3.0, 9.0),
    },
];

/// Run one DES configuration twice and check determinism + conservation.
/// Returns the first report alongside a one-line summary.
fn run_des_scenario(
    shards: usize,
    questions: usize,
    seed: u64,
    scenario: &Scenario,
    violations: &mut Vec<String>,
) -> (FedSimReport, String) {
    let mut cfg = FedSimConfig::new(shards, questions, seed);
    cfg.faults = (scenario.schedule)(seed);
    let report = run_fed_sim(&cfg);
    let replay = run_fed_sim(&cfg);
    let tag = format!("des {}x{} [{}]", shards, questions, scenario.name);
    if report != replay || report.digest != replay.digest {
        violations.push(format!(
            "{tag}: double run diverged (digest {:#018x} vs {:#018x})",
            report.digest, replay.digest
        ));
    }
    if !report.conserved() {
        violations.push(format!(
            "{tag}: conservation broken — {} merged + {} rejected of {} offered",
            report.merges,
            report.rejected,
            report.questions.len()
        ));
    }
    match scenario.name {
        // Losing one member of a multi-shard federation degrades
        // coverage; it must never reject or drop.
        "shard-loss" | "shard-partition" if shards > 1 => {
            if report.rejected > 0 {
                violations.push(format!(
                    "{tag}: single-shard fault caused {} rejection(s)",
                    report.rejected
                ));
            }
            if report
                .questions
                .iter()
                .any(|q| q.responders == 0 || q.coverage.fraction() <= 0.0)
            {
                violations.push(format!("{tag}: a question lost every shard"));
            }
        }
        // A transient broker crash holds arrivals; nothing is refused
        // and nothing starts inside the outage window.
        "broker-crash" => {
            if report.rejected > 0 {
                violations.push(format!(
                    "{tag}: transient broker crash rejected {} question(s)",
                    report.rejected
                ));
            }
            if report
                .questions
                .iter()
                .any(|q| q.arrival >= 3.0 && q.arrival < 9.0)
            {
                violations.push(format!("{tag}: a question started inside the outage"));
            }
        }
        _ => {}
    }
    let counts = report.outcome_counts();
    let summary = format!(
        "{tag}: {} answered / {} degraded / {} rejected, {} hedge(s), \
         {} shortfall(s), p99 {:.1} s, digest {:#018x}",
        counts.answered,
        counts.degraded,
        counts.rejected,
        report.hedges,
        report.quorum_shortfalls,
        report.merged_response_percentile(0.99),
        report.digest
    );
    (report, summary)
}

/// Thread-runtime burst demo: a real broker over ≥ 2 shard clusters with
/// shard 0 injected down, an aggressive hedge floor, and one concurrent
/// burst. Asserts the merge/coverage contract and that the federation
/// counters are visible in the broker registry.
fn run_runtime_demo(args: &Args, violations: &mut Vec<String>) -> (MetricsRegistry, Vec<String>) {
    let burst = if args.ci { 4 } else { 8 };
    let fixture = QaFixture::small(args.seed, burst);
    let registry = MetricsRegistry::new();
    let mut cfg = FederationConfig::new(2);
    cfg.nodes_per_shard = if args.ci { 1 } else { 2 };
    cfg.metrics = Some(registry.clone());
    // Hedge floor 0: every cold shard hedges, so the counters light up.
    cfg.policy = cfg.policy.with_hedge_after(0.0);
    // Shard 0 is dark from t = 0 — the single-member-loss drill.
    cfg.faults = FaultSchedule::seeded(args.seed).shard_down(0, 0.0);
    let broker = FederationBroker::start(
        &fixture.corpus.documents,
        fixture.corpus.config.sub_collections,
        cfg,
    );
    let questions: Vec<_> = fixture.questions[..burst]
        .iter()
        .map(|gq| gq.question.clone())
        .collect();
    let results = broker.ask_many(&questions);
    let mut lines = Vec::new();
    if results.len() != burst {
        violations.push(format!(
            "runtime: {} result(s) for {} offered — silent drop",
            results.len(),
            burst
        ));
    }
    for (i, admission) in results.iter().enumerate() {
        match admission {
            FederatedAdmission::Answered(ans) => {
                if ans.coverage.fraction() >= 1.0 {
                    violations.push(format!(
                        "runtime q{i}: full coverage reported with shard 0 down"
                    ));
                }
                let responders = ans.shards.iter().filter(|s| s.status.responded()).count();
                if responders == 0 {
                    violations.push(format!("runtime q{i}: merged answer with zero responders"));
                }
                lines.push(format!(
                    "runtime q{i}: {:?}, {responders}/{} shard(s), coverage {:.2}, {:.3} s",
                    admission.outcome(),
                    ans.shards.len(),
                    ans.coverage.fraction(),
                    ans.latency_secs
                ));
            }
            FederatedAdmission::Rejected { retry_after } => {
                violations.push(format!(
                    "runtime q{i}: rejected (retry {retry_after:?}) under a permissive policy"
                ));
            }
        }
    }
    if results
        .iter()
        .any(|r| r.outcome() == QuestionOutcome::Answered)
    {
        violations.push("runtime: an answer claimed full coverage with shard 0 down".into());
    }
    broker.shutdown();
    let snap = registry.snapshot();
    let merges = snap.counter(names::MERGES_TOTAL);
    let rejected = snap.counter(&dqa_obs::metric_key(
        names::QUESTIONS_TOTAL,
        &[("outcome", "rejected")],
    ));
    if merges + rejected != burst as u64 {
        violations.push(format!(
            "runtime: counter conservation broken — {merges} merge(s) + {rejected} \
             rejection(s) of {burst} offered"
        ));
    }
    if snap.counter(names::HEDGES_TOTAL) == 0 {
        violations.push("runtime: zero-floor hedging never fired".into());
    }
    if !snap
        .counters
        .keys()
        .any(|k| k.starts_with(names::SHARD_REQUESTS_TOTAL))
    {
        violations.push("runtime: no per-shard request counters exported".into());
    }
    lines.push(format!(
        "runtime counters: {merges} merge(s), {} shortfall(s), {} hedge(s) ({} won)",
        snap.counter(names::QUORUM_SHORTFALLS_TOTAL),
        snap.counter(names::HEDGES_TOTAL),
        snap.counter(names::HEDGE_WINS_TOTAL),
    ));
    (registry, lines)
}

/// Schema-v1 `BENCH_7.json`: goodput and merged-answer p99 at 1/2/4
/// shards on the clean schedule.
fn render_bench_json(args: &Args, points: &[(usize, FedSimReport)]) -> String {
    let body = points
        .iter()
        .map(|(shards, r)| {
            let counts = r.outcome_counts();
            format!(
                "{{\"shards\":{shards},\"offered\":{},\"answered\":{},\"degraded\":{},\
                 \"rejected\":{},\"goodput\":{:.4},\"merged_p99_s\":{:.4},\
                 \"hedges\":{},\"quorum_shortfalls\":{}}}",
                r.questions.len(),
                counts.answered,
                counts.degraded,
                counts.rejected,
                counts.goodput(),
                r.merged_response_percentile(0.99),
                r.hedges,
                r.quorum_shortfalls
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"bench\":\"federation_soak\",\"schema\":1,\"seed\":{},\"ci\":{},\
         \"points\":[{body}]}}\n",
        args.seed, args.ci
    )
}

fn main() {
    let args = parse_args();
    let questions = if args.ci { 12 } else { 40 };
    let shard_counts: &[usize] = &[1, 2, 4];

    let mut violations = Vec::new();
    let mut summaries = Vec::new();
    let mut clean_points = Vec::new();
    println!(
        "Federation soak — seed {}, {questions} question(s) per DES run\n",
        args.seed
    );
    for &shards in shard_counts {
        for scenario in SCENARIOS {
            // Shard faults need a second member to pick up the slack;
            // the 1-shard column only runs the clean + broker schedules.
            if shards == 1 && scenario.name.starts_with("shard") {
                continue;
            }
            let (report, summary) =
                run_des_scenario(shards, questions, args.seed, scenario, &mut violations);
            println!("  {summary}");
            summaries.push(summary);
            if scenario.name == "clean" {
                clean_points.push((shards, report));
            }
        }
    }

    println!();
    let (registry, lines) = run_runtime_demo(&args, &mut violations);
    for line in &lines {
        println!("  {line}");
        summaries.push(line.clone());
    }

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => println!("\n  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("federation-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.bench_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, render_bench_json(&args, &clean_points)) {
            Ok(()) => println!("  bench summary written to {path}"),
            Err(e) => {
                eprintln!("federation-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !violations.is_empty() {
        let mut dump = String::new();
        for v in &violations {
            eprintln!("federation-soak VIOLATION: {v}");
            dump.push_str(&format!("VIOLATION: {v}\n"));
        }
        dump.push_str("\n--- run summaries ---\n");
        for s in &summaries {
            dump.push_str(s);
            dump.push('\n');
        }
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&args.trace_out, dump) {
            eprintln!("federation-soak: cannot write {}: {e}", args.trace_out);
        } else {
            eprintln!("federation-soak: summaries dumped to {}", args.trace_out);
        }
        std::process::exit(1);
    }
    println!(
        "\n  invariants held: conservation on every schedule, double runs \
         bit-identical, single-member faults degrade coverage without loss, \
         federation counters visible"
    );
}
