//! Fig. 8a: analytical system speedup vs processors for three network
//! bandwidths (inter-question parallelism, no partitioning).

use analytical::tables::figure8a;
use bench::render::fmt_bandwidth;

fn main() {
    println!("Figure 8a — analytical system speedup (inter-question parallelism)\n");
    let fig = figure8a(1000, 100);
    print!("{:>6}", "N");
    for (net, _) in &fig {
        print!("{:>12}", fmt_bandwidth(*net));
    }
    println!();
    let len = fig[0].1.len();
    for i in 0..len {
        print!("{:>6}", fig[0].1[i].n);
        for (_, curve) in &fig {
            print!("{:>12.1}", curve[i].speedup);
        }
        println!();
    }
    let (_, gbit) = &fig[fig.len() - 1];
    let eff = gbit.last().unwrap().speedup / gbit.last().unwrap().n as f64;
    println!("\n1 Gbps efficiency at N=1000: {eff:.2}  (paper: ≈ 0.9)");
}
