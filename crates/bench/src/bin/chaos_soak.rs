//! Seeded chaos soak over the thread runtime: sweep the link-failure
//! rate and report recovery overhead (latency inflation, recoveries,
//! speculations, degradations) while asserting the fault framework's
//! two hard invariants:
//!
//! 1. no question is ever lost — every ask returns `Ok`;
//! 2. every full-coverage answer is byte-identical to the fault-free
//!    baseline.
//!
//! On a violation the runtime trace is dumped to `--trace-out` (default
//! `target/chaos_soak_trace.txt`) and the process exits non-zero, which
//! is what the CI chaos job uploads as an artifact.
//!
//! `--ci` runs the short fixed-seed configuration (two fault rates, few
//! questions) sized for a per-commit gate.

use bench::fixtures::QaFixture;
use dqa_obs::MetricsRegistry;
use dqa_runtime::{Cluster, ClusterConfig, TraceKind};
use faults::{FaultSchedule, RetryPolicy};
use nlp::NamedEntityRecognizer;
use qa_types::NodeId;
use scheduler::partition::PartitionStrategy;
use std::time::{Duration, Instant};

struct Args {
    ci: bool,
    seed: u64,
    questions: usize,
    trace_out: String,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 2001,
        questions: 8,
        trace_out: "target/chaos_soak_trace.txt".into(),
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--questions" => {
                args.questions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.questions)
            }
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: chaos_soak [--ci] [--seed N] \
                     [--questions N] [--trace-out PATH] [--metrics-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.ci {
        args.questions = args.questions.min(6);
    }
    args
}

fn config(faults: FaultSchedule, registry: &MetricsRegistry) -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        ap_partition: PartitionStrategy::Recv { chunk_size: 8 },
        faults,
        fault_time_scale: 0.001,
        deadline: Some(Duration::from_secs(20)),
        retry: RetryPolicy::default().with_budget(64),
        speculate_after: Some(5),
        metrics: Some(registry.clone()),
        ..ClusterConfig::default()
    }
}

fn schedule(seed: u64, rate: f64) -> FaultSchedule {
    if rate <= 0.0 {
        return FaultSchedule::none();
    }
    // Link faults scale with the sweep rate; one transient crash and one
    // straggler window ride along at every non-zero point so node-level
    // recovery is exercised too.
    FaultSchedule::seeded(seed)
        .crash_rejoin(NodeId::new(1), 40.0, 160.0)
        .straggler(NodeId::new(2), 80.0, 240.0, 0.25)
        .message_loss(rate)
        .message_delay(rate, 0.003)
        .message_dup(rate / 2.0)
        .monitor_loss(rate)
}

struct RatePoint {
    rate: f64,
    mean_ms: f64,
    recoveries: usize,
    speculations: usize,
    degradations: usize,
    complete: usize,
    asked: usize,
}

fn main() {
    let args = parse_args();
    let fixture = QaFixture::small(args.seed, args.questions);
    let rates: &[f64] = if args.ci {
        &[0.05, 0.15]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20]
    };

    // One registry across the baseline and every fault-rate cluster, so
    // the exported snapshot aggregates the whole soak.
    let registry = MetricsRegistry::new();

    // Fault-free baseline: per-question answer bytes + mean latency.
    let clean = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        config(FaultSchedule::none(), &registry),
    );
    let mut baseline = Vec::new();
    let clean_start = Instant::now();
    for gq in &fixture.questions {
        let out = clean.ask(&gq.question).expect("fault-free ask failed");
        assert!(out.coverage.is_complete(), "fault-free run degraded");
        baseline.push(serde_json::to_string(&out.answers).expect("serialize answers"));
    }
    let clean_ms = clean_start.elapsed().as_secs_f64() * 1e3 / fixture.questions.len() as f64;
    clean.shutdown();

    let mut table = Vec::new();
    for &rate in rates {
        let cluster = Cluster::start(
            fixture.retriever(),
            NamedEntityRecognizer::standard(),
            config(schedule(args.seed, rate), &registry),
        );
        let mut violations: Vec<String> = Vec::new();
        let mut complete = 0usize;
        let mut total_ms = 0.0f64;
        for (i, gq) in fixture.questions.iter().enumerate() {
            let t = Instant::now();
            match cluster.ask(&gq.question) {
                Err(e) => violations.push(format!(
                    "rate {rate}: question {} was lost (ask returned {e:?})",
                    gq.question.id
                )),
                Ok(out) => {
                    total_ms += t.elapsed().as_secs_f64() * 1e3;
                    if out.coverage.is_complete() {
                        complete += 1;
                        let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
                        if bytes != baseline[i] {
                            violations.push(format!(
                                "rate {rate}: full-coverage answer for question {} \
                                 diverged from the fault-free baseline",
                                gq.question.id
                            ));
                        }
                    }
                }
            }
        }
        let events = cluster.trace().events();
        let point = RatePoint {
            rate,
            mean_ms: total_ms / fixture.questions.len().max(1) as f64,
            recoveries: events
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::WorkerFailed))
                .count(),
            speculations: events
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::Speculated(_)))
                .count(),
            degradations: events
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::Degraded(_)))
                .count(),
            complete,
            asked: fixture.questions.len(),
        };
        if !violations.is_empty() {
            let mut dump = String::new();
            for v in &violations {
                eprintln!("chaos-soak VIOLATION: {v}");
                dump.push_str(&format!("VIOLATION: {v}\n"));
            }
            dump.push_str("\n--- runtime trace ---\n");
            for line in cluster.trace().render() {
                dump.push_str(&line);
                dump.push('\n');
            }
            if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&args.trace_out, dump) {
                eprintln!("chaos-soak: cannot write {}: {e}", args.trace_out);
            } else {
                eprintln!("chaos-soak: trace dumped to {}", args.trace_out);
            }
            cluster.shutdown();
            std::process::exit(1);
        }
        cluster.shutdown();
        table.push(point);
    }

    println!(
        "Chaos soak — seed {}, {} questions, 4 nodes (baseline {:.1} ms/question)\n",
        args.seed,
        fixture.questions.len(),
        clean_ms
    );
    println!("  fault rate  mean ms  overhead  recoveries  speculations  degraded  complete");
    for p in &table {
        println!(
            "  {:>10.2}  {:>7.1}  {:>7.2}x  {:>10}  {:>12}  {:>8}  {:>6}/{}",
            p.rate,
            p.mean_ms,
            if clean_ms > 0.0 {
                p.mean_ms / clean_ms
            } else {
                0.0
            },
            p.recoveries,
            p.speculations,
            p.degradations,
            p.complete,
            p.asked
        );
    }
    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => println!("\n  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("chaos-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\n  invariants held: no question lost, full-coverage answers byte-identical");
}
