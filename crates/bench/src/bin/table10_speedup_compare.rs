//! Table 10: analytical versus measured question speedup.

use analytical::IntraQuestionModel;
use cluster_sim::experiments::intra_experiment;
use qa_types::{SystemParams, Trec9Profile};

const PAPER: [(usize, f64, f64); 3] = [(4, 3.84, 3.67), (8, 7.34, 5.85), (12, 10.60, 7.48)];

fn main() {
    println!("Table 10 — analytical vs measured question speedup\n");
    // The paper's cluster: 100 Mbps Ethernet, period disks (the reference
    // bandwidth of the calibration).
    let params = SystemParams::trec9()
        .with_net_bandwidth(100.0 * 125_000.0)
        .with_disk_bandwidth(SystemParams::trec9().ref_disk_bandwidth);
    let model = IntraQuestionModel::new(params, Trec9Profile::complex());

    let rows = intra_experiment(&[1, 4, 8, 12], 24, 2001);
    let t1 = rows[0].report.mean_response_time();

    println!(
        "{:<14}{:>12}{:>12}{:>30}",
        "", "analytical", "measured", "paper (analytical/measured)"
    );
    for (row, &(nodes, pa, pm)) in rows[1..].iter().zip(PAPER.iter()) {
        let analytical = model.speedup(nodes);
        let measured = t1 / row.report.mean_response_time();
        println!(
            "{:<14}{:>12.2}{:>12.2}{:>18.2} / {:.2}",
            format!("{nodes} processors"),
            analytical,
            measured,
            pa,
            pm
        );
    }
    println!("\nshape check: measured < analytical at every size (uneven partition");
    println!("granularity), with the gap widening as processors are added");
}
