//! End-to-end data-integrity soak: corrupt index segments on *both*
//! backends — the virtual-time DES mirror (`cluster_sim::integrity`) and
//! the thread runtime (`dqa_runtime::Cluster`) — and assert the tier's
//! core contract end to end:
//!
//! 1. **Zero silently-wrong answers** — on the runtime, every answer is
//!    either byte-identical to the fault-free baseline at full coverage,
//!    or *explicitly* coverage-degraded (quarantine skips annotated in
//!    coverage and the trace). An answer that differs from baseline while
//!    claiming full coverage is the failure this whole tier exists to
//!    prevent.
//! 2. **Detect-and-repair** — every injected corruption is detected (by
//!    the scrubber or the read path) and repaired (replica splice or
//!    source rebuild); the post-repair answer wave is byte-identical to
//!    the baseline again.
//! 3. **Determinism** — every DES scenario runs twice and the serialized
//!    reports must match byte for byte.
//! 4. **Foreground protection** — with the admission gate pinned above
//!    the throttle's headroom line, scrub steps defer; repair is slower
//!    but never racing foreground questions for capacity.
//!
//! On a violation the summaries are dumped to `--trace-out` (default
//! `target/integrity_soak_trace.txt`), the corrupted segment image is
//! written alongside it as a forensic artifact, and the process exits
//! non-zero. `--bench-out` writes the schema-v1 `BENCH_10.json` point
//! set. `--ci` runs the short fixed-seed configuration.

use bench::fixtures::QaFixture;
use cluster_sim::integrity::{
    run_integrity_sim, IntegritySimConfig, IntegritySimReport, LoadWindow,
};
use dqa_obs::{names, MetricsRegistry};
use dqa_runtime::{Cluster, ClusterConfig, IntegrityConfig};
use faults::FaultSchedule;
use nlp::NamedEntityRecognizer;

struct Args {
    ci: bool,
    seed: u64,
    trace_out: String,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ci: false,
        seed: 10_001,
        trace_out: "target/integrity_soak_trace.txt".into(),
        metrics_out: None,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--trace-out" => {
                if let Some(p) = it.next() {
                    args.trace_out = p;
                }
            }
            "--metrics-out" => args.metrics_out = it.next(),
            "--bench-out" => args.bench_out = it.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: integrity_soak [--ci] [--seed N] \
                     [--trace-out PATH] [--metrics-out PATH] [--bench-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// One soak point for the bench JSON.
struct Point {
    scenario: &'static str,
    report: IntegritySimReport,
}

/// Run one DES scenario twice, check bit-identity and the scenario's
/// invariants, and return the report plus a one-line summary.
fn run_des_scenario(
    name: &'static str,
    cfg: &IntegritySimConfig,
    violations: &mut Vec<String>,
) -> (IntegritySimReport, String) {
    let report = run_integrity_sim(cfg);
    let replay = run_integrity_sim(cfg);
    let tag = format!("des [{name}]");
    if report != replay
        || serde_json::to_string(&report).ok() != serde_json::to_string(&replay).ok()
    {
        violations.push(format!("{tag}: double run diverged"));
    }
    if report.detected_by_scrub + report.detected_by_read != report.injected {
        violations.push(format!(
            "{tag}: {} of {} corruption(s) were never detected",
            report
                .injected
                .saturating_sub(report.detected_by_scrub + report.detected_by_read),
            report.injected
        ));
    }
    if report.repaired_replica + report.repaired_rebuild != report.injected
        || report.unrepaired_at_horizon != 0
    {
        violations.push(format!(
            "{tag}: {} corruption(s) still unrepaired at the horizon",
            report.unrepaired_at_horizon
        ));
    }
    let summary = format!(
        "{tag}: {} injected, {}/{} detected scrub/read, {}/{} repaired replica/rebuild, \
         {} degraded question(s), {} exposed, ttr mean {:.2} s max {:.2} s, {} throttled",
        report.injected,
        report.detected_by_scrub,
        report.detected_by_read,
        report.repaired_replica,
        report.repaired_rebuild,
        report.degraded_questions,
        report.silently_exposed,
        report.mean_time_to_repair_secs,
        report.max_time_to_repair_secs,
        report.throttled_steps
    );
    (report, summary)
}

/// Thread-runtime drill: corrupt two segments, ask under quarantine, scrub,
/// and byte-compare the healed answers against the fault-free baseline.
fn run_runtime_demo(
    args: &Args,
    registry: &MetricsRegistry,
    violations: &mut Vec<String>,
) -> Vec<String> {
    let burst = if args.ci { 4 } else { 8 };
    let fixture = QaFixture::small(args.seed, burst);
    let mut lines = Vec::new();
    let integrity = || IntegrityConfig {
        // Exhaustive read-path verification: a question must never read a
        // damaged region undetected, so "differs from baseline at full
        // coverage" is a true violation, not a sampling miss.
        read_sample_blocks: usize::MAX,
        ..IntegrityConfig::default()
    };

    // Fault-free baseline answers, integrity tier on but nothing injected.
    let clean = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            integrity: Some(integrity()),
            ..ClusterConfig::default()
        },
    );
    let mut baseline = Vec::new();
    for gq in &fixture.questions {
        let out = clean.ask(&gq.question).expect("fault-free ask failed");
        assert!(out.coverage.is_complete(), "fault-free run degraded");
        baseline.push(serde_json::to_string(&out.answers).expect("serialize answers"));
    }
    clean.shutdown();

    // The corrupted cluster: one bit flip and one torn write, scheduled at
    // t = 0 and fired explicitly before the first wave.
    let cluster = Cluster::start(
        fixture.retriever(),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            faults: FaultSchedule::seeded(args.seed)
                .bit_flip_index(1, 0.0)
                .torn_write_index(2, 0.0),
            integrity: Some(integrity()),
            metrics: Some(registry.clone()),
            ..ClusterConfig::default()
        },
    );
    let injected = cluster.inject_scheduled_corruption();
    if injected != 2 {
        violations.push(format!("runtime: injected {injected} of 2 corruptions"));
    }

    // Wave under corruption: every answer must be baseline-identical at
    // full coverage OR explicitly degraded — never silently different.
    let mut degraded = 0usize;
    for (i, gq) in fixture.questions.iter().enumerate() {
        match cluster.ask(&gq.question) {
            Err(e) => violations.push(format!(
                "runtime corrupt-wave: question {} failed outright ({e:?})",
                gq.question.id
            )),
            Ok(out) => {
                let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
                if out.coverage.is_complete() {
                    if bytes != baseline[i] {
                        violations.push(format!(
                            "runtime corrupt-wave: question {} SILENTLY WRONG — differs \
                             from baseline while claiming full coverage",
                            gq.question.id
                        ));
                    }
                } else {
                    degraded += 1;
                }
            }
        }
    }
    if degraded == 0 {
        violations
            .push("runtime corrupt-wave: two quarantined sub-collections degraded nothing".into());
    }
    let quarantined = cluster.quarantined_subs();
    if quarantined != vec![1, 2] {
        violations.push(format!(
            "runtime: expected sub-collections [1, 2] quarantined, saw {quarantined:?}"
        ));
    }

    // Scrub-and-repair, then the healed wave must be byte-identical again.
    let report = cluster.scrub();
    if report.repaired() != 2 || !cluster.quarantined_subs().is_empty() {
        violations.push(format!(
            "runtime: scrub repaired {} of 2 (replica {:?}, rebuild {:?})",
            report.repaired(),
            report.repaired_replica,
            report.repaired_rebuild
        ));
    }
    for (i, gq) in fixture.questions.iter().enumerate() {
        match cluster.ask(&gq.question) {
            Err(e) => violations.push(format!(
                "runtime healed-wave: question {} failed ({e:?})",
                gq.question.id
            )),
            Ok(out) => {
                let bytes = serde_json::to_string(&out.answers).expect("serialize answers");
                if !out.coverage.is_complete() || bytes != baseline[i] {
                    violations.push(format!(
                        "runtime healed-wave: question {} not byte-identical to the \
                         fault-free baseline after repair",
                        gq.question.id
                    ));
                }
            }
        }
    }

    // Forensic artifact on failure: dump the segment image so a broken
    // repair can be diffed offline.
    if !violations.is_empty() {
        if let Some(segment) = cluster.integrity_segment() {
            let path = format!("{}.segment.bin", args.trace_out);
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, segment) {
                Ok(()) => eprintln!("integrity-soak: segment image dumped to {path}"),
                Err(e) => eprintln!("integrity-soak: cannot dump segment to {path}: {e}"),
            }
        }
    }
    cluster.shutdown();

    let snap = registry.snapshot();
    let failures = snap.counter_family(names::INTEGRITY_CHECKSUM_FAILURES_TOTAL);
    let repairs = snap.counter_family(names::INTEGRITY_REPAIRS_TOTAL);
    if failures < 2 {
        violations.push(format!(
            "runtime: only {failures} checksum failure(s) recorded for 2 corruptions"
        ));
    }
    if repairs != 2 {
        violations.push(format!("runtime: {repairs} repair(s) recorded, want 2"));
    }
    lines.push(format!(
        "runtime: {injected} injected, {failures} checksum failure(s), {repairs} repair(s), \
         {degraded} degraded question(s), healed wave byte-identical",
    ));
    lines
}

/// Schema-v1 `BENCH_10.json`: per-scenario detection/repair/exposure
/// counts and time-to-repair.
fn render_bench_json(args: &Args, points: &[Point]) -> String {
    let body = points
        .iter()
        .map(|p| {
            format!(
                "{{\"scenario\":\"{}\",\"injected\":{},\"detected_scrub\":{},\
                 \"detected_read\":{},\"repaired_replica\":{},\"repaired_rebuild\":{},\
                 \"degraded\":{},\"silently_exposed\":{},\"ttr_mean_s\":{:.4},\
                 \"ttr_max_s\":{:.4},\"throttled\":{}}}",
                p.scenario,
                p.report.injected,
                p.report.detected_by_scrub,
                p.report.detected_by_read,
                p.report.repaired_replica,
                p.report.repaired_rebuild,
                p.report.degraded_questions,
                p.report.silently_exposed,
                p.report.mean_time_to_repair_secs,
                p.report.max_time_to_repair_secs,
                p.report.throttled_steps
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"bench\":\"integrity_soak\",\"schema\":1,\"seed\":{},\"ci\":{},\
         \"points\":[{body}]}}\n",
        args.seed, args.ci
    )
}

fn main() {
    let args = parse_args();
    let seed = args.seed;
    let horizon = if args.ci { 60.0 } else { 120.0 };
    let mut violations = Vec::new();
    let mut summaries = Vec::new();
    let mut points = Vec::new();
    println!("Integrity soak — seed {seed}, horizon {horizon} virtual s\n");

    let base = move || IntegritySimConfig {
        horizon_secs: horizon,
        faults: FaultSchedule::seeded(seed)
            .bit_flip_index(1, 3.0)
            .torn_write_index(4, horizon * 0.25)
            .bit_flip_index(6, horizon * 0.5),
        ..IntegritySimConfig::default()
    };

    let scenarios: Vec<(&'static str, IntegritySimConfig)> = vec![
        (
            // Exhaustive read sampling: zero exposure, by construction.
            "exhaustive-read-check",
            IntegritySimConfig {
                read_sample_blocks: usize::MAX,
                ..base()
            },
        ),
        (
            // Scrubber-only detection: read checks off, the scrubber must
            // still find and heal everything by the horizon.
            "scrub-only",
            IntegritySimConfig {
                read_sample_blocks: 0,
                ..base()
            },
        ),
        (
            // Both copies of one region damaged: repair falls back to the
            // source-of-truth rebuild.
            "replica-double-fault",
            IntegritySimConfig {
                read_sample_blocks: usize::MAX,
                replica_damaged: vec![4],
                ..base()
            },
        ),
        (
            // Gate pinned at capacity for the first half: the throttle
            // defers scrub steps and repair lands late but lands.
            "scrub-under-load",
            IntegritySimConfig {
                read_sample_blocks: usize::MAX,
                load: vec![LoadWindow {
                    from: 0.0,
                    until: horizon * 0.5,
                    in_flight: 8,
                }],
                ..base()
            },
        ),
    ];

    for &(name, ref cfg) in &scenarios {
        let (report, summary) = run_des_scenario(name, cfg, &mut violations);
        println!("  {summary}");
        let tag = format!("des [{name}]");
        match name {
            "exhaustive-read-check" => {
                if report.silently_exposed != 0 {
                    violations.push(format!(
                        "{tag}: {} question(s) read corrupt data undetected under an \
                         exhaustive read check",
                        report.silently_exposed
                    ));
                }
                if report.degraded_questions == 0 {
                    violations.push(format!("{tag}: quarantine skips degraded nothing"));
                }
            }
            "scrub-only" => {
                if report.detected_by_read != 0 {
                    violations.push(format!("{tag}: read check fired while disabled"));
                }
            }
            "replica-double-fault" => {
                if report.repaired_rebuild == 0 {
                    violations.push(format!(
                        "{tag}: replica double fault never forced a rebuild repair"
                    ));
                }
            }
            "scrub-under-load" => {
                if report.throttled_steps == 0 {
                    violations.push(format!("{tag}: a pinned gate deferred no scrub steps"));
                }
            }
            _ => {}
        }
        summaries.push(summary);
        points.push(Point {
            scenario: name,
            report,
        });
    }

    println!();
    let registry = MetricsRegistry::new();
    let lines = run_runtime_demo(&args, &registry, &mut violations);
    for line in &lines {
        println!("  {line}");
        summaries.push(line.clone());
    }

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => println!("\n  metrics snapshot written to {path}"),
            Err(e) => {
                eprintln!("integrity-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.bench_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, render_bench_json(&args, &points)) {
            Ok(()) => println!("  bench summary written to {path}"),
            Err(e) => {
                eprintln!("integrity-soak: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if !violations.is_empty() {
        let mut dump = String::new();
        for v in &violations {
            eprintln!("integrity-soak VIOLATION: {v}");
            dump.push_str(&format!("VIOLATION: {v}\n"));
        }
        dump.push_str("\n--- run summaries ---\n");
        for s in &summaries {
            dump.push_str(s);
            dump.push('\n');
        }
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&args.trace_out, dump) {
            eprintln!("integrity-soak: cannot write {}: {e}", args.trace_out);
        } else {
            eprintln!("integrity-soak: summaries dumped to {}", args.trace_out);
        }
        std::process::exit(1);
    }
    println!(
        "\n  invariants held: zero silently-wrong answers, every corruption detected \
         and repaired, DES double runs bit-identical, healed answers byte-identical \
         to the fault-free baseline"
    );
}
