//! Sensitivity of the practical processor limit to each model parameter —
//! the generalization of Table 4's two-parameter sweep.

use analytical::sensitivity::{sweep, Parameter};
use qa_types::{SystemParams, Trec9Profile};

fn main() {
    let params = SystemParams::trec9();
    let profile = Trec9Profile::complex();
    println!(
        "Sensitivity of N_max to ±50% parameter changes (baseline N_max = {})\n",
        analytical::IntraQuestionModel::new(params, profile).n_max()
    );
    println!(
        "{:<24}{:>12}{:>12}{:>14}",
        "parameter", "×0.5", "×1.5", "elasticity"
    );
    let up = sweep(params, profile, 1.5);
    let down = sweep(params, profile, 0.5);
    for p in Parameter::ALL {
        let u = up.iter().find(|s| s.parameter == p).unwrap();
        let d = down.iter().find(|s| s.parameter == p).unwrap();
        println!(
            "{:<24}{:>12}{:>12}{:>14.2}",
            format!("{p:?}"),
            d.n_max,
            u.n_max,
            u.elasticity()
        );
    }
    println!("\nreading: the limit is most sensitive to the paragraph traffic");
    println!("(count × size) and the constant control cost — exactly the terms");
    println!("T_seq is made of (Eq. 33); raw bandwidths matter less once fast");
}
