//! Fig. 7: execution traces of a 4-node homogeneous system answering one
//! question, under (a) SEND, (b) ISEND and (c) RECV AP partitioning.

use bench::fixtures::QaFixture;
use dqa_runtime::{Cluster, ClusterConfig};
use nlp::NamedEntityRecognizer;
use scheduler::partition::PartitionStrategy;

fn main() {
    let f = QaFixture::trec_like(226, 3);
    for (label, strategy) in [
        (
            "(a) RECV for PR/PS and SEND for AP",
            PartitionStrategy::Send,
        ),
        ("(b) ISEND for AP", PartitionStrategy::Isend),
        (
            "(c) RECV for AP",
            PartitionStrategy::Recv { chunk_size: 20 },
        ),
    ] {
        let cluster = Cluster::start(
            f.retriever(),
            NamedEntityRecognizer::standard(),
            ClusterConfig {
                nodes: 4,
                ap_partition: strategy,
                ..ClusterConfig::default()
            },
        );
        let gq = &f.questions[0];
        let out = cluster.ask(&gq.question).expect("distributed answer");
        println!("Figure 7 {label} — question {}\n", gq.question.id);
        for line in cluster.trace().render() {
            println!("  {line}");
        }
        println!(
            "  => {} answers, PR on {} nodes, AP on {} nodes\n",
            out.answers.len(),
            out.pr_nodes.len(),
            out.ap_nodes.len()
        );
        cluster.shutdown();
    }
    println!("(PR always uses receiver-controlled single-collection chunks, as in the paper)");
}
