//! Table 3: average resource weights (CPU vs disk share) per module.
//!
//! The weights are measured the way §4.2 prescribes: accumulate per-module
//! CPU-busy and I/O time, normalize. CPU time comes from the real
//! pipeline's module clocks; PR's I/O time is its accounted disk bytes over
//! a period disk's ~25 MB/s.

use bench::fixtures::QaFixture;
use loadsim::WeightEstimator;
use qa_types::QaModule;

const DISK_BYTES_PER_SEC: f64 = 25.0e6;

fn main() {
    let f = QaFixture::trec_like(7, 24);
    let mut est = WeightEstimator::new();
    for gq in &f.questions {
        let Ok(out) = f.pipeline.answer(&gq.question) else {
            continue;
        };
        let t = out.timings;
        let pr_disk = out.pr_io_bytes as f64 / DISK_BYTES_PER_SEC;
        est.record(QaModule::Qp, t.qp, 0.0);
        est.record(QaModule::Pr, t.pr, pr_disk);
        est.record(QaModule::Ps, t.ps, 0.0);
        est.record(QaModule::Po, t.po, 0.0);
        est.record(QaModule::Ap, t.ap, 0.0);
    }

    println!("Table 3 — resource weights (CPU / DISK)\n");
    println!(
        "{:<6}{:>10}{:>10}{:>22}",
        "", "CPU", "DISK", "paper (CPU/DISK)"
    );
    let qa = est.task_weights().expect("observations");
    println!(
        "{:<6}{:>10.2}{:>10.2}{:>22}",
        "QA", qa.cpu, qa.disk, "0.79 / 0.21"
    );
    let pr = est.weights(QaModule::Pr).expect("PR observed");
    println!(
        "{:<6}{:>10.2}{:>10.2}{:>22}",
        "PR", pr.cpu, pr.disk, "0.20 / 0.80"
    );
    let ap = est.weights(QaModule::Ap).expect("AP observed");
    println!(
        "{:<6}{:>10.2}{:>10.2}{:>22}",
        "AP", ap.cpu, ap.disk, "1.00 / 0.00"
    );
    println!("\n(the modern in-memory index makes our PR less disk-heavy than 2001 hardware;");
    println!(
        " the qualitative split — PR disk-dominated, AP pure CPU — is the load-balancing input)"
    );
}
