//! Table 7: number of migrated questions at the three scheduling points
//! (mean over five seeds).

use cluster_sim::experiments::load_balancing_summary;

const SEEDS: [u64; 5] = [2001, 2002, 2003, 2004, 2005];

fn main() {
    println!(
        "Table 7 — migrations at the three scheduling points (mean of {} runs)\n",
        SEEDS.len()
    );
    println!(
        "{:<22}{:>12}{:>24}{:>32}",
        "", "INTER: QA", "DQA: QA / PR / AP", "paper INTER-QA, DQA QA/PR/AP"
    );
    let paper = [
        (4, 8, (17, 10, 10)),
        (8, 15, (26, 34, 33)),
        (12, 23, (37, 43, 41)),
    ];
    for &(nodes, p_inter, (pq, pp, pa)) in &paper {
        let s = load_balancing_summary(nodes, &SEEDS);
        println!(
            "{:<22}{:>12.1}{:>12.1} / {:>5.1} / {:>5.1}{:>14} {:>2}/{:>2}/{:>2}",
            format!("{} questions ({}p)", 8 * nodes, nodes),
            s.inter_qa,
            s.dqa_migrations[0],
            s.dqa_migrations[1],
            s.dqa_migrations[2],
            p_inter,
            pq,
            pp,
            pa
        );
    }
    println!("\nshape check: PR and AP dispatchers are active (they frequently override");
    println!("the question dispatcher), and activity grows with cluster size");
}
