//! Fig. 9: analytical individual-question speedup vs processors —
//! (a) network-bandwidth sweep at 1 Gbps disk, (b) disk-bandwidth sweep at
//! 1 Gbps network.

use analytical::tables::{figure9a, figure9b};
use bench::render::fmt_bandwidth;

fn print_fig(title: &str, fig: &[(f64, Vec<analytical::tables::SpeedupPoint>)]) {
    println!("{title}\n");
    print!("{:>6}", "N");
    for (bw, _) in fig {
        print!("{:>12}", fmt_bandwidth(*bw));
    }
    println!();
    for i in 0..fig[0].1.len() {
        print!("{:>6}", fig[0].1[i].n);
        for (_, curve) in fig {
            print!("{:>12.1}", curve[i].speedup);
        }
        println!();
    }
    println!();
}

fn main() {
    print_fig(
        "Figure 9a — question speedup, disk 1 Gbps, network sweep",
        &figure9a(200, 20),
    );
    print_fig(
        "Figure 9b — question speedup, network 1 Gbps, disk sweep",
        &figure9b(200, 20),
    );
    println!("shape checks: 9a rises with network bandwidth; 9b falls as disk bandwidth rises");
}
