//! Table 9: measured distribution overhead per question (seconds).

use cluster_sim::experiments::intra_experiment;

const PAPER: [(usize, [f64; 6]); 3] = [
    (4, [0.04, 0.19, 0.15, 0.05, 0.01, 0.44]),
    (8, [0.08, 0.24, 0.19, 0.09, 0.01, 0.61]),
    (12, [0.08, 0.24, 0.22, 0.12, 0.01, 0.67]),
];

fn main() {
    println!("Table 9 — distribution overhead per question (seconds)\n");
    println!(
        "{:<8}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}   paper total",
        "procs", "kw send", "par recv", "par send", "ans recv", "ans sort", "total"
    );
    let rows = intra_experiment(&[4, 8, 12], 24, 2001);
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        let o = row.report.mean_overhead();
        println!(
            "{:<8}{:>9.3}{:>9.3}{:>9.3}{:>9.3}{:>9.3}{:>9.3}   {:.2}",
            row.nodes,
            o.kw_send,
            o.par_recv,
            o.par_send,
            o.ans_recv,
            o.ans_sort,
            o.total(),
            paper.1[5]
        );
    }
    println!("\nshape check: paragraph transfers dominate; total stays well under 3 %");
    println!("of the question response time, exactly as §6.2 reports");
}
