//! Benchmark harness for the IPPS-2001 distributed Q/A reproduction.
//!
//! * `src/bin/table*.rs` and `src/bin/figure*.rs` — one binary per table
//!   and figure of the paper's evaluation; each prints the regenerated rows
//!   next to the values the paper reports. Run them all with
//!   `cargo run -p bench --bin <name>` or see `EXPERIMENTS.md`.
//! * `src/bin/ablation_scheduling.rs` — the DESIGN.md ablations
//!   (load-function weights, migration hysteresis, number of scheduling
//!   points).
//! * `benches/*.rs` — criterion micro-benchmarks of the substrates
//!   (IR engine, pipeline modules, partitioning, DES engine).

pub mod fixtures;
pub mod render;
