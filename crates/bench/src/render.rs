//! Small helpers for printing paper-style tables.

/// Format a bandwidth in bytes/s as the paper writes it ("100 Mbps").
pub fn fmt_bandwidth(bytes_per_sec: f64) -> String {
    let mbps = bytes_per_sec * 8.0 / 1_000_000.0;
    if mbps >= 1000.0 {
        format!("{} Gbps", mbps / 1000.0)
    } else {
        format!("{mbps} Mbps")
    }
}

/// Render one table row of f64 cells with a label.
pub fn row(label: &str, cells: &[f64], precision: usize) -> String {
    let mut s = format!("{label:<16}");
    for c in cells {
        s.push_str(&format!(" {c:>10.precision$}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(fmt_bandwidth(125_000.0), "1 Mbps");
        assert_eq!(fmt_bandwidth(12_500_000.0), "100 Mbps");
        assert_eq!(fmt_bandwidth(125_000_000.0), "1 Gbps");
    }

    #[test]
    fn row_formatting() {
        let r = row("DNS", &[2.64, 5.04], 2);
        assert!(r.starts_with("DNS"));
        assert!(r.contains("2.64"));
    }
}
