//! Shared fixtures for the experiment binaries and criterion benches.

use corpus::{Corpus, CorpusConfig, GeneratedQuestion, QuestionGenerator};
use ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use nlp::NamedEntityRecognizer;
use qa_pipeline::{PipelineConfig, QaPipeline};
use std::sync::Arc;

/// Everything the text-level experiments need: a generated corpus, its
/// index, a sequential pipeline and a question set with ground truth.
pub struct QaFixture {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// Sharded index over it.
    pub index: Arc<ShardedIndex>,
    /// Document store.
    pub store: Arc<DocumentStore>,
    /// Sequential pipeline.
    pub pipeline: QaPipeline,
    /// Generated questions with ground truth.
    pub questions: Vec<GeneratedQuestion>,
}

impl QaFixture {
    /// A small fixture (fast; unit-test scale).
    pub fn small(seed: u64, questions: usize) -> QaFixture {
        Self::build(CorpusConfig::small(seed), seed, questions)
    }

    /// The TREC-like fixture used by the headline experiment binaries.
    pub fn trec_like(seed: u64, questions: usize) -> QaFixture {
        Self::build(CorpusConfig::trec_like(seed), seed, questions)
    }

    fn build(cfg: CorpusConfig, seed: u64, questions: usize) -> QaFixture {
        let corpus = Corpus::generate(cfg).expect("valid corpus config");
        let index = Arc::new(ShardedIndex::build(
            &corpus.documents,
            corpus.config.sub_collections,
        ));
        let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
        let retriever = ParagraphRetriever::new(
            Arc::clone(&index),
            Arc::clone(&store),
            RetrievalConfig::default(),
        );
        let pipeline = QaPipeline::new(
            retriever,
            NamedEntityRecognizer::standard(),
            PipelineConfig::default(),
        );
        let questions = QuestionGenerator::new(&corpus, seed ^ 0xabcd).generate(questions);
        QaFixture {
            corpus,
            index,
            store,
            pipeline,
            questions,
        }
    }

    /// A fresh retriever sharing this fixture's index and store.
    pub fn retriever(&self) -> ParagraphRetriever {
        ParagraphRetriever::new(
            Arc::clone(&self.index),
            Arc::clone(&self.store),
            RetrievalConfig::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fixture_builds_and_answers() {
        let f = QaFixture::small(3, 4);
        assert_eq!(f.questions.len(), 4);
        let out = f.pipeline.answer(&f.questions[0].question).unwrap();
        assert!(out.paragraphs_retrieved > 0);
    }
}
