//! Criterion benches of corpus generation and question synthesis.

use corpus::{Corpus, CorpusConfig, QuestionGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_corpus(c: &mut Criterion) {
    c.bench_function("corpus/generate_small", |b| {
        b.iter(|| black_box(Corpus::generate(CorpusConfig::small(1)).unwrap()))
    });

    let corpus = Corpus::generate(CorpusConfig::small(2)).unwrap();
    c.bench_function("corpus/generate_100_questions", |b| {
        b.iter(|| black_box(QuestionGenerator::new(&corpus, 1).generate(100)))
    });

    c.bench_function("corpus/stats", |b| b.iter(|| black_box(corpus.stats())));
}

criterion_group!(benches, bench_corpus);
criterion_main!(benches);
