//! Criterion benches of the scheduling primitives: the three partitioning
//! algorithms and the meta-scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use loadsim::functions::LoadFunctions;
use qa_types::{NodeId, QaModule, ResourceVector};
use scheduler::meta::meta_schedule;
use scheduler::partition::{partition_isend, partition_recv, partition_send};
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let items: Vec<u32> = (0..10_000).collect();
    let weights = [0.3, 0.25, 0.2, 0.15, 0.1];

    c.bench_function("partition/send_10k", |b| {
        b.iter(|| black_box(partition_send(black_box(items.clone()), &weights)))
    });
    c.bench_function("partition/isend_10k", |b| {
        b.iter(|| black_box(partition_isend(black_box(items.clone()), &weights)))
    });
    c.bench_function("partition/recv_10k_chunk40", |b| {
        b.iter(|| black_box(partition_recv(black_box(items.clone()), 40)))
    });

    let loads: Vec<(NodeId, ResourceVector)> = (0..64)
        .map(|i| {
            (
                NodeId::new(i),
                ResourceVector::new((i % 7) as f64 * 0.2, (i % 5) as f64 * 0.25),
            )
        })
        .collect();
    let f = LoadFunctions::paper();
    c.bench_function("scheduler/meta_schedule_64_nodes", |b| {
        b.iter(|| {
            black_box(
                meta_schedule(
                    black_box(&loads),
                    |v| f.load_for(QaModule::Ap, v),
                    |v| f.is_underloaded(QaModule::Ap, v),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
