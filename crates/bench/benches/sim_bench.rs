//! Criterion benches of the discrete-event simulator: raw engine event
//! throughput and a full low-load experiment run.

use cluster_sim::engine::{Engine, Stage};
use cluster_sim::workload::{QaSimulation, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use qa_types::NodeId;
use scheduler::partition::PartitionStrategy;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    c.bench_function("engine/1000_tasks_4_nodes", |b| {
        b.iter(|| {
            let mut e: Engine<u32> = Engine::new(4, 12.5e6);
            for i in 0..1000u32 {
                let n = NodeId::new(i % 4);
                e.spawn(
                    vec![Stage::disk(n, 0.1), Stage::cpu(n, 0.5), Stage::net(1000.0)],
                    i,
                );
            }
            let mut done = 0;
            while let cluster_sim::engine::Advance::TaskDone { .. } = e.advance(None) {
                done += 1;
            }
            black_box(done)
        })
    });

    c.bench_function("sim/low_load_4_nodes_4_questions", |b| {
        b.iter(|| {
            let cfg =
                SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 9);
            black_box(QaSimulation::new(cfg).run())
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
