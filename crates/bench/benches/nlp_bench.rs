//! Criterion benches of the NLP substrate: tokenization, stemming, NER,
//! question classification.

use bench::fixtures::QaFixture;
use criterion::{criterion_group, criterion_main, Criterion};
use nlp::stem::stem;
use nlp::tokenize::tokenize;
use nlp::{NamedEntityRecognizer, QuestionProcessor};
use std::hint::black_box;

fn bench_nlp(c: &mut Criterion) {
    let f = QaFixture::small(99, 4);
    let paragraph = f.corpus.documents[0].paragraphs[0].clone();
    let ner = NamedEntityRecognizer::standard();
    let qp = QuestionProcessor::new();
    let q = &f.questions[0].question;

    c.bench_function("nlp/tokenize_paragraph", |b| {
        b.iter(|| black_box(tokenize(black_box(&paragraph))))
    });

    c.bench_function("nlp/stem_word", |b| {
        b.iter(|| black_box(stem(black_box("categorizations"))))
    });

    c.bench_function("nlp/ner_paragraph", |b| {
        b.iter(|| black_box(ner.recognize(black_box(&paragraph))))
    });

    c.bench_function("nlp/question_processing", |b| {
        b.iter(|| black_box(qp.process(black_box(q)).unwrap()))
    });
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);
