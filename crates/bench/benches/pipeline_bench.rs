//! Criterion benches of the Q/A pipeline modules: QP classification, PS
//! scoring, AP extraction, and the end-to-end question.

use bench::fixtures::QaFixture;
use criterion::{criterion_group, criterion_main, Criterion};
use nlp::{NamedEntityRecognizer, QuestionProcessor};
use qa_pipeline::answer::{extract_answers, ApItem};
use qa_pipeline::ordering::order_paragraphs;
use qa_pipeline::scoring::score_paragraphs;
use qa_pipeline::PipelineConfig;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let f = QaFixture::small(78, 8);
    let qp = QuestionProcessor::new();
    let gq = &f.questions[0];
    let processed = qp.process(&gq.question).unwrap();
    let retriever = f.retriever();
    let retrieval = retriever.retrieve_all(&processed.keywords);
    let scored = score_paragraphs(retrieval.paragraphs.clone(), &processed.keywords);
    let accepted = order_paragraphs(scored.clone(), 0.25, 512);
    let items: Vec<ApItem> = accepted
        .into_iter()
        .map(|s| ApItem {
            paragraph: s.paragraph,
            rank: s.score,
        })
        .collect();
    let ner = NamedEntityRecognizer::standard();
    let cfg = PipelineConfig::default();

    c.bench_function("pipeline/qp", |b| {
        b.iter(|| black_box(qp.process(black_box(&gq.question)).unwrap()))
    });

    c.bench_function("pipeline/ps_scoring", |b| {
        b.iter(|| {
            black_box(score_paragraphs(
                black_box(retrieval.paragraphs.clone()),
                &processed.keywords,
            ))
        })
    });

    c.bench_function("pipeline/po_ordering", |b| {
        b.iter(|| black_box(order_paragraphs(black_box(scored.clone()), 0.25, 512)))
    });

    c.bench_function("pipeline/ap_extraction", |b| {
        b.iter(|| black_box(extract_answers(black_box(&items), &processed, &ner, &cfg)))
    });

    c.bench_function("pipeline/end_to_end", |b| {
        b.iter(|| black_box(f.pipeline.answer(black_box(&gq.question)).unwrap()))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
