//! Criterion benches of the IR substrate: index construction, Boolean
//! evaluation, quorum relaxation, postings codec, full paragraph retrieval.

use bench::fixtures::QaFixture;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ir_engine::persist::{decode_index, encode_index};
use ir_engine::query::{quorum, BooleanQuery};
use ir_engine::ShardedIndex;
use nlp::QuestionProcessor;
use qa_types::SubCollectionId;
use std::hint::black_box;

fn bench_ir(c: &mut Criterion) {
    let f = QaFixture::small(77, 8);
    let shard = f.index.shard(SubCollectionId::new(0)).unwrap();
    let qp = QuestionProcessor::new();
    let processed = qp.process(&f.questions[0].question).unwrap();
    let terms: Vec<String> = processed.keywords.iter().map(|k| k.term.clone()).collect();

    c.bench_function("ir/index_build", |b| {
        b.iter(|| {
            black_box(ShardedIndex::build(
                black_box(&f.corpus.documents),
                f.corpus.config.sub_collections,
            ))
        })
    });

    c.bench_function("ir/boolean_and", |b| {
        let q = BooleanQuery::all_of(terms.clone());
        b.iter(|| black_box(q.eval(black_box(shard))))
    });

    c.bench_function("ir/quorum", |b| {
        b.iter(|| black_box(quorum(black_box(shard), &terms, 2)))
    });

    c.bench_function("ir/persist_round_trip", |b| {
        b.iter_batched(
            || encode_index(&f.index),
            |bytes| black_box(decode_index(&bytes).unwrap()),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("ir/retrieve_all_shards", |b| {
        let retriever = f.retriever();
        b.iter(|| black_box(retriever.retrieve_all(&processed.keywords)))
    });
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);
