//! Property tests for the checksummed `DQAIDX2` segment codec:
//!
//! 1. **Round trip** — encode → strict decode reproduces every shard for
//!    arbitrary generated document sets.
//! 2. **Version dispatch** — the verifying auto reader decodes `DQAIDX1`
//!    bytes for the same index to the same shards (backward compat).
//! 3. **No silent corruption** — flipping any single byte of a `DQAIDX2`
//!    segment makes the strict reader error *or* (vacuously) decode the
//!    identical index; it never returns silently different postings. The
//!    quarantining reader likewise either flags damage or returns the
//!    pristine index.

use ir_engine::persist::encode_index;
use ir_engine::{
    decode_index_auto, decode_index_quarantining, decode_index_v2, encode_index_v2,
    verify_index_v2, ShardedIndex,
};
use proptest::prelude::*;
use qa_types::{DocId, Document, SubCollectionId};

const WORDS: &[&str] = &[
    "granite", "harbor", "signal", "velvet", "meadow", "cascade", "lantern", "orchid", "tunnel",
    "quarry", "breeze", "copper", "drift", "ember",
];

fn document_strategy(id: u32, subs: u32) -> impl Strategy<Value = Document> {
    (
        0..subs,
        prop::collection::vec(prop::collection::vec(0..WORDS.len(), 1..8), 1..4),
    )
        .prop_map(move |(sub, paragraphs)| Document {
            id: DocId::new(id),
            sub_collection: SubCollectionId::new(sub),
            title: format!("doc {id}"),
            paragraphs: paragraphs
                .into_iter()
                .map(|words| {
                    words
                        .into_iter()
                        .map(|w| WORDS[w])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect(),
        })
}

fn index_strategy() -> impl Strategy<Value = ShardedIndex> {
    (1u32..4)
        .prop_flat_map(|subs| {
            (1usize..10).prop_flat_map(move |n| {
                (0..n as u32)
                    .map(|id| document_strategy(id, subs))
                    .collect::<Vec<_>>()
                    .prop_map(move |docs| (docs, subs))
            })
        })
        .prop_map(|(docs, subs)| ShardedIndex::build(&docs, subs as usize))
}

fn shards_equal(a: &ShardedIndex, b: &ShardedIndex) -> bool {
    a.shard_count() == b.shard_count() && a.shards().zip(b.shards()).all(|(x, y)| x == y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v2_round_trips(idx in index_strategy()) {
        let bytes = encode_index_v2(&idx);
        verify_index_v2(&bytes).unwrap();
        let back = decode_index_v2(&bytes).unwrap();
        prop_assert!(shards_equal(&idx, &back));
    }

    #[test]
    fn auto_reader_accepts_both_versions(idx in index_strategy()) {
        let from_v1 = decode_index_auto(&encode_index(&idx)).unwrap();
        let from_v2 = decode_index_auto(&encode_index_v2(&idx)).unwrap();
        prop_assert!(shards_equal(&from_v1, &from_v2));
        prop_assert!(shards_equal(&idx, &from_v2));
    }

    #[test]
    fn single_byte_flip_never_silently_differs(
        idx in index_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let clean = encode_index_v2(&idx);
        let pos = ((pos_frac * clean.len() as f64) as usize).min(clean.len() - 1);
        let mut bytes = clean.clone();
        bytes[pos] ^= 1 << bit;
        match decode_index_v2(&bytes) {
            Err(_) => {} // detected — the required outcome
            Ok(decoded) => {
                // Only acceptable if the decode is *identical* (cannot
                // happen for a real flip, but the property we need is
                // "never silently different").
                prop_assert!(
                    shards_equal(&idx, &decoded),
                    "silent corruption at byte {pos} bit {bit}"
                );
            }
        }
        // The quarantining reader must flag the damage or return the
        // pristine index — a smaller index with no quarantine report is
        // a silent data loss.
        if let Ok(loaded) = decode_index_quarantining(&bytes) {
            prop_assert!(
                !loaded.quarantined.is_empty() || shards_equal(&idx, &loaded.index),
                "quarantining reader silently dropped data at byte {pos} bit {bit}"
            );
        }
    }

    #[test]
    fn truncation_never_silently_differs(
        idx in index_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let clean = encode_index_v2(&idx);
        let cut = ((cut_frac * clean.len() as f64) as usize).min(clean.len() - 1);
        prop_assert!(decode_index_v2(&clean[..cut]).is_err(), "cut at {cut} accepted");
        if let Ok(loaded) = decode_index_quarantining(&clean[..cut]) {
            prop_assert!(
                !loaded.quarantined.is_empty() || shards_equal(&idx, &loaded.index),
                "torn segment silently shrank at cut {cut}"
            );
        }
    }
}
