//! The Paragraph Retrieval (PR) module: Boolean search with Falcon-style
//! query relaxation, followed by paragraph extraction.
//!
//! PR is the paper's disk-bound bottleneck (80 % of its time is I/O,
//! Table 3). Real disk time is meaningless on a modern machine, so the
//! retriever *accounts* the bytes it touches — postings decoded plus
//! document bodies scanned — and the simulator converts bytes to virtual
//! disk seconds.

use crate::index::{ShardedIndex, SubIndex};
use crate::query::quorum;
use crate::store::DocumentStore;
use crate::terms::index_terms;
use qa_types::{Keyword, Paragraph, QaError, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Tuning knobs of the PR module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Relax the Boolean query (lower the quorum) until at least this many
    /// documents match in the shard.
    pub min_docs: usize,
    /// Cap on documents whose paragraphs are extracted, per shard.
    pub max_docs: usize,
    /// A paragraph is kept when it contains at least this many distinct
    /// query terms (clamped to the query size).
    pub min_paragraph_terms: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        Self {
            min_docs: 3,
            max_docs: 64,
            min_paragraph_terms: 2,
        }
    }
}

/// Output of one PR invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetrievalResult {
    /// Extracted paragraphs (document order within shard order).
    pub paragraphs: Vec<Paragraph>,
    /// Number of documents the Boolean query matched (before the cap).
    pub docs_matched: usize,
    /// The quorum at which the query succeeded (`keywords.len()` = strict
    /// AND; lower values mean the query was relaxed).
    pub quorum_used: usize,
    /// Simulated disk bytes touched (postings + scanned document bodies).
    pub io_bytes: u64,
}

impl RetrievalResult {
    /// Merge a per-shard result into a running total (paragraph merging
    /// module of Fig. 3).
    pub fn merge(&mut self, other: RetrievalResult) {
        self.paragraphs.extend(other.paragraphs);
        self.docs_matched += other.docs_matched;
        self.quorum_used = self.quorum_used.max(other.quorum_used);
        self.io_bytes += other.io_bytes;
    }
}

/// The PR module: owns the sharded index and the document store.
#[derive(Debug, Clone)]
pub struct ParagraphRetriever {
    index: Arc<ShardedIndex>,
    store: Arc<DocumentStore>,
    config: RetrievalConfig,
}

impl ParagraphRetriever {
    /// Construct over a built index and its backing store.
    pub fn new(
        index: Arc<ShardedIndex>,
        store: Arc<DocumentStore>,
        config: RetrievalConfig,
    ) -> Self {
        Self {
            index,
            store,
            config,
        }
    }

    /// The sharded index.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        &self.index
    }

    /// The document store.
    pub fn store(&self) -> &Arc<DocumentStore> {
        &self.store
    }

    /// Retrieval configuration.
    pub fn config(&self) -> RetrievalConfig {
        self.config
    }

    /// Retrieve paragraphs for `keywords` from one sub-collection.
    ///
    /// This is the unit of PR partitioning: the distributed system assigns
    /// whole sub-collections to nodes (Table 2: PR granularity =
    /// "Collection").
    pub fn retrieve(
        &self,
        keywords: &[Keyword],
        shard_id: SubCollectionId,
    ) -> Result<RetrievalResult, QaError> {
        let shard = self
            .index
            .shard(shard_id)
            .ok_or(QaError::UnknownSubCollection(shard_id.raw()))?;
        Ok(self.retrieve_in(keywords, shard))
    }

    /// Retrieve from every shard and merge (the sequential PR behaviour).
    pub fn retrieve_all(&self, keywords: &[Keyword]) -> RetrievalResult {
        let mut total = RetrievalResult::default();
        for shard in self.index.shards() {
            total.merge(self.retrieve_in(keywords, shard));
        }
        total
    }

    fn retrieve_in(&self, keywords: &[Keyword], shard: &SubIndex) -> RetrievalResult {
        let terms: Vec<String> = keywords.iter().map(|k| k.term.clone()).collect();
        if terms.is_empty() {
            return RetrievalResult::default();
        }

        let mut io_bytes: u64 = terms
            .iter()
            .map(|t| shard.postings(t).map_or(0, |p| p.compressed_bytes() as u64))
            .sum();

        // Falcon-style relaxation: strict AND first, then lower the quorum.
        let mut docs = Vec::new();
        let mut quorum_used = 0;
        for k in (1..=terms.len()).rev() {
            docs = quorum(shard, &terms, k);
            quorum_used = k;
            if docs.len() >= self.config.min_docs {
                break;
            }
        }
        let docs_matched = docs.len();
        docs.truncate(self.config.max_docs);

        let term_set: HashSet<&str> = terms.iter().map(String::as_str).collect();
        let need = self
            .config
            .min_paragraph_terms
            .min(term_set.len())
            .min(quorum_used)
            .max(1);

        let mut paragraphs = Vec::new();
        for doc_id in docs {
            let Some(doc) = self.store.document(doc_id) else {
                continue;
            };
            io_bytes += doc.body_bytes() as u64;
            for para in doc.iter_paragraphs() {
                let mut found: HashSet<&str> = HashSet::new();
                for t in index_terms(&para.text) {
                    if let Some(&k) = term_set.get(t.as_str()) {
                        found.insert(k);
                        if found.len() >= need {
                            break;
                        }
                    }
                }
                if found.len() >= need {
                    paragraphs.push(para);
                }
            }
        }

        RetrievalResult {
            paragraphs,
            docs_matched,
            quorum_used,
            io_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShardedIndex;
    use corpus::{Corpus, CorpusConfig, QuestionGenerator};
    use nlp::QuestionProcessor;

    fn setup() -> (Corpus, ParagraphRetriever) {
        let c = Corpus::generate(CorpusConfig::small(55)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let pr = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        (c, pr)
    }

    #[test]
    fn retrieves_source_paragraph_of_generated_questions() {
        let (c, pr) = setup();
        let qs = QuestionGenerator::new(&c, 7).generate(20);
        let qp = QuestionProcessor::new();
        let mut hits = 0;
        for gq in &qs {
            let p = qp.process(&gq.question).unwrap();
            let res = pr.retrieve_all(&p.keywords);
            if res.paragraphs.iter().any(|para| para.id == gq.source) {
                hits += 1;
            }
        }
        // Retrieval with relaxation must find the planted paragraph for the
        // overwhelming majority of questions.
        assert!(hits >= 17, "only {hits}/20 source paragraphs retrieved");
    }

    #[test]
    fn per_shard_results_merge_to_all() {
        let (c, pr) = setup();
        let qs = QuestionGenerator::new(&c, 8).generate(3);
        let qp = QuestionProcessor::new();
        let p = qp.process(&qs[0].question).unwrap();

        let all = pr.retrieve_all(&p.keywords);
        let mut merged = RetrievalResult::default();
        for s in 0..c.config.sub_collections {
            merged.merge(
                pr.retrieve(&p.keywords, SubCollectionId::new(s as u32))
                    .unwrap(),
            );
        }
        // Per-shard relaxation may go deeper in sparse shards, so merged can
        // only have at least the strict-union paragraphs of `all`.
        let all_ids: HashSet<_> = all.paragraphs.iter().map(|p| p.id).collect();
        let merged_ids: HashSet<_> = merged.paragraphs.iter().map(|p| p.id).collect();
        assert!(all_ids.is_subset(&merged_ids) || merged_ids.is_subset(&all_ids));
        assert!(merged.io_bytes > 0);
    }

    #[test]
    fn unknown_shard_errors() {
        let (_, pr) = setup();
        let kw = vec![Keyword::new("anything", 1.0)];
        assert!(matches!(
            pr.retrieve(&kw, SubCollectionId::new(99)),
            Err(QaError::UnknownSubCollection(99))
        ));
    }

    #[test]
    fn empty_keywords_empty_result() {
        let (_, pr) = setup();
        let res = pr.retrieve_all(&[]);
        assert!(res.paragraphs.is_empty());
        assert_eq!(res.io_bytes, 0);
    }

    #[test]
    fn io_bytes_accumulate_with_matches() {
        let (c, pr) = setup();
        let qs = QuestionGenerator::new(&c, 9).generate(1);
        let qp = QuestionProcessor::new();
        let p = qp.process(&qs[0].question).unwrap();
        let res = pr.retrieve_all(&p.keywords);
        assert!(res.io_bytes > 0);
        assert!(res.quorum_used >= 1);
    }

    #[test]
    fn nonsense_keywords_match_nothing() {
        let (_, pr) = setup();
        let kw = vec![
            Keyword::new("zzzznotaword", 1.0),
            Keyword::new("qqqalsono", 1.0),
        ];
        let res = pr.retrieve_all(&kw);
        assert!(res.paragraphs.is_empty());
        assert_eq!(res.docs_matched, 0);
    }

    #[test]
    fn paragraphs_contain_enough_query_terms() {
        let (c, pr) = setup();
        let qs = QuestionGenerator::new(&c, 10).generate(5);
        let qp = QuestionProcessor::new();
        for gq in &qs {
            let p = qp.process(&gq.question).unwrap();
            let res = pr.retrieve_all(&p.keywords);
            let terms: HashSet<String> = p.keywords.iter().map(|k| k.term.clone()).collect();
            for para in &res.paragraphs {
                let found: HashSet<String> = index_terms(&para.text)
                    .into_iter()
                    .filter(|t| terms.contains(t))
                    .collect();
                assert!(!found.is_empty(), "paragraph with no query terms kept");
            }
        }
    }
}
