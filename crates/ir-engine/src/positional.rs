//! Positional postings and phrase queries.
//!
//! The Boolean substrate of the paper treats a document as a bag of terms;
//! real Zprise-era engines also supported adjacency ("phrase") operators,
//! and Falcon's keyword extraction produces multi-word names ("Taj Mahal")
//! whose retrieval precision benefits from them. This module adds a
//! positional index per sub-collection: for each term, the documents it
//! occurs in and the token positions within each document, all
//! delta+varint encoded.

use crate::terms::index_terms;
use qa_types::{DocId, Document, QaError, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Positions of one term within one document.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct DocPositions {
    doc: DocId,
    /// Delta+varint encoded token positions (strictly increasing).
    encoded: Vec<u8>,
    count: u32,
}

impl DocPositions {
    fn from_positions(doc: DocId, positions: &[u32]) -> Self {
        let mut encoded = Vec::with_capacity(positions.len());
        let mut prev = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            debug_assert!(i == 0 || p > prev, "positions must increase");
            let gap = if i == 0 { p } else { p - prev };
            write_varint(&mut encoded, gap);
            prev = p;
        }
        DocPositions {
            doc,
            encoded,
            count: positions.len() as u32,
        }
    }

    fn positions(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count as usize);
        let mut pos = 0usize;
        let mut prev = 0u32;
        for i in 0..self.count {
            let (gap, read) = read_varint(&self.encoded[pos..]).expect("self-encoded");
            pos += read;
            prev = if i == 0 { gap } else { prev + gap };
            out.push(prev);
        }
        out
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8]) -> Option<(u32, usize)> {
    let mut v = 0u32;
    let mut shift = 0u32;
    for (i, &b) in data.iter().enumerate() {
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift >= 32 {
            return None;
        }
    }
    None
}

/// A positional inverted index over one sub-collection.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PositionalIndex {
    /// The sub-collection covered.
    pub id: SubCollectionId,
    terms: HashMap<String, Vec<DocPositions>>,
    doc_count: usize,
}

impl PositionalIndex {
    /// Build over the documents of one sub-collection. Documents whose
    /// `sub_collection` differs are skipped.
    pub fn build(id: SubCollectionId, documents: &[Document]) -> PositionalIndex {
        let mut grouped: HashMap<String, Vec<(DocId, Vec<u32>)>> = HashMap::new();
        let mut doc_count = 0usize;
        for doc in documents.iter().filter(|d| d.sub_collection == id) {
            doc_count += 1;
            // One position stream per document: title then paragraphs, with
            // a gap between fields so phrases never span them.
            let mut position = 0u32;
            let mut add_field =
                |text: &str, grouped: &mut HashMap<String, Vec<(DocId, Vec<u32>)>>| {
                    for term in index_terms(text) {
                        let entry = grouped.entry(term).or_default();
                        match entry.last_mut() {
                            Some((d, ps)) if *d == doc.id => ps.push(position),
                            _ => entry.push((doc.id, vec![position])),
                        }
                        position += 1;
                    }
                    position += 10;
                };
            add_field(&doc.title, &mut grouped);
            for p in &doc.paragraphs {
                add_field(p, &mut grouped);
            }
        }

        let terms = grouped
            .into_iter()
            .map(|(term, mut docs)| {
                docs.sort_by_key(|(d, _)| *d);
                let list = docs
                    .into_iter()
                    .map(|(doc, ps)| DocPositions::from_positions(doc, &ps))
                    .collect::<Vec<_>>();
                (term, list)
            })
            .collect();

        PositionalIndex {
            id,
            terms,
            doc_count,
        }
    }

    /// Number of documents indexed.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Documents containing `phrase` as consecutive index terms (after
    /// stopword removal and stemming — "the Taj Mahal" matches the phrase
    /// `taj mahal`).
    pub fn phrase_docs(&self, phrase: &str) -> Result<Vec<DocId>, QaError> {
        let terms = index_terms(phrase);
        if terms.is_empty() {
            return Err(QaError::InvalidConfig("empty phrase".into()));
        }
        // Positions of the first term, then narrow.
        let Some(first) = self.terms.get(&terms[0]) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        'docs: for dp in first {
            let mut starts = dp.positions();
            for (offset, term) in terms.iter().enumerate().skip(1) {
                let Some(list) = self.terms.get(term) else {
                    continue 'docs;
                };
                let Ok(idx) = list.binary_search_by_key(&dp.doc, |x| x.doc) else {
                    continue 'docs;
                };
                let next: std::collections::HashSet<u32> =
                    list[idx].positions().into_iter().collect();
                starts.retain(|&s| next.contains(&(s + offset as u32)));
                if starts.is_empty() {
                    continue 'docs;
                }
            }
            out.push(dp.doc);
        }
        Ok(out)
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.terms.get(term).map_or(0, Vec::len)
    }

    /// Total occurrences of a term across the shard (collection frequency).
    pub fn collection_freq(&self, term: &str) -> u64 {
        self.terms
            .get(term)
            .map_or(0, |l| l.iter().map(|d| d.count as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, text: &str) -> Document {
        Document {
            id: DocId::new(id),
            sub_collection: SubCollectionId::new(0),
            title: String::new(),
            paragraphs: vec![text.to_string()],
        }
    }

    fn index(texts: &[&str]) -> PositionalIndex {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| doc(i as u32, t))
            .collect();
        PositionalIndex::build(SubCollectionId::new(0), &docs)
    }

    #[test]
    fn phrase_matches_adjacent_terms_only() {
        let idx = index(&[
            "the taj mahal stands in agra",
            "mahal taj reversed words here",
            "taj gardens and the mahal apart",
        ]);
        let hits = idx.phrase_docs("Taj Mahal").unwrap();
        assert_eq!(hits, vec![DocId::new(0)]);
    }

    #[test]
    fn phrase_skips_stopwords_like_indexing() {
        // "University of Kel" indexes as [university, kel]; the phrase query
        // normalizes the same way, so adjacency is in *index-term* space.
        let idx = index(&[
            "the university of kelmen opened",
            "university kelmen direct",
        ]);
        let hits = idx.phrase_docs("university kelmen").unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn single_term_phrase_is_a_lookup() {
        let idx = index(&["alpha beta", "gamma delta"]);
        assert_eq!(idx.phrase_docs("alpha").unwrap(), vec![DocId::new(0)]);
        assert!(idx.phrase_docs("zeta").unwrap().is_empty());
    }

    #[test]
    fn empty_phrase_is_an_error() {
        let idx = index(&["alpha"]);
        assert!(idx.phrase_docs("the of and").is_err());
        assert!(idx.phrase_docs("").is_err());
    }

    #[test]
    fn phrases_do_not_cross_paragraph_boundaries() {
        let mut d = doc(0, "ends with taj");
        d.paragraphs.push("mahal starts here".to_string());
        let idx = PositionalIndex::build(SubCollectionId::new(0), &[d]);
        assert!(idx.phrase_docs("taj mahal").unwrap().is_empty());
    }

    #[test]
    fn frequencies_count_occurrences() {
        let idx = index(&["dog dog dog", "dog cat"]);
        assert_eq!(idx.doc_freq("dog"), 2);
        assert_eq!(idx.collection_freq("dog"), 4);
        assert_eq!(idx.doc_freq("cat"), 1);
        assert_eq!(idx.doc_freq("fish"), 0);
        assert_eq!(idx.collection_freq("fish"), 0);
        assert_eq!(idx.doc_count(), 2);
        assert!(idx.term_count() >= 2);
    }

    #[test]
    fn repeated_phrase_in_one_doc_counts_once() {
        let idx = index(&["taj mahal then taj mahal again"]);
        assert_eq!(idx.phrase_docs("taj mahal").unwrap(), vec![DocId::new(0)]);
    }

    #[test]
    fn foreign_subcollection_docs_are_skipped() {
        let mut d = doc(0, "alpha");
        d.sub_collection = SubCollectionId::new(5);
        let idx = PositionalIndex::build(SubCollectionId::new(0), &[d]);
        assert_eq!(idx.doc_count(), 0);
        assert!(idx.phrase_docs("alpha").unwrap().is_empty());
    }
}
