//! Ranked (BM25) retrieval — an alternative PR front-end.
//!
//! The paper uses a Boolean engine and notes: "Even if documents were
//! ranked by the IR system, the next two stages in the Q/A architecture
//! are necessary, because the extracted paragraphs may have different
//! relevance than their parent documents." This module provides the ranked
//! engine that remark anticipates, so the `ablation_ranked_ir` bench can
//! measure what document ranking buys the pipeline: a BM25 index with
//! per-document term frequencies and lengths.

use crate::retrieval::RetrievalResult;
use crate::store::DocumentStore;
use crate::terms::index_terms;
use qa_types::{DocId, Document, Keyword, Paragraph, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// BM25 parameters (standard Robertson defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// A frequency-aware inverted index over one sub-collection.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankedIndex {
    /// Sub-collection covered.
    pub id: SubCollectionId,
    postings: HashMap<String, Vec<(DocId, u32)>>,
    doc_len: HashMap<DocId, u32>,
    total_len: u64,
}

impl RankedIndex {
    /// Build over the documents of one sub-collection.
    pub fn build(id: SubCollectionId, documents: &[Document]) -> RankedIndex {
        let mut postings: HashMap<String, HashMap<DocId, u32>> = HashMap::new();
        let mut doc_len: HashMap<DocId, u32> = HashMap::new();
        let mut total_len = 0u64;
        for doc in documents.iter().filter(|d| d.sub_collection == id) {
            let mut len = 0u32;
            let add =
                |text: &str, postings: &mut HashMap<String, HashMap<DocId, u32>>, len: &mut u32| {
                    for term in index_terms(text) {
                        *postings.entry(term).or_default().entry(doc.id).or_insert(0) += 1;
                        *len += 1;
                    }
                };
            add(&doc.title, &mut postings, &mut len);
            for p in &doc.paragraphs {
                add(p, &mut postings, &mut len);
            }
            doc_len.insert(doc.id, len);
            total_len += len as u64;
        }
        let postings = postings
            .into_iter()
            .map(|(t, m)| {
                let mut v: Vec<(DocId, u32)> = m.into_iter().collect();
                v.sort_by_key(|&(d, _)| d);
                (t, v)
            })
            .collect();
        RankedIndex {
            id,
            postings,
            doc_len,
            total_len,
        }
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Mean document length in index terms.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            return 0.0;
        }
        self.total_len as f64 / self.doc_len.len() as f64
    }

    /// Top-`k` documents by BM25 over `terms`, score-descending
    /// (ties by doc id for determinism).
    pub fn bm25(&self, terms: &[String], k: usize, params: Bm25Params) -> Vec<(DocId, f64)> {
        if terms.is_empty() || self.doc_len.is_empty() {
            return Vec::new();
        }
        let n = self.doc_len.len() as f64;
        let avg = self.avg_doc_len().max(1e-9);
        let mut scores: HashMap<DocId, f64> = HashMap::new();

        let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
        distinct.sort_unstable();
        distinct.dedup();

        for term in distinct {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            let df = list.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in list {
                let len = *self.doc_len.get(&doc).unwrap_or(&0) as f64;
                let tf = tf as f64;
                let norm = tf * (params.k1 + 1.0)
                    / (tf + params.k1 * (1.0 - params.b + params.b * len / avg));
                *scores.entry(doc).or_insert(0.0) += idf * norm;
            }
        }

        let mut ranked: Vec<(DocId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

/// Ranked paragraph retrieval: BM25 document ranking followed by the same
/// paragraph-extraction post-processing the Boolean retriever performs.
pub fn ranked_retrieve(
    index: &RankedIndex,
    store: &DocumentStore,
    keywords: &[Keyword],
    top_docs: usize,
    min_paragraph_terms: usize,
) -> RetrievalResult {
    let terms: Vec<String> = keywords.iter().map(|k| k.term.clone()).collect();
    let ranked = index.bm25(&terms, top_docs, Bm25Params::default());
    let docs_matched = ranked.len();
    let term_set: HashSet<&str> = terms.iter().map(String::as_str).collect();
    let need = min_paragraph_terms.min(term_set.len()).max(1);

    let mut io_bytes = 0u64;
    let mut paragraphs: Vec<Paragraph> = Vec::new();
    for (doc_id, _) in ranked {
        let Some(doc) = store.document(doc_id) else {
            continue;
        };
        io_bytes += doc.body_bytes() as u64;
        for para in doc.iter_paragraphs() {
            let mut found: HashSet<&str> = HashSet::new();
            for t in index_terms(&para.text) {
                if let Some(&k) = term_set.get(t.as_str()) {
                    found.insert(k);
                    if found.len() >= need {
                        break;
                    }
                }
            }
            if found.len() >= need {
                paragraphs.push(para);
            }
        }
    }

    RetrievalResult {
        paragraphs,
        docs_matched,
        quorum_used: 0,
        io_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, text: &str) -> Document {
        Document {
            id: DocId::new(id),
            sub_collection: SubCollectionId::new(0),
            title: String::new(),
            paragraphs: vec![text.to_string()],
        }
    }

    fn index(texts: &[&str]) -> RankedIndex {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| doc(i as u32, t))
            .collect();
        RankedIndex::build(SubCollectionId::new(0), &docs)
    }

    fn q(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tf_matters() {
        let idx = index(&["zebra zebra zebra filler", "zebra filler filler filler"]);
        let r = idx.bm25(&q(&["zebra"]), 10, Bm25Params::default());
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, DocId::new(0), "higher tf ranks first");
        assert!(r[0].1 > r[1].1);
    }

    #[test]
    fn idf_prefers_rare_terms() {
        // "common" in every doc, "rare" in one: a doc matching the rare term
        // outranks one matching only the common term.
        let idx = index(&[
            "common rare",
            "common filler",
            "common filler",
            "common filler",
        ]);
        let r = idx.bm25(&q(&["common", "rare"]), 10, Bm25Params::default());
        assert_eq!(r[0].0, DocId::new(0));
    }

    #[test]
    fn length_normalization_penalizes_long_docs() {
        let long = format!("zebra {}", "filler ".repeat(60));
        let idx = index(&[&long, "zebra short"]);
        let r = idx.bm25(&q(&["zebra"]), 10, Bm25Params::default());
        assert_eq!(r[0].0, DocId::new(1), "short doc wins at equal tf");
    }

    #[test]
    fn top_k_truncates_and_is_deterministic() {
        let texts: Vec<String> = (0..20).map(|i| format!("zebra filler{i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let idx = index(&refs);
        let a = idx.bm25(&q(&["zebra"]), 5, Bm25Params::default());
        let b = idx.bm25(&q(&["zebra"]), 5, Bm25Params::default());
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_query_or_index() {
        let idx = index(&["alpha"]);
        assert!(idx.bm25(&[], 5, Bm25Params::default()).is_empty());
        let empty = RankedIndex::build(SubCollectionId::new(0), &[]);
        assert!(empty
            .bm25(&q(&["alpha"]), 5, Bm25Params::default())
            .is_empty());
        assert_eq!(empty.avg_doc_len(), 0.0);
    }

    #[test]
    fn ranked_retrieve_extracts_matching_paragraphs() {
        let docs = vec![
            doc(0, "zebra crossing near the park"),
            doc(1, "no match here"),
        ];
        let idx = RankedIndex::build(SubCollectionId::new(0), &docs);
        let store = DocumentStore::new(docs);
        let kw = vec![Keyword::new("zebra", 1.0), Keyword::new("park", 1.0)];
        let r = ranked_retrieve(&idx, &store, &kw, 10, 2);
        assert_eq!(r.paragraphs.len(), 1);
        assert_eq!(r.docs_matched, 1);
        assert!(r.io_bytes > 0);
    }

    #[test]
    fn end_to_end_recall_comparable_to_boolean() {
        use crate::index::ShardedIndex;
        use crate::retrieval::{ParagraphRetriever, RetrievalConfig};
        use corpus::{Corpus, CorpusConfig, QuestionGenerator};
        use nlp::QuestionProcessor;
        use std::sync::Arc;

        let c = Corpus::generate(CorpusConfig::small(88)).unwrap();
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let bool_idx = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let boolean =
            ParagraphRetriever::new(bool_idx, Arc::clone(&store), RetrievalConfig::default());
        let ranked_shards: Vec<RankedIndex> = (0..c.config.sub_collections)
            .map(|i| RankedIndex::build(SubCollectionId::new(i as u32), &c.documents))
            .collect();

        let qp = QuestionProcessor::new();
        let mut bool_hits = 0;
        let mut ranked_hits = 0;
        let qs = QuestionGenerator::new(&c, 5).generate(15);
        for gq in &qs {
            let p = qp.process(&gq.question).unwrap();
            if boolean
                .retrieve_all(&p.keywords)
                .paragraphs
                .iter()
                .any(|x| x.id == gq.source)
            {
                bool_hits += 1;
            }
            let found = ranked_shards.iter().any(|idx| {
                ranked_retrieve(idx, &store, &p.keywords, 32, 2)
                    .paragraphs
                    .iter()
                    .any(|x| x.id == gq.source)
            });
            if found {
                ranked_hits += 1;
            }
        }
        assert!(bool_hits >= 12, "boolean {bool_hits}/15");
        assert!(ranked_hits >= 12, "ranked {ranked_hits}/15");
    }
}
