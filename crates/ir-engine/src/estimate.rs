//! Query-cost estimation (the paper's §1.4 pointer to Cahoon, McKinley &
//! Lu: "a query time evaluation heuristic based on the number of query
//! terms and their frequencies in the given collection. Such information
//! could be used by the load balancing mechanism…").
//!
//! The paper leaves this as future work because Falcon's other modules
//! dominate its execution time; we implement it anyway and the
//! `ablation_cost_estimator` bench measures what it buys: scheduling PR
//! sub-collections longest-estimated-first (LPT order) tightens the PR
//! makespan when granularities are uneven.

use crate::index::{ShardedIndex, SubIndex};
use qa_types::SubCollectionId;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the linear cost model
/// `cost = per_term·|terms| + per_posting·Σ df(t) + per_candidate·min df`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost per query term (dictionary lookup + seek).
    pub per_term: f64,
    /// Cost per posting decoded.
    pub per_posting: f64,
    /// Cost per candidate document post-processed (paragraph extraction);
    /// the smallest document frequency bounds the AND-result size.
    pub per_candidate: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            per_term: 1.0,
            per_posting: 0.05,
            per_candidate: 2.0,
        }
    }
}

impl CostModel {
    /// Estimate the relative PR cost of evaluating `terms` on one shard.
    pub fn estimate(&self, shard: &SubIndex, terms: &[String]) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        let mut postings = 0usize;
        let mut min_df = usize::MAX;
        for t in terms {
            let df = shard.doc_freq(t);
            postings += df;
            min_df = min_df.min(df);
        }
        if min_df == usize::MAX {
            min_df = 0;
        }
        self.per_term * terms.len() as f64
            + self.per_posting * postings as f64
            + self.per_candidate * min_df as f64
    }

    /// Estimate every shard, returned in *decreasing* cost order — the
    /// longest-processing-time-first order for receiver-controlled PR.
    pub fn rank_shards(
        &self,
        index: &ShardedIndex,
        terms: &[String],
    ) -> Vec<(SubCollectionId, f64)> {
        let mut out: Vec<(SubCollectionId, f64)> = index
            .shards()
            .map(|s| (s.id, self.estimate(s, terms)))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use qa_types::{DocId, Document};

    fn shard(texts: &[&str]) -> SubIndex {
        let mut b = IndexBuilder::new(SubCollectionId::new(0));
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&Document {
                id: DocId::new(i as u32),
                sub_collection: SubCollectionId::new(0),
                title: String::new(),
                paragraphs: vec![t.to_string()],
            });
        }
        b.finish()
    }

    fn terms(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn frequent_terms_cost_more() {
        let s = shard(&["alpha beta", "alpha", "alpha gamma", "delta"]);
        let m = CostModel::default();
        let frequent = m.estimate(&s, &terms(&["alpha"]));
        let rare = m.estimate(&s, &terms(&["delta"]));
        assert!(frequent > rare, "{frequent} vs {rare}");
    }

    #[test]
    fn more_terms_cost_more() {
        let s = shard(&["alpha beta gamma"]);
        let m = CostModel::default();
        let one = m.estimate(&s, &terms(&["alpha"]));
        let two = m.estimate(&s, &terms(&["alpha", "beta"]));
        assert!(two > one);
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let s = shard(&["alpha"]);
        let m = CostModel::default();
        assert_eq!(m.estimate(&s, &[]), 0.0);
        // Unknown term: only the per-term cost remains.
        let c = m.estimate(&s, &terms(&["zzz"]));
        assert!((c - m.per_term).abs() < 1e-12);
    }

    #[test]
    fn rank_shards_orders_by_estimated_cost() {
        use crate::index::ShardedIndex;
        // Shard 0 sparse for "alpha", shard 1 dense.
        let docs: Vec<Document> = (0..10)
            .map(|i| Document {
                id: DocId::new(i),
                sub_collection: SubCollectionId::new(u32::from(i >= 2)),
                title: String::new(),
                paragraphs: vec!["alpha term".to_string()],
            })
            .collect();
        let idx = ShardedIndex::build(&docs, 2);
        let m = CostModel::default();
        let ranked = m.rank_shards(&idx, &terms(&["alpha"]));
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, SubCollectionId::new(1), "dense shard first");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn estimate_correlates_with_real_retrieval_work() {
        use crate::retrieval::{ParagraphRetriever, RetrievalConfig};
        use crate::store::DocumentStore;
        use corpus::{Corpus, CorpusConfig, QuestionGenerator};
        use nlp::QuestionProcessor;
        use std::sync::Arc;

        let c = Corpus::generate(CorpusConfig::small(71)).unwrap();
        let idx = Arc::new(crate::index::ShardedIndex::build(
            &c.documents,
            c.config.sub_collections,
        ));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let pr = ParagraphRetriever::new(Arc::clone(&idx), store, RetrievalConfig::default());
        let qp = QuestionProcessor::new();
        let m = CostModel::default();

        let mut agree = 0;
        let mut total = 0;
        for gq in QuestionGenerator::new(&c, 9).generate(12) {
            let p = qp.process(&gq.question).unwrap();
            let kw: Vec<String> = p.keywords.iter().map(|k| k.term.clone()).collect();
            let ranked = m.rank_shards(&idx, &kw);
            // Real per-shard work proxy: io_bytes of each shard retrieval.
            let costly = ranked[0].0;
            let cheap = ranked[ranked.len() - 1].0;
            let io_costly = pr.retrieve(&p.keywords, costly).unwrap().io_bytes;
            let io_cheap = pr.retrieve(&p.keywords, cheap).unwrap().io_bytes;
            total += 1;
            if io_costly >= io_cheap {
                agree += 1;
            }
        }
        assert!(agree * 3 >= total * 2, "estimator agreed {agree}/{total}");
    }
}
