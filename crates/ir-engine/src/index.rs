//! Inverted indexes: one [`SubIndex`] per sub-collection, grouped into a
//! [`ShardedIndex`].
//!
//! The paper: "The TREC-9 collection was divided into 8 sub-collections,
//! separately indexed using a Boolean information retrieval system built on
//! top of Zprise." Index construction is data-parallel over documents
//! (rayon), then merged per shard.

use crate::postings::PostingsList;
use crate::terms::index_terms;
use qa_types::{DocId, Document, SubCollectionId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// An inverted index over one sub-collection.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubIndex {
    /// Which sub-collection this index covers.
    pub id: SubCollectionId,
    /// Term → compressed postings.
    postings: HashMap<String, PostingsList>,
    /// Documents indexed, sorted.
    doc_ids: Vec<DocId>,
    /// Total indexed term occurrences (proxy for index build work).
    term_occurrences: u64,
}

impl SubIndex {
    /// Documents covered by this shard.
    pub fn doc_ids(&self) -> &[DocId] {
        &self.doc_ids
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.doc_ids.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Total term occurrences indexed.
    pub fn term_occurrences(&self) -> u64 {
        self.term_occurrences
    }

    /// The postings list for a term, if present.
    pub fn postings(&self, term: &str) -> Option<&PostingsList> {
        self.postings.get(term)
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, PostingsList::len)
    }

    /// Compressed size of all postings (bytes), for I/O cost accounting.
    pub fn compressed_bytes(&self) -> usize {
        self.postings
            .values()
            .map(PostingsList::compressed_bytes)
            .sum()
    }

    /// Iterate (term, postings) pairs in unspecified order.
    pub fn terms_iter(&self) -> impl Iterator<Item = (&str, &PostingsList)> {
        self.postings.iter().map(|(t, p)| (t.as_str(), p))
    }

    /// Rebuild from raw parts (persistence).
    pub(crate) fn from_parts(
        id: SubCollectionId,
        postings: HashMap<String, PostingsList>,
        doc_ids: Vec<DocId>,
        term_occurrences: u64,
    ) -> SubIndex {
        SubIndex {
            id,
            postings,
            doc_ids,
            term_occurrences,
        }
    }
}

/// Builder accumulating term → sorted doc ids for one shard.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    id: SubCollectionId,
    // BTreeMap keeps doc insertion per term ordered when documents are fed
    // in id order; we still sort+dedup at finish to be safe.
    terms: BTreeMap<String, Vec<DocId>>,
    doc_ids: Vec<DocId>,
    term_occurrences: u64,
}

impl IndexBuilder {
    /// Start a builder for one sub-collection.
    pub fn new(id: SubCollectionId) -> Self {
        Self {
            id,
            ..Default::default()
        }
    }

    /// Index one document (title + all paragraphs).
    pub fn add_document(&mut self, doc: &Document) {
        self.doc_ids.push(doc.id);
        let mut add_text = |text: &str| {
            for term in index_terms(text) {
                self.term_occurrences += 1;
                self.terms.entry(term).or_default().push(doc.id);
            }
        };
        add_text(&doc.title);
        for p in &doc.paragraphs {
            add_text(p);
        }
    }

    /// Finish into an immutable [`SubIndex`].
    pub fn finish(mut self) -> SubIndex {
        self.doc_ids.sort_unstable();
        self.doc_ids.dedup();
        let postings = self
            .terms
            .into_iter()
            .map(|(term, mut ids)| {
                ids.sort_unstable();
                ids.dedup();
                (term, PostingsList::from_sorted(&ids))
            })
            .collect();
        SubIndex {
            id: self.id,
            postings,
            doc_ids: self.doc_ids,
            term_occurrences: self.term_occurrences,
        }
    }

    /// Merge another builder for the same shard into this one.
    pub fn merge(&mut self, other: IndexBuilder) {
        debug_assert_eq!(self.id, other.id);
        self.doc_ids.extend(other.doc_ids);
        self.term_occurrences += other.term_occurrences;
        for (term, ids) in other.terms {
            self.terms.entry(term).or_default().extend(ids);
        }
    }
}

/// All shards of the collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedIndex {
    shards: Vec<SubIndex>,
}

impl ShardedIndex {
    /// Build the index for a document set already labeled with
    /// sub-collection ids. Shards build in parallel.
    pub fn build(documents: &[Document], sub_collections: usize) -> ShardedIndex {
        let shards: Vec<SubIndex> = (0..sub_collections)
            .into_par_iter()
            .map(|c| {
                let id = SubCollectionId::new(c as u32);
                let mut b = IndexBuilder::new(id);
                for d in documents.iter().filter(|d| d.sub_collection == id) {
                    b.add_document(d);
                }
                b.finish()
            })
            .collect();
        ShardedIndex { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access one shard.
    pub fn shard(&self, id: SubCollectionId) -> Option<&SubIndex> {
        self.shards.get(id.index()).filter(|s| s.id == id)
    }

    /// Iterate all shards.
    pub fn shards(&self) -> impl Iterator<Item = &SubIndex> {
        self.shards.iter()
    }

    /// Total documents indexed across shards.
    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(SubIndex::doc_count).sum()
    }

    /// Build from pre-constructed shards (used by persistence).
    pub fn from_shards(mut shards: Vec<SubIndex>) -> ShardedIndex {
        shards.sort_by_key(|s| s.id);
        ShardedIndex { shards }
    }

    /// Incrementally index additional documents (the flexibility goal of
    /// §3: the system must absorb growth without a full rebuild). Each
    /// affected shard is rebuilt by merging its existing postings with a
    /// builder over the new documents.
    pub fn add_documents(&mut self, documents: &[Document]) {
        use std::collections::HashSet;
        let affected: HashSet<SubCollectionId> =
            documents.iter().map(|d| d.sub_collection).collect();
        for shard in &mut self.shards {
            if !affected.contains(&shard.id) {
                continue;
            }
            let mut builder = IndexBuilder::new(shard.id);
            for d in documents.iter().filter(|d| d.sub_collection == shard.id) {
                builder.add_document(d);
            }
            let fresh = builder.finish();
            // Merge: union postings term by term.
            let mut postings = std::mem::take(&mut shard.postings);
            for (term, new_list) in fresh.postings {
                let merged = match postings.remove(&term) {
                    Some(old) => {
                        let ids = crate::postings::union(old.iter(), new_list.iter());
                        PostingsList::from_sorted(&ids)
                    }
                    None => new_list,
                };
                postings.insert(term, merged);
            }
            shard.postings = postings;
            let mut doc_ids = std::mem::take(&mut shard.doc_ids);
            doc_ids.extend(fresh.doc_ids);
            doc_ids.sort_unstable();
            doc_ids.dedup();
            shard.doc_ids = doc_ids;
            shard.term_occurrences += fresh.term_occurrences;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};
    use qa_types::Document;

    fn doc(id: u32, coll: u32, text: &str) -> Document {
        Document {
            id: DocId::new(id),
            sub_collection: SubCollectionId::new(coll),
            title: String::new(),
            paragraphs: vec![text.to_string()],
        }
    }

    #[test]
    fn builds_and_finds_terms() {
        let docs = vec![
            doc(0, 0, "the walking dog barked"),
            doc(1, 0, "a dog and a cat"),
            doc(2, 0, "cats everywhere"),
        ];
        let idx = ShardedIndex::build(&docs, 1);
        let s = idx.shard(SubCollectionId::new(0)).unwrap();
        assert_eq!(s.doc_count(), 3);
        assert_eq!(s.doc_freq("dog"), 2);
        assert_eq!(s.doc_freq("cat"), 2, "cats stems to cat");
        assert_eq!(s.doc_freq("walk"), 1);
        assert_eq!(s.doc_freq("the"), 0, "stopwords not indexed");
        assert_eq!(s.doc_freq("zebra"), 0);
    }

    #[test]
    fn postings_are_sorted_dedup() {
        let docs = vec![doc(5, 0, "dog dog dog"), doc(2, 0, "dog")];
        let idx = ShardedIndex::build(&docs, 1);
        let s = idx.shard(SubCollectionId::new(0)).unwrap();
        let ids = s.postings("dog").unwrap().to_vec();
        assert_eq!(ids, vec![DocId::new(2), DocId::new(5)]);
    }

    #[test]
    fn shards_cover_their_own_collections_only() {
        let docs = vec![doc(0, 0, "alpha term"), doc(1, 1, "beta term")];
        let idx = ShardedIndex::build(&docs, 2);
        assert_eq!(idx.shard_count(), 2);
        let s0 = idx.shard(SubCollectionId::new(0)).unwrap();
        let s1 = idx.shard(SubCollectionId::new(1)).unwrap();
        assert_eq!(s0.doc_freq("alpha"), 1);
        assert_eq!(s0.doc_freq("beta"), 0);
        assert_eq!(s1.doc_freq("beta"), 1);
        assert_eq!(idx.doc_count(), 2);
    }

    #[test]
    fn merge_builders() {
        let mut a = IndexBuilder::new(SubCollectionId::new(0));
        a.add_document(&doc(0, 0, "common alpha"));
        let mut b = IndexBuilder::new(SubCollectionId::new(0));
        b.add_document(&doc(1, 0, "common beta"));
        a.merge(b);
        let s = a.finish();
        assert_eq!(s.doc_count(), 2);
        assert_eq!(s.doc_freq("common"), 2);
        assert_eq!(s.doc_freq("alpha"), 1);
    }

    #[test]
    fn indexes_generated_corpus() {
        let c = Corpus::generate(CorpusConfig::small(44)).unwrap();
        let idx = ShardedIndex::build(&c.documents, c.config.sub_collections);
        assert_eq!(idx.doc_count(), c.documents.len());
        for s in idx.shards() {
            assert!(s.term_count() > 0);
            assert!(s.term_occurrences() > 0);
            assert!(s.compressed_bytes() > 0);
        }
    }

    #[test]
    fn incremental_add_matches_full_rebuild() {
        let c = Corpus::generate(CorpusConfig::small(45)).unwrap();
        let split = c.documents.len() / 2;
        let mut incremental = ShardedIndex::build(&c.documents[..split], c.config.sub_collections);
        incremental.add_documents(&c.documents[split..]);
        let full = ShardedIndex::build(&c.documents, c.config.sub_collections);
        assert_eq!(incremental.doc_count(), full.doc_count());
        for (a, b) in incremental.shards().zip(full.shards()) {
            assert_eq!(a.doc_count(), b.doc_count());
            assert_eq!(a.term_count(), b.term_count());
            // Spot-check postings byte-equality through a few terms.
            for (term, postings) in b.terms_iter().take(50) {
                assert_eq!(
                    a.postings(term).map(|p| p.to_vec()),
                    Some(postings.to_vec()),
                    "postings differ for {term}"
                );
            }
        }
    }

    #[test]
    fn add_documents_to_empty_set_is_noop() {
        let c = Corpus::generate(CorpusConfig::small(46)).unwrap();
        let mut idx = ShardedIndex::build(&c.documents, c.config.sub_collections);
        let before = idx.doc_count();
        idx.add_documents(&[]);
        assert_eq!(idx.doc_count(), before);
    }

    #[test]
    fn missing_shard_is_none() {
        let idx = ShardedIndex::build(&[], 2);
        assert!(idx.shard(SubCollectionId::new(5)).is_none());
        assert!(idx.shard(SubCollectionId::new(1)).is_some());
    }
}
