#![warn(missing_docs)]
//! Boolean information-retrieval engine with paragraph extraction.
//!
//! The paper's Paragraph Retrieval module "uses a Boolean Information
//! Retrieval system to identify and extract the documents that contain the
//! previously identified keywords and an additional post-processing phase to
//! extract paragraphs from documents" (§2.1), built on NIST's Zprise. Zprise
//! is not available, so this crate implements the substrate from scratch:
//!
//! * [`terms`] — text → index terms (tokenize, drop stopwords, stem);
//! * [`postings`] — delta+varint compressed postings lists;
//! * [`index`] — per-sub-collection inverted indexes ([`SubIndex`]) grouped
//!   into a [`ShardedIndex`] (the paper splits TREC-9 into 8 shards);
//! * [`query`] — Boolean AST (AND/OR/term) evaluation plus quorum matching;
//! * [`retrieval`] — the PR module proper: Boolean search with Falcon-style
//!   query relaxation, then paragraph extraction, with I/O accounting so the
//!   simulator can charge disk time;
//! * [`store`] — a document store resolving ids to text;
//! * [`persist`] — binary serialization of indexes (`DQAIDX1`);
//! * [`integrity`] — the checksummed `DQAIDX2` segment format: per-shard
//!   and per-term-block CRCs, strict/quarantining/sampled verification,
//!   and the version-dispatching reader untrusted loads go through;
//! * [`positional`] — positional postings + phrase queries (extension);
//! * [`estimate`] — PR query-cost estimation for cost-aware scheduling
//!   (the future-work direction the paper's §1.4 sketches);
//! * [`ranked`] — a BM25 ranked-retrieval front-end, the alternative the
//!   paper's §2.1 remark anticipates.

pub mod estimate;
pub mod index;
pub mod integrity;
pub mod persist;
pub mod positional;
pub mod postings;
pub mod query;
pub mod ranked;
pub mod retrieval;
pub mod store;
pub mod terms;

pub use estimate::CostModel;
pub use index::{IndexBuilder, ShardedIndex, SubIndex};
pub use integrity::{
    decode_index_auto, decode_index_quarantining, decode_index_v2, encode_index_v2, shard_regions,
    verify_index_v2, verify_sampled, verify_shard, verify_shard_sampled, IntegrityError,
    Quarantine, VerifiedIndex,
};
pub use positional::PositionalIndex;
pub use postings::PostingsList;
pub use query::BooleanQuery;
pub use ranked::{ranked_retrieve, Bm25Params, RankedIndex};
pub use retrieval::{ParagraphRetriever, RetrievalConfig, RetrievalResult};
pub use store::DocumentStore;
