//! Text → index terms.
//!
//! Indexing and querying must normalize identically; both go through
//! [`index_terms`] (tokenize → drop stopwords → stem).

use nlp::stem::stem;
use nlp::stopwords::is_stopword;
use nlp::tokenize::tokenize;

/// Extract the index terms of a text, in occurrence order (duplicates kept —
/// callers that need a set deduplicate themselves).
pub fn index_terms(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(&t.text))
        .map(|t| stem(&t.text))
        .collect()
}

/// Normalize a single query keyword the same way document text is indexed.
/// Keywords produced by `nlp::QuestionProcessor` are already stemmed; this
/// is for ad-hoc terms.
pub fn normalize_term(term: &str) -> String {
    stem(&term.to_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_terms_drop_stopwords_and_stem() {
        let terms = index_terms("The cities were visited by the walking dogs.");
        assert_eq!(terms, ["city", "visit", "walk", "dog"]);
    }

    #[test]
    fn duplicates_preserved() {
        let terms = index_terms("dog dog dog");
        assert_eq!(terms.len(), 3);
    }

    #[test]
    fn normalize_matches_indexing() {
        for w in ["Cities", "WALKED", "dogs"] {
            let n = normalize_term(w);
            let via_index = index_terms(w);
            assert_eq!(vec![n], via_index);
        }
    }

    #[test]
    fn empty_text() {
        assert!(index_terms("").is_empty());
        assert!(index_terms("the of and").is_empty());
    }
}
