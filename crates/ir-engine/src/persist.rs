//! Binary serialization of sharded indexes.
//!
//! The paper's nodes keep pre-built sub-collection indexes on local disk;
//! this codec provides the equivalent so examples can build once and reload.
//! The format is a simple length-prefixed little-endian layout with a magic
//! header and explicit bounds checks — no `unsafe`, no external codec crate.

use crate::index::{ShardedIndex, SubIndex};
use crate::postings::PostingsList;
use qa_types::{DocId, QaError, SubCollectionId};
use std::collections::HashMap;

const MAGIC: &[u8; 8] = b"DQAIDX1\0";

/// Serialize a sharded index to bytes.
pub fn encode_index(index: &ShardedIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, index.shard_count() as u32);
    for shard in index.shards() {
        encode_shard(&mut out, shard);
    }
    out
}

fn encode_shard(out: &mut Vec<u8>, shard: &SubIndex) {
    put_u32(out, shard.id.raw());
    put_u64(out, shard.term_occurrences());
    // Doc ids, delta+varint via PostingsList (they are sorted).
    let doc_posting = PostingsList::from_sorted(shard.doc_ids());
    put_u32(out, doc_posting.len() as u32);
    put_bytes(out, doc_posting.encoded());
    // Terms sorted for deterministic output.
    let mut terms: Vec<(&str, &PostingsList)> = shard.terms_iter().collect();
    terms.sort_by_key(|(t, _)| *t);
    put_u32(out, terms.len() as u32);
    for (term, postings) in terms {
        put_bytes(out, term.as_bytes());
        put_u32(out, postings.len() as u32);
        put_bytes(out, postings.encoded());
    }
}

/// Deserialize a sharded index from bytes produced by [`encode_index`].
pub fn decode_index(data: &[u8]) -> Result<ShardedIndex, QaError> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(QaError::Codec("bad magic".into()));
    }
    let n_shards = r.u32()? as usize;
    if n_shards > 1 << 16 {
        return Err(QaError::Codec("absurd shard count".into()));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        shards.push(decode_shard(&mut r)?);
    }
    if r.pos != data.len() {
        return Err(QaError::Codec("trailing bytes".into()));
    }
    Ok(ShardedIndex::from_shards(shards))
}

fn decode_shard(r: &mut Reader<'_>) -> Result<SubIndex, QaError> {
    let id = SubCollectionId::new(r.u32()?);
    let term_occurrences = r.u64()?;
    let doc_len = r.u32()?;
    let doc_bytes = r.bytes()?;
    // Every encoded doc id is at least one varint byte, so a count larger
    // than the byte payload is corrupt input — reject it before the
    // count drives `to_vec`'s pre-allocation.
    if doc_len as usize > doc_bytes.len() {
        return Err(QaError::Codec("absurd doc id count".into()));
    }
    let doc_posting = PostingsList::from_raw(doc_bytes.to_vec(), doc_len);
    let doc_ids: Vec<DocId> = doc_posting.to_vec();
    if doc_ids.len() != doc_len as usize {
        return Err(QaError::Codec("doc id list truncated".into()));
    }
    let n_terms = r.u32()? as usize;
    // A term record spends at least 12 bytes on its three length
    // prefixes; a term count the remaining input cannot possibly hold is
    // the same absurd-count corruption `decode_index` guards shards
    // against, and must not size the postings map.
    if n_terms > r.remaining() / 12 {
        return Err(QaError::Codec("absurd term count".into()));
    }
    let mut postings = HashMap::with_capacity(n_terms);
    for _ in 0..n_terms {
        let term_bytes = r.bytes()?;
        let term = std::str::from_utf8(term_bytes)
            .map_err(|_| QaError::Codec("term not utf-8".into()))?
            .to_string();
        let len = r.u32()?;
        let enc = r.bytes()?.to_vec();
        if len as usize > enc.len() {
            return Err(QaError::Codec(format!("absurd postings count for {term}")));
        }
        let pl = PostingsList::from_raw(enc, len);
        if pl.iter().count() != len as usize {
            return Err(QaError::Codec(format!("postings for {term} truncated")));
        }
        postings.insert(term, pl);
    }
    Ok(SubIndex::from_parts(
        id,
        postings,
        doc_ids,
        term_occurrences,
    ))
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], QaError> {
        if self.pos + n > self.data.len() {
            return Err(QaError::Codec("unexpected end of input".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, QaError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, QaError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], QaError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};

    fn index() -> ShardedIndex {
        let c = Corpus::generate(CorpusConfig::small(66)).unwrap();
        ShardedIndex::build(&c.documents, c.config.sub_collections)
    }

    #[test]
    fn round_trip() {
        let idx = index();
        let bytes = encode_index(&idx);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back.shard_count(), idx.shard_count());
        assert_eq!(back.doc_count(), idx.doc_count());
        for (a, b) in idx.shards().zip(back.shards()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let idx = index();
        assert_eq!(encode_index(&idx), encode_index(&idx));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_index(&index());
        bytes[0] ^= 0xff;
        assert!(matches!(decode_index(&bytes), Err(QaError::Codec(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_index(&index());
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_index(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_index(&index());
        bytes.push(0);
        assert!(matches!(decode_index(&bytes), Err(QaError::Codec(_))));
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = ShardedIndex::build(&[], 0);
        let back = decode_index(&encode_index(&idx)).unwrap();
        assert_eq!(back.shard_count(), 0);
    }

    /// A shard header whose fixed fields are valid up to the term count.
    fn shard_prefix(doc_len: u32, doc_bytes: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, 1); // one shard
        put_u32(&mut bytes, 0); // sub-collection id
        put_u64(&mut bytes, 0); // term occurrences
        put_u32(&mut bytes, doc_len);
        put_u32(&mut bytes, doc_bytes);
        bytes
    }

    #[test]
    fn rejects_absurd_term_count_before_allocating() {
        let mut bytes = shard_prefix(0, 0);
        put_u32(&mut bytes, u32::MAX); // term count no input could hold
        let err = decode_index(&bytes).unwrap_err();
        assert!(
            matches!(err, QaError::Codec(ref s) if s.contains("absurd term count")),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_absurd_doc_count_before_allocating() {
        // Zero payload bytes but a giant claimed doc count.
        let mut bytes = shard_prefix(u32::MAX, 0);
        put_u32(&mut bytes, 0); // term count
        let err = decode_index(&bytes).unwrap_err();
        assert!(
            matches!(err, QaError::Codec(ref s) if s.contains("absurd doc id count")),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_absurd_postings_count_before_allocating() {
        let mut bytes = shard_prefix(0, 0);
        put_u32(&mut bytes, 1); // one term
        put_bytes(&mut bytes, b"dog");
        put_u32(&mut bytes, u32::MAX); // postings count
        put_u32(&mut bytes, 0); // zero encoded bytes
        let err = decode_index(&bytes).unwrap_err();
        assert!(
            matches!(err, QaError::Codec(ref s) if s.contains("absurd postings count")),
            "{err:?}"
        );
    }
}
