//! Document store: resolves ids to document/paragraph text.
//!
//! The paper's cluster keeps "a copy of the TREC-9 collection" on every
//! node; the runtime equivalently shares one `Arc<DocumentStore>` per
//! process-wide "node".

use qa_types::{DocId, Document, Paragraph, ParagraphId, SubCollectionId};
use std::collections::HashMap;

/// An immutable collection of documents with id lookup.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    docs: Vec<Document>,
    by_id: HashMap<DocId, usize>,
}

impl DocumentStore {
    /// Build from a document list (ids need not be dense or ordered).
    pub fn new(docs: Vec<Document>) -> Self {
        let by_id = docs.iter().enumerate().map(|(i, d)| (d.id, i)).collect();
        Self { docs, by_id }
    }

    /// All documents.
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Look up a document.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.by_id.get(&id).map(|&i| &self.docs[i])
    }

    /// Look up a paragraph's text.
    pub fn paragraph_text(&self, pid: ParagraphId) -> Option<&str> {
        self.document(pid.doc)
            .and_then(|d| d.paragraphs.get(pid.ordinal as usize))
            .map(String::as_str)
    }

    /// Materialize a [`Paragraph`] value.
    pub fn paragraph(&self, pid: ParagraphId) -> Option<Paragraph> {
        let doc = self.document(pid.doc)?;
        let text = doc.paragraphs.get(pid.ordinal as usize)?;
        Some(Paragraph {
            id: pid,
            sub_collection: doc.sub_collection,
            text: text.clone(),
        })
    }

    /// Documents of one sub-collection.
    pub fn docs_in(&self, sub: SubCollectionId) -> impl Iterator<Item = &Document> {
        self.docs.iter().filter(move |d| d.sub_collection == sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocumentStore {
        DocumentStore::new(vec![
            Document {
                id: DocId::new(10),
                sub_collection: SubCollectionId::new(0),
                title: "t0".into(),
                paragraphs: vec!["p0".into(), "p1".into()],
            },
            Document {
                id: DocId::new(3),
                sub_collection: SubCollectionId::new(1),
                title: "t1".into(),
                paragraphs: vec!["q0".into()],
            },
        ])
    }

    #[test]
    fn lookup_by_sparse_id() {
        let s = store();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.document(DocId::new(10)).unwrap().title, "t0");
        assert_eq!(s.document(DocId::new(3)).unwrap().title, "t1");
        assert!(s.document(DocId::new(4)).is_none());
    }

    #[test]
    fn paragraph_lookup() {
        let s = store();
        let pid = ParagraphId::new(DocId::new(10), 1);
        assert_eq!(s.paragraph_text(pid), Some("p1"));
        let p = s.paragraph(pid).unwrap();
        assert_eq!(p.sub_collection, SubCollectionId::new(0));
        assert!(s.paragraph(ParagraphId::new(DocId::new(10), 2)).is_none());
    }

    #[test]
    fn docs_in_filters() {
        let s = store();
        assert_eq!(s.docs_in(SubCollectionId::new(1)).count(), 1);
        assert_eq!(s.docs_in(SubCollectionId::new(9)).count(), 0);
    }
}
