//! Self-verifying index segments: the versioned `DQAIDX2` format.
//!
//! `DQAIDX1` ([`crate::persist`]) carries no checksums, so a single
//! flipped bit in a persisted sub-collection index silently changes
//! answers — the fail-silent fault the robustness tiers before this one
//! never covered. `DQAIDX2` wraps the same postings payload in two CRC
//! layers so corruption is *detected*, attributed and recoverable:
//!
//! * a **self-checksummed directory** up front (`sub id`, body length,
//!   body CRC per shard, the directory itself CRC-protected), so a
//!   damaged shard can be identified and skipped without trusting any
//!   byte of its body;
//! * a **per-shard body CRC** catching any corruption in a shard; and
//! * **per-term-block CRCs** inside the body, so a background scrubber
//!   can spot-check a bounded sample of blocks without re-hashing whole
//!   shards, and a detected fault is attributed to a block.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DQAIDX2\0"
//! u32   n_shards
//! n_shards × { u32 sub_id, u32 body_len, u32 body_crc }
//! u32   dir_crc          — CRC-32 of every byte above
//! n_shards shard bodies, back to back, each exactly body_len bytes:
//!   u64 term_occurrences
//!   u32 doc_count · bytes doc_posting
//!   u32 n_blocks
//!   n_blocks × { u32 block_len, u32 block_crc, block body }
//!     block body: u32 n_terms · n_terms × { bytes term, u32 len, bytes enc }
//! ```
//!
//! Three readers cover the three consumers: [`decode_index_v2`] verifies
//! everything and fails on the first damaged byte (strict load);
//! [`decode_index_quarantining`] returns the intact shards plus a
//! quarantine report for the damaged ones (the runtime's
//! detect→degrade→repair path); [`decode_index_auto`] dispatches on the
//! magic so `DQAIDX1` segments stay readable. [`verify_index_v2`] and
//! [`verify_sampled`] check without decoding (full scrub / paced
//! spot-check). The CRC-32 is the IEEE polynomial with a compile-time
//! table — no new dependencies.

use crate::index::{ShardedIndex, SubIndex};
use crate::persist::{self, put_bytes, put_u32, put_u64, Reader};
use crate::postings::PostingsList;
use qa_types::{DocId, QaError, SubCollectionId};
use std::collections::HashMap;

/// Magic header of the checksummed v2 format.
pub const MAGIC_V2: &[u8; 8] = b"DQAIDX2\0";
/// Terms per CRC-protected block. Small enough that a sampled check
/// touches little data, large enough that block headers stay cheap.
pub const TERM_BLOCK: usize = 64;
const DIR_ENTRY_BYTES: usize = 12;

/// Why an index segment (or part of one) failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The envelope is structurally unreadable (bad magic, truncation,
    /// absurd counts). Nothing inside can be trusted.
    Format(String),
    /// The shard directory's own checksum failed: shard identity and
    /// boundaries cannot be trusted, so the whole segment is suspect.
    DirectoryChecksum,
    /// A shard body's checksum failed.
    ShardChecksum {
        /// The damaged sub-collection.
        sub: u32,
    },
    /// A term block's checksum failed inside an otherwise-readable shard.
    BlockChecksum {
        /// The sub-collection holding the block.
        sub: u32,
        /// Zero-based block index within the shard.
        block: u32,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::Format(s) => write!(f, "integrity: {s}"),
            IntegrityError::DirectoryChecksum => write!(f, "integrity: directory checksum failed"),
            IntegrityError::ShardChecksum { sub } => {
                write!(f, "integrity: checksum failed for sub-collection {sub}")
            }
            IntegrityError::BlockChecksum { sub, block } => write!(
                f,
                "integrity: checksum failed for sub-collection {sub} term block {block}"
            ),
        }
    }
}

impl std::error::Error for IntegrityError {}

impl From<IntegrityError> for QaError {
    fn from(e: IntegrityError) -> QaError {
        QaError::Codec(e.to_string())
    }
}

/// One shard the quarantining reader refused to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// The damaged sub-collection (from the verified directory).
    pub sub: u32,
    /// What failed.
    pub error: IntegrityError,
}

/// Result of a quarantining load: every intact shard, plus the report of
/// what was refused — never a silently smaller index.
#[derive(Debug, Clone)]
pub struct VerifiedIndex {
    /// The shards that passed every checksum.
    pub index: ShardedIndex,
    /// The shards that did not, with the failure attributed.
    pub quarantined: Vec<Quarantine>,
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected 0xEDB88320) with a compile-time table —
// the same check the journal frames use, kept dependency-free here so
// ir-engine and journal stay independent crates.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (check value: `crc32(b"123456789") == 0xCBF4_3926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// splitmix64 finalizer for the sampled-verification block choice — the
/// same per-decision discipline the fault framework uses, local so this
/// crate stays free of the faults dependency.
fn mix64(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serialize a sharded index in the checksummed `DQAIDX2` format.
/// Deterministic: the same index always yields the same bytes.
pub fn encode_index_v2(index: &ShardedIndex) -> Vec<u8> {
    let bodies: Vec<Vec<u8>> = index.shards().map(encode_shard_body).collect();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    put_u32(&mut out, index.shard_count() as u32);
    for (shard, body) in index.shards().zip(&bodies) {
        put_u32(&mut out, shard.id.raw());
        put_u32(&mut out, body.len() as u32);
        put_u32(&mut out, crc32(body));
    }
    let dir_crc = crc32(&out);
    put_u32(&mut out, dir_crc);
    for body in &bodies {
        out.extend_from_slice(body);
    }
    out
}

fn encode_shard_body(shard: &SubIndex) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, shard.term_occurrences());
    let doc_posting = PostingsList::from_sorted(shard.doc_ids());
    put_u32(&mut body, doc_posting.len() as u32);
    put_bytes(&mut body, doc_posting.encoded());
    let mut terms: Vec<(&str, &PostingsList)> = shard.terms_iter().collect();
    terms.sort_by_key(|(t, _)| *t);
    let blocks: Vec<&[(&str, &PostingsList)]> = terms.chunks(TERM_BLOCK).collect();
    put_u32(&mut body, blocks.len() as u32);
    for block in blocks {
        let mut blk = Vec::new();
        put_u32(&mut blk, block.len() as u32);
        for (term, postings) in block {
            put_bytes(&mut blk, term.as_bytes());
            put_u32(&mut blk, postings.len() as u32);
            put_bytes(&mut blk, postings.encoded());
        }
        put_u32(&mut body, blk.len() as u32);
        put_u32(&mut body, crc32(&blk));
        body.extend_from_slice(&blk);
    }
    body
}

// ---------------------------------------------------------------------
// The verified directory
// ---------------------------------------------------------------------

struct DirEntry {
    sub: u32,
    len: usize,
    crc: u32,
    /// Byte offset of the body within the segment.
    offset: usize,
}

/// Parse and CRC-verify the envelope; returns the directory. Everything
/// past this point can attribute damage to a sub-collection.
fn read_directory(data: &[u8]) -> Result<Vec<DirEntry>, IntegrityError> {
    let fmt = |s: &str| IntegrityError::Format(s.into());
    if data.len() < MAGIC_V2.len() + 4 {
        return Err(fmt("truncated header"));
    }
    if &data[..8] != MAGIC_V2 {
        return Err(fmt("bad magic"));
    }
    let n_shards = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    if n_shards > 1 << 16 {
        return Err(fmt("absurd shard count"));
    }
    let dir_end = 12 + n_shards * DIR_ENTRY_BYTES;
    if data.len() < dir_end + 4 {
        return Err(fmt("truncated directory"));
    }
    let stored = u32::from_le_bytes(data[dir_end..dir_end + 4].try_into().expect("4 bytes"));
    if crc32(&data[..dir_end]) != stored {
        return Err(IntegrityError::DirectoryChecksum);
    }
    let mut entries = Vec::with_capacity(n_shards);
    let mut offset = dir_end + 4;
    for i in 0..n_shards {
        let at = 12 + i * DIR_ENTRY_BYTES;
        let word = |j: usize| {
            u32::from_le_bytes(
                data[at + 4 * j..at + 4 * j + 4]
                    .try_into()
                    .expect("4 bytes"),
            )
        };
        let len = word(1) as usize;
        entries.push(DirEntry {
            sub: word(0),
            len,
            crc: word(2),
            offset,
        });
        offset += len;
    }
    Ok(entries)
}

fn shard_bytes<'a>(data: &'a [u8], e: &DirEntry) -> Result<&'a [u8], IntegrityError> {
    data.get(e.offset..e.offset + e.len)
        .ok_or(IntegrityError::ShardChecksum { sub: e.sub })
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Strict verified decode of a `DQAIDX2` segment: every directory, shard
/// and block checksum is validated; the first failure is an error naming
/// the damaged sub-collection (and block where applicable).
pub fn decode_index_v2(data: &[u8]) -> Result<ShardedIndex, IntegrityError> {
    let entries = read_directory(data)?;
    let mut shards = Vec::with_capacity(entries.len());
    let mut end = 12 + entries.len() * DIR_ENTRY_BYTES + 4;
    for e in &entries {
        let body = shard_bytes(data, e)?;
        if crc32(body) != e.crc {
            return Err(IntegrityError::ShardChecksum { sub: e.sub });
        }
        shards.push(decode_shard_body(e.sub, body)?);
        end = e.offset + e.len;
    }
    if end != data.len() {
        return Err(IntegrityError::Format("trailing bytes".into()));
    }
    Ok(ShardedIndex::from_shards(shards))
}

/// Quarantining decode: intact shards load, damaged shards are skipped
/// and reported. Only envelope damage (unreadable or checksum-failing
/// directory) is fatal — there the shard boundaries themselves cannot be
/// trusted.
pub fn decode_index_quarantining(data: &[u8]) -> Result<VerifiedIndex, IntegrityError> {
    let entries = read_directory(data)?;
    let mut shards = Vec::new();
    let mut quarantined = Vec::new();
    for e in &entries {
        let verdict = shard_bytes(data, e).and_then(|body| {
            if crc32(body) != e.crc {
                return Err(IntegrityError::ShardChecksum { sub: e.sub });
            }
            decode_shard_body(e.sub, body)
        });
        match verdict {
            Ok(shard) => shards.push(shard),
            Err(error) => quarantined.push(Quarantine { sub: e.sub, error }),
        }
    }
    Ok(VerifiedIndex {
        index: ShardedIndex::from_shards(shards),
        quarantined,
    })
}

/// The verifying reader for untrusted segment bytes: dispatches on the
/// magic so `DQAIDX1` segments (no checksums, structural validation
/// only) stay readable while `DQAIDX2` segments get the full strict
/// verification. Runtime index loads must come through here.
pub fn decode_index_auto(data: &[u8]) -> Result<ShardedIndex, QaError> {
    if data.len() >= 8 && &data[..8] == MAGIC_V2 {
        return decode_index_v2(data).map_err(QaError::from);
    }
    persist::decode_index(data)
}

fn decode_shard_body(sub: u32, body: &[u8]) -> Result<SubIndex, IntegrityError> {
    let fmt = |s: String| IntegrityError::Format(format!("sub-collection {sub}: {s}"));
    let qerr = |e: QaError| {
        fmt(match e {
            QaError::Codec(s) => s,
            other => other.to_string(),
        })
    };
    let mut r = Reader { data: body, pos: 0 };
    let term_occurrences = r.u64().map_err(qerr)?;
    let doc_len = r.u32().map_err(qerr)?;
    let doc_bytes = r.bytes().map_err(qerr)?;
    if doc_len as usize > doc_bytes.len() {
        return Err(fmt("absurd doc id count".into()));
    }
    let doc_posting = PostingsList::from_raw(doc_bytes.to_vec(), doc_len);
    let doc_ids: Vec<DocId> = doc_posting.to_vec();
    if doc_ids.len() != doc_len as usize {
        return Err(fmt("doc id list truncated".into()));
    }
    let n_blocks = r.u32().map_err(qerr)? as usize;
    // A block spends at least 8 bytes on its length and CRC words.
    if n_blocks > r.remaining() / 8 {
        return Err(fmt("absurd block count".into()));
    }
    let mut postings = HashMap::new();
    for block_idx in 0..n_blocks {
        let block_len = r.u32().map_err(qerr)? as usize;
        let block_crc = r.u32().map_err(qerr)?;
        let blk = r.take(block_len).map_err(qerr)?;
        if crc32(blk) != block_crc {
            return Err(IntegrityError::BlockChecksum {
                sub,
                block: block_idx as u32,
            });
        }
        decode_term_block(sub, blk, &mut postings).map_err(qerr)?;
    }
    if r.remaining() != 0 {
        return Err(fmt("trailing bytes in shard body".into()));
    }
    Ok(SubIndex::from_parts(
        SubCollectionId::new(sub),
        postings,
        doc_ids,
        term_occurrences,
    ))
}

fn decode_term_block(
    _sub: u32,
    blk: &[u8],
    postings: &mut HashMap<String, PostingsList>,
) -> Result<(), QaError> {
    let mut r = Reader { data: blk, pos: 0 };
    let n_terms = r.u32()? as usize;
    if n_terms > TERM_BLOCK || n_terms > r.remaining() / 12 + 1 {
        return Err(QaError::Codec("absurd term count in block".into()));
    }
    for _ in 0..n_terms {
        let term_bytes = r.bytes()?;
        let term = std::str::from_utf8(term_bytes)
            .map_err(|_| QaError::Codec("term not utf-8".into()))?
            .to_string();
        let len = r.u32()?;
        let enc = r.bytes()?.to_vec();
        if len as usize > enc.len() {
            return Err(QaError::Codec(format!("absurd postings count for {term}")));
        }
        let pl = PostingsList::from_raw(enc, len);
        if pl.iter().count() != len as usize {
            return Err(QaError::Codec(format!("postings for {term} truncated")));
        }
        postings.insert(term, pl);
    }
    if r.remaining() != 0 {
        return Err(QaError::Codec("trailing bytes in term block".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Verification without decoding (scrubber paths)
// ---------------------------------------------------------------------

/// Byte regions of each shard body in directory order, as
/// `(sub, offset, len)`. The directory is CRC-verified first, so the
/// regions can be trusted even when the bodies cannot — this is what
/// lets a segment store corrupt, verify and splice-repair individual
/// shards without decoding anything.
pub fn shard_regions(data: &[u8]) -> Result<Vec<(u32, usize, usize)>, IntegrityError> {
    Ok(read_directory(data)?
        .iter()
        .map(|e| (e.sub, e.offset, e.len))
        .collect())
}

/// Fully verify one sub-collection's body: its shard CRC and every term
/// block CRC. The scrubber's per-shard pass — paced one shard at a time
/// so verification never monopolizes a node.
pub fn verify_shard(data: &[u8], sub: u32) -> Result<(), IntegrityError> {
    let entries = read_directory(data)?;
    let e = entries
        .iter()
        .find(|e| e.sub == sub)
        .ok_or_else(|| IntegrityError::Format(format!("unknown sub-collection {sub}")))?;
    let body = shard_bytes(data, e)?;
    if crc32(body) != e.crc {
        return Err(IntegrityError::ShardChecksum { sub: e.sub });
    }
    verify_blocks(e.sub, body, None)
}

/// Spot-check one sub-collection: structural validation plus a seeded
/// sample of up to `max_blocks` term blocks (same draw discipline as
/// [`verify_sampled`]). The question-path read check.
pub fn verify_shard_sampled(
    data: &[u8],
    sub: u32,
    seed: u64,
    max_blocks: usize,
) -> Result<(), IntegrityError> {
    let entries = read_directory(data)?;
    let e = entries
        .iter()
        .find(|e| e.sub == sub)
        .ok_or_else(|| IntegrityError::Format(format!("unknown sub-collection {sub}")))?;
    let body = shard_bytes(data, e)?;
    verify_blocks(e.sub, body, Some((seed, max_blocks)))
}

/// Fully verify a `DQAIDX2` segment without building the index: the
/// directory, every shard CRC and every block CRC. This is the
/// scrubber's deep pass; it allocates nothing proportional to the index.
pub fn verify_index_v2(data: &[u8]) -> Result<(), IntegrityError> {
    let entries = read_directory(data)?;
    for e in &entries {
        let body = shard_bytes(data, e)?;
        if crc32(body) != e.crc {
            return Err(IntegrityError::ShardChecksum { sub: e.sub });
        }
        verify_blocks(e.sub, body, None)?;
    }
    Ok(())
}

/// Spot-check: verify the directory, every shard's *structure*, and a
/// seeded sample of up to `max_blocks` term blocks per shard (chosen by
/// splitmix64 over `(seed, sub, draw)`, so replays sample identically).
/// Cheaper than [`verify_index_v2`] on large shards; a corruption in an
/// unsampled block is caught by a later pass with a different seed or by
/// the full shard CRC during the next deep scrub.
pub fn verify_sampled(data: &[u8], seed: u64, max_blocks: usize) -> Result<(), IntegrityError> {
    let entries = read_directory(data)?;
    for e in &entries {
        let body = shard_bytes(data, e)?;
        verify_blocks(e.sub, body, Some((seed, max_blocks)))?;
    }
    Ok(())
}

/// Walk a shard body's block table. With `sample = None` every block CRC
/// is checked; with `Some((seed, max))` only a seeded sample is hashed
/// (structure is always validated).
fn verify_blocks(
    sub: u32,
    body: &[u8],
    sample: Option<(u64, usize)>,
) -> Result<(), IntegrityError> {
    let fmt = |s: &str| IntegrityError::Format(format!("sub-collection {sub}: {s}"));
    let qfmt = |_: QaError| fmt("truncated shard body");
    let mut r = Reader { data: body, pos: 0 };
    r.u64().map_err(qfmt)?; // term occurrences
    let doc_len = r.u32().map_err(qfmt)?;
    let doc_bytes = r.bytes().map_err(qfmt)?;
    if doc_len as usize > doc_bytes.len() {
        return Err(fmt("absurd doc id count"));
    }
    let n_blocks = r.u32().map_err(qfmt)? as usize;
    if n_blocks > r.remaining() / 8 {
        return Err(fmt("absurd block count"));
    }
    let checked: Option<Vec<bool>> = sample.map(|(seed, max)| {
        if max >= n_blocks {
            // Budget covers the shard: degenerate to the full check.
            return vec![true; n_blocks];
        }
        // Seeded draws with replacement: distinct passes (different
        // seeds) sample different blocks, one pass is bit-replayable.
        let mut pick = vec![false; n_blocks];
        for draw in 0..max {
            let b = (mix64(seed, u64::from(sub), draw as u64) % n_blocks as u64) as usize;
            pick[b] = true;
        }
        pick
    });
    for block_idx in 0..n_blocks {
        let block_len = r.u32().map_err(qfmt)? as usize;
        let block_crc = r.u32().map_err(qfmt)?;
        let blk = r.take(block_len).map_err(qfmt)?;
        let check = checked.as_ref().map_or(true, |picks| picks[block_idx]);
        if check && crc32(blk) != block_crc {
            return Err(IntegrityError::BlockChecksum {
                sub,
                block: block_idx as u32,
            });
        }
    }
    if r.remaining() != 0 {
        return Err(fmt("trailing bytes in shard body"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};

    fn index() -> ShardedIndex {
        let c = Corpus::generate(CorpusConfig::small(66)).unwrap();
        ShardedIndex::build(&c.documents, c.config.sub_collections)
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v2_round_trip() {
        let idx = index();
        let bytes = encode_index_v2(&idx);
        let back = decode_index_v2(&bytes).unwrap();
        assert_eq!(back.shard_count(), idx.shard_count());
        assert_eq!(back.doc_count(), idx.doc_count());
        for (a, b) in idx.shards().zip(back.shards()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn v2_encoding_is_deterministic() {
        let idx = index();
        assert_eq!(encode_index_v2(&idx), encode_index_v2(&idx));
    }

    #[test]
    fn auto_reader_dispatches_on_magic() {
        let idx = index();
        let v1 = persist::encode_index(&idx);
        let v2 = encode_index_v2(&idx);
        let from_v1 = decode_index_auto(&v1).unwrap();
        let from_v2 = decode_index_auto(&v2).unwrap();
        for (a, b) in from_v1.shards().zip(from_v2.shards()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let bytes = encode_index_v2(&ShardedIndex::build(&[], 0));
        assert_eq!(decode_index_v2(&bytes).unwrap().shard_count(), 0);
        verify_index_v2(&bytes).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // Small corpus so the exhaustive sweep stays fast.
        let c = Corpus::generate(CorpusConfig::small(7)).unwrap();
        let idx = ShardedIndex::build(&c.documents[..6.min(c.documents.len())], 2);
        let clean = encode_index_v2(&idx);
        let baseline = decode_index_v2(&clean).unwrap();
        for pos in 0..clean.len() {
            for bit in [0u8, 3, 7] {
                let mut bytes = clean.clone();
                bytes[pos] ^= 1 << bit;
                match decode_index_v2(&bytes) {
                    Err(_) => {}
                    Ok(decoded) => {
                        // A flip the strict reader accepts must decode to
                        // the identical index (e.g. it landed in a length
                        // field in a way the CRC caught — impossible — or
                        // the flip was reverted; in practice this arm
                        // should never run, and if it does the result
                        // must not be silently different).
                        for (a, b) in baseline.shards().zip(decoded.shards()) {
                            assert_eq!(a, b, "silent corruption at byte {pos} bit {bit}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn torn_write_is_detected_at_every_cut() {
        let bytes = encode_index_v2(&index());
        for cut in [0, 7, 11, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_index_v2(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
            assert!(verify_index_v2(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn quarantining_reader_isolates_the_damaged_shard() {
        let idx = index();
        assert!(idx.shard_count() >= 2, "need multiple shards");
        let clean = encode_index_v2(&idx);
        // Damage the *last* shard body byte: directory + earlier shards
        // stay intact.
        let mut bytes = clean.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let loaded = decode_index_quarantining(&bytes).unwrap();
        assert_eq!(loaded.quarantined.len(), 1);
        let victim = loaded.quarantined[0].sub;
        assert_eq!(victim, (idx.shard_count() - 1) as u32);
        assert_eq!(loaded.index.shard_count(), idx.shard_count() - 1);
        assert!(loaded.index.shard(SubCollectionId::new(victim)).is_none());
        // The intact shards decode byte-identical to the originals.
        for shard in loaded.index.shards() {
            assert_eq!(idx.shard(shard.id), Some(shard));
        }
    }

    #[test]
    fn directory_damage_is_fatal_not_partial() {
        let mut bytes = encode_index_v2(&index());
        bytes[9] ^= 0x40; // inside n_shards/directory region
        assert!(matches!(
            decode_index_quarantining(&bytes),
            Err(IntegrityError::DirectoryChecksum) | Err(IntegrityError::Format(_))
        ));
    }

    #[test]
    fn block_checksum_failure_names_the_block() {
        let idx = index();
        let clean = encode_index_v2(&idx);
        // Flip a byte deep in the first shard's body, past its header, so
        // the damage lands inside a term block.
        let entries = read_directory(&clean).unwrap();
        let first = &entries[0];
        let mut bytes = clean.clone();
        let target = first.offset + first.len - 3;
        bytes[target] ^= 0x10;
        // Full verification attributes to shard (body CRC checked first).
        assert_eq!(
            verify_index_v2(&bytes),
            Err(IntegrityError::ShardChecksum { sub: first.sub })
        );
        // A sampled check that happens to hash every block attributes to
        // the block level.
        let err = verify_sampled(&bytes, 1, 1 << 12).unwrap_err();
        assert!(
            matches!(err, IntegrityError::BlockChecksum { sub, .. } if sub == first.sub),
            "{err:?}"
        );
    }

    #[test]
    fn per_shard_verification_attributes_and_regions_tile_the_segment() {
        let idx = index();
        let clean = encode_index_v2(&idx);
        let regions = shard_regions(&clean).unwrap();
        assert_eq!(regions.len(), idx.shard_count());
        // Regions are contiguous and cover the segment exactly.
        let dir_end = 12 + regions.len() * DIR_ENTRY_BYTES + 4;
        let mut expect = dir_end;
        for (_, offset, len) in &regions {
            assert_eq!(*offset, expect);
            expect += len;
        }
        assert_eq!(expect, clean.len());
        // Every shard verifies clean; damaging one shard fails only it.
        for (sub, _, _) in &regions {
            verify_shard(&clean, *sub).unwrap();
            verify_shard_sampled(&clean, *sub, 9, 2).unwrap();
        }
        let (victim, offset, len) = regions[regions.len() / 2];
        let mut bytes = clean.clone();
        bytes[offset + len / 2] ^= 0x08;
        assert!(verify_shard(&bytes, victim).is_err());
        for (sub, _, _) in &regions {
            if *sub != victim {
                verify_shard(&bytes, *sub).unwrap();
            }
        }
        assert!(matches!(
            verify_shard(&clean, u32::MAX),
            Err(IntegrityError::Format(_))
        ));
    }

    #[test]
    fn sampled_verification_is_deterministic_and_bounded() {
        let bytes = encode_index_v2(&index());
        verify_sampled(&bytes, 42, 2).unwrap();
        verify_sampled(&bytes, 42, 0).unwrap(); // structure-only pass
                                                // Different seeds pick different blocks but all pass on clean data.
        for seed in 0..8 {
            verify_sampled(&bytes, seed, 1).unwrap();
        }
    }
}
