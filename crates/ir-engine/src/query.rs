//! Boolean query AST and evaluation.

use crate::index::SubIndex;
use crate::postings::{intersect, union};
use qa_types::DocId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Boolean query over index terms.
///
/// # Examples
/// ```
/// use ir_engine::{BooleanQuery, IndexBuilder};
/// use qa_types::{DocId, Document, SubCollectionId};
///
/// let mut builder = IndexBuilder::new(SubCollectionId::new(0));
/// builder.add_document(&Document {
///     id: DocId::new(0),
///     sub_collection: SubCollectionId::new(0),
///     title: String::new(),
///     paragraphs: vec!["the taj mahal stands in agra".into()],
/// });
/// let index = builder.finish();
/// let query = BooleanQuery::all_of(["taj", "mahal"]);
/// assert_eq!(query.eval(&index), vec![DocId::new(0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BooleanQuery {
    /// Documents containing the term.
    Term(String),
    /// Documents matching every sub-query.
    And(Vec<BooleanQuery>),
    /// Documents matching at least one sub-query.
    Or(Vec<BooleanQuery>),
}

impl BooleanQuery {
    /// AND of a term list (the common Falcon query shape).
    pub fn all_of<I: IntoIterator<Item = S>, S: Into<String>>(terms: I) -> BooleanQuery {
        BooleanQuery::And(
            terms
                .into_iter()
                .map(|t| BooleanQuery::Term(t.into()))
                .collect(),
        )
    }

    /// OR of a term list.
    pub fn any_of<I: IntoIterator<Item = S>, S: Into<String>>(terms: I) -> BooleanQuery {
        BooleanQuery::Or(
            terms
                .into_iter()
                .map(|t| BooleanQuery::Term(t.into()))
                .collect(),
        )
    }

    /// Evaluate against a shard, producing sorted matching doc ids.
    ///
    /// AND over an empty list matches nothing (not everything): an empty
    /// conjunction arises only from an empty keyword set, which upstream
    /// code treats as an unanswerable question.
    pub fn eval(&self, index: &SubIndex) -> Vec<DocId> {
        match self {
            BooleanQuery::Term(t) => index.postings(t).map(|p| p.to_vec()).unwrap_or_default(),
            BooleanQuery::And(subs) => {
                let mut lists: Vec<Vec<DocId>> = subs.iter().map(|s| s.eval(index)).collect();
                // Evaluate cheapest-first: intersecting small lists early
                // keeps intermediate results minimal.
                lists.sort_by_key(Vec::len);
                let mut iter = lists.into_iter();
                let Some(mut acc) = iter.next() else {
                    return Vec::new();
                };
                for l in iter {
                    if acc.is_empty() {
                        break;
                    }
                    acc = intersect(acc.into_iter(), l.into_iter());
                }
                acc
            }
            BooleanQuery::Or(subs) => {
                let mut acc = Vec::new();
                for s in subs {
                    acc = union(acc.into_iter(), s.eval(index).into_iter());
                }
                acc
            }
        }
    }

    /// The distinct terms mentioned by this query.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BooleanQuery::Term(t) => out.push(t),
            BooleanQuery::And(s) | BooleanQuery::Or(s) => {
                for q in s {
                    q.collect_terms(out);
                }
            }
        }
    }
}

/// Quorum matching: documents containing at least `min_terms` of `terms`.
///
/// This implements Falcon-style Boolean query *relaxation*: when the strict
/// conjunction returns too few documents, the PR module retries with a
/// lower quorum instead of rewriting the AST.
pub fn quorum(index: &SubIndex, terms: &[String], min_terms: usize) -> Vec<DocId> {
    if terms.is_empty() || min_terms == 0 {
        return Vec::new();
    }
    let mut counts: HashMap<DocId, usize> = HashMap::new();
    let mut distinct: Vec<&str> = terms.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    for t in distinct {
        if let Some(p) = index.postings(t) {
            for id in p.iter() {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<DocId> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_terms)
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use qa_types::{Document, SubCollectionId};

    fn index() -> SubIndex {
        let mut b = IndexBuilder::new(SubCollectionId::new(0));
        let texts = [
            "alpha beta gamma",
            "alpha beta",
            "alpha",
            "delta epsilon",
            "beta delta",
        ];
        for (i, t) in texts.iter().enumerate() {
            b.add_document(&Document {
                id: DocId::new(i as u32),
                sub_collection: SubCollectionId::new(0),
                title: String::new(),
                paragraphs: vec![t.to_string()],
            });
        }
        b.finish()
    }

    fn ids(v: &[u32]) -> Vec<DocId> {
        v.iter().map(|&i| DocId::new(i)).collect()
    }

    #[test]
    fn term_eval() {
        let idx = index();
        assert_eq!(
            BooleanQuery::Term("alpha".into()).eval(&idx),
            ids(&[0, 1, 2])
        );
        assert_eq!(BooleanQuery::Term("nope".into()).eval(&idx), ids(&[]));
    }

    #[test]
    fn and_eval() {
        let idx = index();
        let q = BooleanQuery::all_of(["alpha", "beta"]);
        assert_eq!(q.eval(&idx), ids(&[0, 1]));
        let q = BooleanQuery::all_of(["alpha", "beta", "gamma"]);
        assert_eq!(q.eval(&idx), ids(&[0]));
        let q = BooleanQuery::all_of(["alpha", "delta"]);
        assert_eq!(q.eval(&idx), ids(&[]));
    }

    #[test]
    fn or_eval() {
        let idx = index();
        let q = BooleanQuery::any_of(["gamma", "epsilon"]);
        assert_eq!(q.eval(&idx), ids(&[0, 3]));
    }

    #[test]
    fn nested_eval() {
        let idx = index();
        // (alpha AND beta) OR epsilon
        let q = BooleanQuery::Or(vec![
            BooleanQuery::all_of(["alpha", "beta"]),
            BooleanQuery::Term("epsilon".into()),
        ]);
        assert_eq!(q.eval(&idx), ids(&[0, 1, 3]));
    }

    #[test]
    fn empty_and_matches_nothing() {
        let idx = index();
        assert_eq!(BooleanQuery::And(vec![]).eval(&idx), ids(&[]));
        assert_eq!(BooleanQuery::Or(vec![]).eval(&idx), ids(&[]));
    }

    #[test]
    fn quorum_relaxation() {
        let idx = index();
        let terms: Vec<String> = ["alpha", "beta", "gamma"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(quorum(&idx, &terms, 3), ids(&[0]));
        assert_eq!(quorum(&idx, &terms, 2), ids(&[0, 1]));
        assert_eq!(quorum(&idx, &terms, 1), ids(&[0, 1, 2, 4]));
    }

    #[test]
    fn quorum_edge_cases() {
        let idx = index();
        assert!(quorum(&idx, &[], 1).is_empty());
        assert!(quorum(&idx, &["alpha".to_string()], 0).is_empty());
        // Duplicate terms count once.
        let dup = vec!["alpha".to_string(), "alpha".to_string()];
        assert_eq!(quorum(&idx, &dup, 2), ids(&[]));
        assert_eq!(quorum(&idx, &dup, 1), ids(&[0, 1, 2]));
    }

    #[test]
    fn terms_are_collected_dedup() {
        let q = BooleanQuery::Or(vec![
            BooleanQuery::all_of(["b", "a"]),
            BooleanQuery::Term("a".into()),
        ]);
        assert_eq!(q.terms(), vec!["a", "b"]);
    }
}
