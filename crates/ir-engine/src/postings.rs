//! Delta + varint compressed postings lists.
//!
//! A postings list stores the sorted document ids containing a term. Ids are
//! gap-encoded (each id minus its predecessor) and the gaps written as LEB128
//! varints, the standard IR compression scheme. Decoding is streaming, so
//! Boolean evaluation never materializes more than it needs.

use qa_types::DocId;
use serde::{Deserialize, Serialize};

/// A compressed, immutable postings list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingsList {
    encoded: Vec<u8>,
    len: u32,
}

impl PostingsList {
    /// Build from sorted, deduplicated doc ids.
    ///
    /// # Panics
    /// Debug-asserts that input is strictly increasing.
    pub fn from_sorted(ids: &[DocId]) -> Self {
        let mut encoded = Vec::with_capacity(ids.len());
        let mut prev = 0u32;
        for (i, id) in ids.iter().enumerate() {
            let raw = id.raw();
            debug_assert!(i == 0 || raw > prev, "ids must be strictly increasing");
            let gap = if i == 0 { raw } else { raw - prev };
            write_varint(&mut encoded, gap);
            prev = raw;
        }
        PostingsList {
            encoded,
            len: ids.len() as u32,
        }
    }

    /// Number of documents in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the compressed representation in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.encoded.len()
    }

    /// Iterate the doc ids in increasing order.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            data: &self.encoded,
            pos: 0,
            prev: 0,
            first: true,
            remaining: self.len,
        }
    }

    /// Decode to a vector (tests and small lists).
    pub fn to_vec(&self) -> Vec<DocId> {
        self.iter().collect()
    }

    /// Raw encoded bytes (persistence).
    pub(crate) fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// Rebuild from raw parts (persistence). The caller must pass bytes
    /// produced by [`PostingsList::from_sorted`].
    pub(crate) fn from_raw(encoded: Vec<u8>, len: u32) -> Self {
        PostingsList { encoded, len }
    }
}

impl<'a> IntoIterator for &'a PostingsList {
    type Item = DocId;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

/// Streaming decoder over a [`PostingsList`].
#[derive(Debug, Clone)]
pub struct PostingsIter<'a> {
    data: &'a [u8],
    pos: usize,
    prev: u32,
    first: bool,
    remaining: u32,
}

impl Iterator for PostingsIter<'_> {
    type Item = DocId;

    fn next(&mut self) -> Option<DocId> {
        if self.remaining == 0 {
            return None;
        }
        let (gap, read) = read_varint(&self.data[self.pos..])?;
        self.pos += read;
        self.remaining -= 1;
        let id = if self.first {
            self.first = false;
            gap
        } else {
            self.prev + gap
        };
        self.prev = id;
        Some(DocId::new(id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingsIter<'_> {}

/// LEB128 varint encode.
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint decode; returns (value, bytes consumed).
fn read_varint(data: &[u8]) -> Option<(u32, usize)> {
    let mut v = 0u32;
    let mut shift = 0u32;
    for (i, &b) in data.iter().enumerate() {
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift >= 32 {
            return None;
        }
    }
    None
}

/// Intersect two sorted id streams (Boolean AND).
pub fn intersect(a: impl Iterator<Item = DocId>, b: impl Iterator<Item = DocId>) -> Vec<DocId> {
    let mut out = Vec::new();
    let mut a = a.peekable();
    let mut b = b.peekable();
    while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                out.push(x);
                a.next();
                b.next();
            }
        }
    }
    out
}

/// Union two sorted id streams (Boolean OR).
pub fn union(a: impl Iterator<Item = DocId>, b: impl Iterator<Item = DocId>) -> Vec<DocId> {
    let mut out = Vec::new();
    let mut a = a.peekable();
    let mut b = b.peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    out.push(x);
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    out.push(y);
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            },
            (Some(&x), None) => {
                out.push(x);
                a.next();
            }
            (None, Some(&y)) => {
                out.push(y);
                b.next();
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<DocId> {
        v.iter().map(|&i| DocId::new(i)).collect()
    }

    #[test]
    fn round_trip() {
        let input = ids(&[0, 1, 5, 127, 128, 300, 1_000_000]);
        let p = PostingsList::from_sorted(&input);
        assert_eq!(p.to_vec(), input);
        assert_eq!(p.len(), 7);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_list() {
        let p = PostingsList::from_sorted(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_vec(), Vec::<DocId>::new());
        assert_eq!(p.compressed_bytes(), 0);
    }

    #[test]
    fn compression_beats_raw_u32_for_dense_lists() {
        let input: Vec<DocId> = (0..1000u32).map(DocId::new).collect();
        let p = PostingsList::from_sorted(&input);
        assert!(
            p.compressed_bytes() < 1000 * 4 / 2,
            "compressed {} bytes",
            p.compressed_bytes()
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn read_varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        assert!(read_varint(&buf[..buf.len() - 1]).is_none());
        assert!(read_varint(&[]).is_none());
    }

    #[test]
    fn read_varint_rejects_overflow() {
        // Five continuation bytes exceed 32 bits of shift.
        assert!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]).is_none());
    }

    #[test]
    fn intersect_and_union() {
        let a = PostingsList::from_sorted(&ids(&[1, 3, 5, 7]));
        let b = PostingsList::from_sorted(&ids(&[3, 4, 5, 8]));
        assert_eq!(intersect(a.iter(), b.iter()), ids(&[3, 5]));
        assert_eq!(union(a.iter(), b.iter()), ids(&[1, 3, 4, 5, 7, 8]));
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = PostingsList::from_sorted(&ids(&[1, 2]));
        let e = PostingsList::from_sorted(&[]);
        assert!(intersect(a.iter(), e.iter()).is_empty());
        assert_eq!(union(a.iter(), e.iter()), ids(&[1, 2]));
    }

    #[test]
    fn size_hint_is_exact() {
        let p = PostingsList::from_sorted(&ids(&[2, 4, 6]));
        let mut it = p.iter();
        assert_eq!(it.size_hint(), (3, Some(3)));
        it.next();
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.len(), 2);
    }
}
