//! Corpus-level statistics, used by reports and by benchmark calibration.

use crate::generator::Corpus;
use nlp::tokenize::word_count;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a generated corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total documents.
    pub documents: usize,
    /// Total paragraphs.
    pub paragraphs: usize,
    /// Total body bytes.
    pub bytes: usize,
    /// Total word tokens.
    pub words: usize,
    /// Planted entities (ground-truth answers).
    pub plants: usize,
    /// Mean paragraph length in bytes.
    pub mean_paragraph_bytes: f64,
    /// Per-sub-collection byte counts (shows topic-size spread).
    pub bytes_per_collection: Vec<usize>,
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn compute(corpus: &Corpus) -> CorpusStats {
        let mut paragraphs = 0usize;
        let mut bytes = 0usize;
        let mut words = 0usize;
        let mut per_coll = vec![0usize; corpus.config.sub_collections];
        for d in &corpus.documents {
            paragraphs += d.paragraphs.len();
            let b = d.body_bytes();
            bytes += b;
            per_coll[d.sub_collection.index()] += b;
            for p in &d.paragraphs {
                words += word_count(p);
            }
        }
        CorpusStats {
            documents: corpus.documents.len(),
            paragraphs,
            bytes,
            words,
            plants: corpus.plants.len(),
            mean_paragraph_bytes: if paragraphs == 0 {
                0.0
            } else {
                bytes as f64 / paragraphs as f64
            },
            bytes_per_collection: per_coll,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;

    #[test]
    fn stats_are_consistent_with_metas() {
        let c = Corpus::generate(CorpusConfig::small(33)).unwrap();
        let s = c.stats();
        let metas = c.metas();
        assert_eq!(
            s.documents,
            metas.iter().map(|m| m.documents).sum::<usize>()
        );
        assert_eq!(
            s.paragraphs,
            metas.iter().map(|m| m.paragraphs).sum::<usize>()
        );
        assert_eq!(s.bytes, metas.iter().map(|m| m.bytes).sum::<usize>());
        assert_eq!(s.bytes_per_collection.len(), c.config.sub_collections);
        assert!(s.words > s.paragraphs, "paragraphs contain multiple words");
        assert!(s.mean_paragraph_bytes > 10.0);
        assert_eq!(s.plants, c.plants.len());
    }

    #[test]
    fn collections_have_nonzero_spread() {
        let c = Corpus::generate(CorpusConfig::small(34)).unwrap();
        let s = c.stats();
        assert!(s.bytes_per_collection.iter().all(|&b| b > 0));
    }
}
