//! Factual question generation from planted entities.
//!
//! Each generated question carries ground truth (the planted entity and its
//! source paragraph), so end-to-end pipeline tests can check not just timing
//! but correctness: the expected answer must surface among the ranked
//! answers.

use crate::generator::{Corpus, PlantedEntity};
use qa_types::{AnswerType, ParagraphId, Question, QuestionId, SubCollectionId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A question plus its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuestion {
    /// The natural-language question.
    pub question: Question,
    /// Expected answer category (what QP should classify).
    pub answer_type: AnswerType,
    /// The planted answer entity.
    pub expected_answer: String,
    /// Paragraph that contains the answer.
    pub source: ParagraphId,
    /// Sub-collection of the source paragraph.
    pub sub_collection: SubCollectionId,
}

/// Generates questions from a corpus's planted entities.
#[derive(Debug)]
pub struct QuestionGenerator<'a> {
    corpus: &'a Corpus,
    rng: SmallRng,
    next_id: u32,
}

impl<'a> QuestionGenerator<'a> {
    /// Create a generator; `seed` controls which plants are chosen.
    pub fn new(corpus: &'a Corpus, seed: u64) -> Self {
        Self {
            corpus,
            rng: SmallRng::seed_from_u64(seed ^ 0x51ed_270b),
            next_id: 1,
        }
    }

    /// Generate `n` questions (fewer if the corpus has fewer usable plants).
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedQuestion> {
        let plants = &self.corpus.plants;
        if plants.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 {
            attempts += 1;
            let plant = &plants[self.rng.gen_range(0..plants.len())];
            if let Some(q) = self.question_for(plant) {
                out.push(q);
            }
        }
        out
    }

    /// Build the question for one specific plant.
    pub fn question_for(&mut self, plant: &PlantedEntity) -> Option<GeneratedQuestion> {
        let [w1, w2, w3] = match plant.context_terms.as_slice() {
            [a, b, c, ..] => [a.clone(), b.clone(), c.clone()],
            _ => return None,
        };
        let text = match plant.entity_type {
            AnswerType::Person => format!("Who visited the {w1} {w2} near the {w3}?"),
            AnswerType::Location => format!("Where was the {w1} {w2} beside the {w3}?"),
            AnswerType::Organization => {
                format!("What organization worked on the {w1} {w2} near the {w3}?")
            }
            AnswerType::Date => format!("When was the {w1} {w2} handled by the {w3} council?"),
            AnswerType::Quantity => {
                format!("How far does the {w1} {w2} span across the {w3} region?")
            }
            AnswerType::Money => format!("How much did the {w1} {w2} cost in the {w3} ledger?"),
            AnswerType::Nationality => {
                format!("What is the nationality of those behind the {w1}, the {w2} and the {w3}?")
            }
            AnswerType::Disease => {
                format!("What disease struck during the {w1} {w2} outbreak near the {w3}?")
            }
            AnswerType::Definition | AnswerType::Unknown => return None,
        };
        let id = QuestionId::new(self.next_id);
        self.next_id += 1;
        Some(GeneratedQuestion {
            question: Question::new(id, text),
            answer_type: plant.entity_type,
            expected_answer: plant.entity.clone(),
            source: plant.paragraph,
            sub_collection: plant.sub_collection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use nlp::QuestionProcessor;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(21)).unwrap()
    }

    #[test]
    fn generates_requested_count() {
        let c = corpus();
        let qs = QuestionGenerator::new(&c, 1).generate(25);
        assert_eq!(qs.len(), 25);
        // Sequential unique ids.
        let mut ids: Vec<u32> = qs.iter().map(|q| q.question.id.raw()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn question_ids_are_unique_and_sequential() {
        let c = corpus();
        let qs = QuestionGenerator::new(&c, 2).generate(10);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.question.id.raw(), (i + 1) as u32);
        }
    }

    #[test]
    fn qp_classifies_generated_questions_correctly() {
        let c = corpus();
        let qs = QuestionGenerator::new(&c, 3).generate(60);
        let qp = QuestionProcessor::new();
        let mut correct = 0;
        for gq in &qs {
            let p = qp.process(&gq.question).expect("keywords extracted");
            if p.answer_type == gq.answer_type {
                correct += 1;
            }
        }
        // Every template is built to hit its classification rule.
        assert_eq!(correct, qs.len());
    }

    #[test]
    fn question_keywords_overlap_source_paragraph() {
        let c = corpus();
        let qs = QuestionGenerator::new(&c, 4).generate(30);
        let qp = QuestionProcessor::new();
        for gq in &qs {
            let p = qp.process(&gq.question).unwrap();
            let text = c.paragraph_text(gq.source).unwrap().to_lowercase();
            let hits = p
                .keywords
                .iter()
                .filter(|k| text.contains(k.term.trim_end_matches(|c: char| !c.is_alphanumeric())))
                .count();
            assert!(
                hits >= 2,
                "question {:?} shares too few keywords with its source",
                gq.question.text
            );
        }
    }

    #[test]
    fn ground_truth_paragraph_contains_answer() {
        let c = corpus();
        let qs = QuestionGenerator::new(&c, 5).generate(40);
        for gq in &qs {
            let text = c.paragraph_text(gq.source).unwrap();
            assert!(text.contains(&gq.expected_answer));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = corpus();
        let a = QuestionGenerator::new(&c, 9).generate(15);
        let b = QuestionGenerator::new(&c, 9).generate(15);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_plants_yield_no_questions() {
        let mut c = corpus();
        c.plants.clear();
        let qs = QuestionGenerator::new(&c, 0).generate(5);
        assert!(qs.is_empty());
    }
}
