//! TREC-style serialization of question sets and answer keys.
//!
//! The paper's workload is "the TREC-8 and TREC-9 question set", which
//! ships as topic files plus NIST answer patterns. This module writes and
//! reads our generated questions in the same spirit, so question sets can
//! be frozen to disk, diffed, and fed to the CLI independently of the
//! corpus seed:
//!
//! ```text
//! <top>
//! <num> Number: 3
//! <desc> Where was the stoura reaba beside the pura?
//! </top>
//! ```
//!
//! and an answer-key line format `qid 0 D12#3 answer-text` (qrels-like:
//! question, iteration, paragraph, pattern).

use crate::questions::GeneratedQuestion;
use qa_types::{DocId, ParagraphId, QaError, Question, QuestionId};

/// Render a question set as a TREC topic file.
pub fn write_topics(questions: &[GeneratedQuestion]) -> String {
    let mut out = String::new();
    for gq in questions {
        out.push_str("<top>\n");
        out.push_str(&format!("<num> Number: {}\n", gq.question.id.raw()));
        out.push_str(&format!("<desc> {}\n", gq.question.text));
        out.push_str("</top>\n\n");
    }
    out
}

/// Render the answer key (qrels-like).
pub fn write_answer_key(questions: &[GeneratedQuestion]) -> String {
    let mut out = String::new();
    for gq in questions {
        out.push_str(&format!(
            "{} 0 {} {}\n",
            gq.question.id.raw(),
            gq.source,
            gq.expected_answer
        ));
    }
    out
}

/// Parse a TREC topic file back into questions.
pub fn parse_topics(text: &str) -> Result<Vec<Question>, QaError> {
    let mut out = Vec::new();
    let mut num: Option<u32> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("<num>") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            num = Some(
                digits
                    .parse()
                    .map_err(|_| QaError::Codec(format!("bad <num> line: {line:?}")))?,
            );
        } else if let Some(rest) = line.strip_prefix("<desc>") {
            let id = num
                .take()
                .ok_or_else(|| QaError::Codec("<desc> before <num>".into()))?;
            out.push(Question::new(QuestionId::new(id), rest.trim()));
        }
    }
    Ok(out)
}

/// Parse an answer-key file: `(question, source paragraph, answer)` rows.
pub fn parse_answer_key(text: &str) -> Result<Vec<(QuestionId, ParagraphId, String)>, QaError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(4, ' ');
        let qid: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| QaError::Codec(format!("bad qid in {line:?}")))?;
        let _iteration = parts
            .next()
            .ok_or_else(|| QaError::Codec(format!("missing iteration in {line:?}")))?;
        let para = parts
            .next()
            .ok_or_else(|| QaError::Codec(format!("missing paragraph in {line:?}")))?;
        let answer = parts
            .next()
            .ok_or_else(|| QaError::Codec(format!("missing answer in {line:?}")))?;
        let (doc, ordinal) = para
            .strip_prefix('D')
            .and_then(|s| s.split_once('#'))
            .ok_or_else(|| QaError::Codec(format!("bad paragraph id {para:?}")))?;
        let doc: u32 = doc
            .parse()
            .map_err(|_| QaError::Codec(format!("bad doc id {para:?}")))?;
        let ordinal: u32 = ordinal
            .parse()
            .map_err(|_| QaError::Codec(format!("bad ordinal {para:?}")))?;
        out.push((
            QuestionId::new(qid),
            ParagraphId::new(DocId::new(doc), ordinal),
            answer.to_string(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::Corpus;
    use crate::questions::QuestionGenerator;

    fn questions() -> Vec<GeneratedQuestion> {
        let c = Corpus::generate(CorpusConfig::small(61)).unwrap();
        QuestionGenerator::new(&c, 1).generate(8)
    }

    #[test]
    fn topics_round_trip() {
        let qs = questions();
        let text = write_topics(&qs);
        let parsed = parse_topics(&text).unwrap();
        assert_eq!(parsed.len(), qs.len());
        for (p, gq) in parsed.iter().zip(&qs) {
            assert_eq!(p.id, gq.question.id);
            assert_eq!(p.text, gq.question.text);
        }
    }

    #[test]
    fn answer_key_round_trip() {
        let qs = questions();
        let text = write_answer_key(&qs);
        let parsed = parse_answer_key(&text).unwrap();
        assert_eq!(parsed.len(), qs.len());
        for ((qid, para, answer), gq) in parsed.iter().zip(&qs) {
            assert_eq!(*qid, gq.question.id);
            assert_eq!(*para, gq.source);
            assert_eq!(*answer, gq.expected_answer);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_topics("<desc> orphan question\n").is_err());
        assert!(parse_topics("<num> Number: abc\n<desc> x\n").is_err());
        assert!(parse_answer_key("notanumber 0 D1#0 x\n").is_err());
        assert!(parse_answer_key("1 0 badpara x\n").is_err());
        assert!(parse_answer_key("1 0 D1#0\n").is_err(), "missing answer");
    }

    #[test]
    fn empty_inputs_are_empty() {
        assert!(parse_topics("").unwrap().is_empty());
        assert!(parse_answer_key("\n\n").unwrap().is_empty());
    }

    #[test]
    fn multiword_answers_survive() {
        let mut qs = questions();
        qs[0].expected_answer = "Lake Kor Denmal".to_string();
        let parsed = parse_answer_key(&write_answer_key(&qs)).unwrap();
        assert_eq!(parsed[0].2, "Lake Kor Denmal");
    }
}
