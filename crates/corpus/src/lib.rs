#![warn(missing_docs)]
//! Synthetic TREC-like corpus and question generator.
//!
//! The paper evaluates on the TREC-8 (2 GB) and TREC-9 (3 GB) document
//! collections, split into eight separately-indexed sub-collections, with
//! the TREC-8/9 factual question sets. Those corpora are licensed NIST data
//! we cannot ship, so this crate generates a *statistical stand-in*:
//!
//! * a Zipf-distributed vocabulary, with per-sub-collection topic skew so
//!   that keyword frequencies — and therefore paragraph-retrieval work —
//!   vary across sub-collections exactly as the paper observes ("the PR
//!   sub-task granularities vary drastically based on the frequencies of the
//!   keywords in the given sub-collection");
//! * documents made of entity-bearing sentences, with entities drawn from
//!   the shared [`nlp::Gazetteers`] so they are recoverable by the NER;
//! * factual questions generated from *planted* entities, each with ground
//!   truth (expected answer + source paragraph) so the full pipeline is
//!   testable end to end.
//!
//! Generation is fully deterministic given [`CorpusConfig::seed`].

pub mod config;
pub mod generator;
pub mod questions;
pub mod stats;
pub mod trec;
pub mod vocab;

pub use config::CorpusConfig;
pub use generator::{Corpus, CorpusSnapshot, PlantedEntity};
pub use questions::{GeneratedQuestion, QuestionGenerator};
pub use stats::CorpusStats;
pub use vocab::Vocabulary;
