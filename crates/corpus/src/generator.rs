//! Document generation with entity planting.

use crate::config::CorpusConfig;
use crate::stats::CorpusStats;
use crate::vocab::Vocabulary;
use nlp::gazetteer::{Gazetteers, QUANTITY_UNITS};
use qa_types::{
    AnswerType, DocId, Document, ParagraphId, QaError, SubCollectionId, SubCollectionMeta,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Verbs used by the sentence templates (real English so text reads
/// plausibly; they index and stem like any other content word).
const VERBS: &[&str] = &[
    "visited",
    "described",
    "reported",
    "examined",
    "built",
    "opened",
    "restored",
    "measured",
    "observed",
    "reviewed",
    "launched",
    "studied",
    "painted",
    "surveyed",
    "documented",
];

/// A ground-truth record: an entity planted into a specific paragraph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlantedEntity {
    /// Where the entity was planted.
    pub paragraph: ParagraphId,
    /// Sub-collection of the host document.
    pub sub_collection: SubCollectionId,
    /// The entity surface form (e.g. "Lake Korden", "1987", "42 miles").
    pub entity: String,
    /// Its category.
    pub entity_type: AnswerType,
    /// Content words from the same sentence, usable as question keywords.
    pub context_terms: Vec<String>,
}

/// The generated corpus: documents, planted ground truth, and the shared
/// gazetteers/vocabulary that produced them.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Generation parameters.
    pub config: CorpusConfig,
    /// All documents; `documents[d].id == DocId(d)`.
    pub documents: Vec<Document>,
    /// Ground truth for question generation.
    pub plants: Vec<PlantedEntity>,
    gazetteers: Arc<Gazetteers>,
    vocabulary: Vocabulary,
}

impl Corpus {
    /// Generate a corpus. Pure function of the configuration.
    pub fn generate(config: CorpusConfig) -> Result<Corpus, QaError> {
        config.validate().map_err(QaError::InvalidConfig)?;
        let gazetteers = Gazetteers::standard();
        let vocabulary = Vocabulary::generate(&config);

        let mut documents = Vec::with_capacity(config.total_docs());
        let mut plants = Vec::new();
        let mut next_doc = 0u32;

        for coll in 0..config.sub_collections {
            let mut rng = SmallRng::seed_from_u64(
                config.seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ coll as u64,
            );
            for _ in 0..config.docs_per_collection {
                let doc_id = DocId::new(next_doc);
                next_doc += 1;
                let doc = generate_document(
                    &config,
                    &vocabulary,
                    &gazetteers,
                    coll,
                    doc_id,
                    &mut rng,
                    &mut plants,
                );
                documents.push(doc);
            }
        }

        Ok(Corpus {
            config,
            documents,
            plants,
            gazetteers,
            vocabulary,
        })
    }

    /// The shared gazetteers used for planting.
    pub fn gazetteers(&self) -> &Arc<Gazetteers> {
        &self.gazetteers
    }

    /// The vocabulary used for generation.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Documents belonging to one sub-collection.
    pub fn sub_collection_docs(&self, id: SubCollectionId) -> impl Iterator<Item = &Document> + '_ {
        self.documents
            .iter()
            .filter(move |d| d.sub_collection == id)
    }

    /// Look up a document by id.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        self.documents.get(id.index()).filter(|d| d.id == id)
    }

    /// Look up a paragraph's text.
    pub fn paragraph_text(&self, pid: ParagraphId) -> Option<&str> {
        self.document(pid.doc)
            .and_then(|d| d.paragraphs.get(pid.ordinal as usize))
            .map(String::as_str)
    }

    /// Per-sub-collection summary statistics.
    pub fn metas(&self) -> Vec<SubCollectionMeta> {
        let mut metas: Vec<SubCollectionMeta> = (0..self.config.sub_collections)
            .map(|c| SubCollectionMeta {
                id: SubCollectionId::new(c as u32),
                documents: 0,
                paragraphs: 0,
                bytes: 0,
            })
            .collect();
        for d in &self.documents {
            let m = &mut metas[d.sub_collection.index()];
            m.documents += 1;
            m.paragraphs += d.paragraphs.len();
            m.bytes += d.body_bytes();
        }
        metas
    }

    /// Corpus-level statistics.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats::compute(self)
    }

    /// Snapshot for persistence (documents + ground truth + config).
    pub fn snapshot(&self) -> CorpusSnapshot {
        CorpusSnapshot {
            config: self.config.clone(),
            documents: self.documents.clone(),
            plants: self.plants.clone(),
        }
    }

    /// Restore from a snapshot. The gazetteers and vocabulary are rebuilt
    /// deterministically from the stored config.
    pub fn from_snapshot(snapshot: CorpusSnapshot) -> Result<Corpus, QaError> {
        snapshot.config.validate().map_err(QaError::InvalidConfig)?;
        let gazetteers = Gazetteers::standard();
        let vocabulary = Vocabulary::generate(&snapshot.config);
        Ok(Corpus {
            config: snapshot.config,
            documents: snapshot.documents,
            plants: snapshot.plants,
            gazetteers,
            vocabulary,
        })
    }
}

/// Serializable corpus state (see [`Corpus::snapshot`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorpusSnapshot {
    /// Generation parameters.
    pub config: CorpusConfig,
    /// All documents.
    pub documents: Vec<Document>,
    /// Ground-truth plants.
    pub plants: Vec<PlantedEntity>,
}

#[allow(clippy::too_many_arguments)]
fn generate_document(
    cfg: &CorpusConfig,
    vocab: &Vocabulary,
    gaz: &Gazetteers,
    coll: usize,
    doc_id: DocId,
    rng: &mut SmallRng,
    plants: &mut Vec<PlantedEntity>,
) -> Document {
    let sub = SubCollectionId::new(coll as u32);
    let n_paras = rng.gen_range(cfg.paragraphs_per_doc.0..=cfg.paragraphs_per_doc.1);
    let title = format!(
        "Report on the {} {}",
        vocab.sample(coll, rng),
        vocab.sample(coll, rng)
    );

    let mut paragraphs = Vec::with_capacity(n_paras);
    for p in 0..n_paras {
        let pid = ParagraphId::new(doc_id, p as u32);
        let n_sents = rng.gen_range(cfg.sentences_per_paragraph.0..=cfg.sentences_per_paragraph.1);
        let mut text = String::new();
        for s in 0..n_sents {
            if s > 0 {
                text.push(' ');
            }
            let sentence = generate_sentence(cfg, vocab, gaz, coll, pid, sub, rng, plants);
            text.push_str(&sentence);
        }
        paragraphs.push(text);
    }

    Document {
        id: doc_id,
        sub_collection: sub,
        title,
        paragraphs,
    }
}

/// Pick an entity (surface form + type) to plant.
fn pick_entity(gaz: &Gazetteers, rng: &mut SmallRng) -> (String, AnswerType) {
    // Weighted mix roughly matching TREC question-type frequencies.
    let roll: f64 = rng.gen();
    let ty = if roll < 0.28 {
        AnswerType::Person
    } else if roll < 0.52 {
        AnswerType::Location
    } else if roll < 0.62 {
        AnswerType::Organization
    } else if roll < 0.70 {
        AnswerType::Disease
    } else if roll < 0.76 {
        AnswerType::Nationality
    } else if roll < 0.86 {
        AnswerType::Date
    } else if roll < 0.95 {
        AnswerType::Quantity
    } else {
        AnswerType::Money
    };
    let surface = match ty {
        AnswerType::Date => {
            let year = rng.gen_range(1900..=2000);
            format!("{year}")
        }
        AnswerType::Quantity => {
            let n = rng.gen_range(2..=990);
            let unit = QUANTITY_UNITS[rng.gen_range(0..QUANTITY_UNITS.len())];
            format!("{n} {unit}")
        }
        AnswerType::Money => {
            let n = rng.gen_range(10..=9000);
            format!("{n} dollars")
        }
        _ => {
            let list = gaz.entities(ty);
            list[rng.gen_range(0..list.len())].clone()
        }
    };
    (surface, ty)
}

#[allow(clippy::too_many_arguments)]
fn generate_sentence(
    cfg: &CorpusConfig,
    vocab: &Vocabulary,
    gaz: &Gazetteers,
    coll: usize,
    pid: ParagraphId,
    sub: SubCollectionId,
    rng: &mut SmallRng,
    plants: &mut Vec<PlantedEntity>,
) -> String {
    let w1 = vocab.sample(coll, rng).to_string();
    let w2 = vocab.sample(coll, rng).to_string();
    let w3 = vocab.sample(coll, rng).to_string();
    let verb = *VERBS.choose(rng).expect("non-empty verb list");

    if rng.gen_bool(cfg.entity_density) {
        let (entity, ty) = pick_entity(gaz, rng);
        let sentence = match ty {
            AnswerType::Person | AnswerType::Organization => {
                format!("{entity} {verb} the {w1} {w2} near the {w3}.")
            }
            AnswerType::Location => {
                format!("The {w1} {w2} was {verb} in {entity} beside the {w3}.")
            }
            AnswerType::Date => {
                format!("The {w1} {w2} was {verb} in {entity} by the {w3} council.")
            }
            AnswerType::Quantity => {
                format!("The {w1} {w2} spans {entity} across the {w3} region.")
            }
            AnswerType::Money => {
                format!("The {w1} {w2} cost {entity} according to the {w3} ledger.")
            }
            AnswerType::Nationality => {
                format!("The {entity} {w1} {verb} the {w2} and the {w3}.")
            }
            AnswerType::Disease => {
                format!("The {w1} {w2} outbreak of {entity} affected the {w3}.")
            }
            AnswerType::Definition | AnswerType::Unknown => {
                format!("The {w1} {w2} {verb} the {w3}.")
            }
        };
        plants.push(PlantedEntity {
            paragraph: pid,
            sub_collection: sub,
            entity,
            entity_type: ty,
            context_terms: vec![w1, w2, w3],
        });
        sentence
    } else {
        format!("The {w1} {w2} {verb} the {w3}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlp::NamedEntityRecognizer;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig::small(11)).unwrap()
    }

    #[test]
    fn generates_expected_document_count() {
        let c = corpus();
        assert_eq!(c.documents.len(), c.config.total_docs());
        for (i, d) in c.documents.iter().enumerate() {
            assert_eq!(d.id, DocId::new(i as u32));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusConfig::small(5)).unwrap();
        let b = Corpus::generate(CorpusConfig::small(5)).unwrap();
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.plants, b.plants);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusConfig::small(5)).unwrap();
        let b = Corpus::generate(CorpusConfig::small(6)).unwrap();
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn sub_collections_partition_documents() {
        let c = corpus();
        let total: usize = (0..c.config.sub_collections)
            .map(|i| {
                c.sub_collection_docs(SubCollectionId::new(i as u32))
                    .count()
            })
            .sum();
        assert_eq!(total, c.documents.len());
        for d in c.sub_collection_docs(SubCollectionId::new(1)) {
            assert_eq!(d.sub_collection, SubCollectionId::new(1));
        }
    }

    #[test]
    fn plants_reference_real_paragraphs_containing_entity() {
        let c = corpus();
        assert!(!c.plants.is_empty());
        for plant in c.plants.iter().take(200) {
            let text = c
                .paragraph_text(plant.paragraph)
                .expect("planted paragraph exists");
            assert!(
                text.contains(&plant.entity),
                "paragraph {:?} lacks entity {:?}",
                plant.paragraph,
                plant.entity
            );
        }
    }

    #[test]
    fn planted_entities_are_recoverable_by_ner() {
        let c = corpus();
        let ner = NamedEntityRecognizer::standard();
        let mut checked = 0;
        for plant in c.plants.iter().take(100) {
            let text = c.paragraph_text(plant.paragraph).unwrap();
            let mentions = ner.recognize(text);
            assert!(
                mentions
                    .iter()
                    .any(|m| m.text == plant.entity && m.entity_type == plant.entity_type),
                "NER missed {:?} ({}) in {text:?}",
                plant.entity,
                plant.entity_type
            );
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn metas_are_consistent() {
        let c = corpus();
        let metas = c.metas();
        assert_eq!(metas.len(), c.config.sub_collections);
        let docs: usize = metas.iter().map(|m| m.documents).sum();
        assert_eq!(docs, c.documents.len());
        for m in &metas {
            assert!(m.paragraphs >= m.documents * c.config.paragraphs_per_doc.0);
            assert!(m.bytes > 0);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = CorpusConfig::small(0);
        cfg.vocab_size = 1;
        assert!(matches!(
            Corpus::generate(cfg),
            Err(QaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn snapshot_round_trips() {
        let c = corpus();
        let snap = c.snapshot();
        let back = Corpus::from_snapshot(snap).unwrap();
        assert_eq!(back.documents, c.documents);
        assert_eq!(back.plants, c.plants);
        assert_eq!(back.config, c.config);
    }

    #[test]
    fn paragraph_text_bounds() {
        let c = corpus();
        assert!(c
            .paragraph_text(ParagraphId::new(DocId::new(9999), 0))
            .is_none());
        let d0 = &c.documents[0];
        assert!(c
            .paragraph_text(ParagraphId::new(d0.id, d0.paragraphs.len() as u32))
            .is_none());
        assert!(c.paragraph_text(ParagraphId::new(d0.id, 0)).is_some());
    }
}
