//! Zipf-distributed vocabulary with per-sub-collection topic skew.

use crate::config::CorpusConfig;
use nlp::gazetteer::Gazetteers;
use nlp::stopwords::is_stopword;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use std::collections::HashSet;

/// Consonant onsets used to synthesize content words.
const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "cl", "dr", "fr", "gr", "pl", "pr", "st", "tr", "sk",
];
/// Vowel nuclei.
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou"];

/// Synthesize the `i`-th candidate word (lower-case, 2–3 CV syllables).
fn synth_word(i: usize) -> String {
    let no = ONSETS.len();
    let nv = VOWELS.len();
    let unit = |k: usize| format!("{}{}", ONSETS[k % no], VOWELS[(k / no) % nv]);
    let base = no * nv;
    let mut w = String::new();
    w.push_str(&unit(i % base));
    w.push_str(&unit((i / base) % base));
    if i >= base * base {
        w.push_str(&unit((i / (base * base)) % base));
    }
    w
}

/// A ranked vocabulary: index 0 is the most frequent word globally, and each
/// sub-collection re-ranks the vocabulary through its own permutation to
/// create topical skew.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    /// `permutations[c][rank]` = word index occupying `rank` in collection c.
    permutations: Vec<Vec<u32>>,
    zipf: Zipf<f64>,
    skew: f64,
}

impl Vocabulary {
    /// Build the vocabulary for a corpus configuration.
    ///
    /// Synthesized words that collide with stopwords or gazetteer entries
    /// are skipped so that plain text never accidentally reads as an entity.
    pub fn generate(cfg: &CorpusConfig) -> Vocabulary {
        let gaz = Gazetteers::standard();
        let mut words = Vec::with_capacity(cfg.vocab_size);
        let mut seen = HashSet::new();
        let mut i = 0usize;
        while words.len() < cfg.vocab_size {
            let w = synth_word(i);
            i += 1;
            if is_stopword(&w) || gaz.classify(&w).is_some() || !seen.insert(w.clone()) {
                continue;
            }
            words.push(w);
        }

        let mut permutations = Vec::with_capacity(cfg.sub_collections);
        for c in 0..cfg.sub_collections {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0x9e37_79b9 + c as u64));
            let mut perm: Vec<u32> = (0..cfg.vocab_size as u32).collect();
            // Fisher–Yates.
            for k in (1..perm.len()).rev() {
                let j = rng.gen_range(0..=k);
                perm.swap(k, j);
            }
            permutations.push(perm);
        }

        let zipf =
            Zipf::new(cfg.vocab_size as u64, cfg.zipf_exponent).expect("validated zipf parameters");

        Vocabulary {
            words,
            permutations,
            zipf,
            skew: cfg.topic_skew,
        }
    }

    /// All words, global-rank order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Word by index.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary is empty (never, for a validated config).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Sample a word for sub-collection `coll`: a Zipf rank mapped through
    /// the collection's permutation with probability `topic_skew`, through
    /// the identity (global ranking) otherwise.
    pub fn sample<'a>(&'a self, coll: usize, rng: &mut impl Rng) -> &'a str {
        let rank = (self.zipf.sample(rng) as usize - 1).min(self.words.len() - 1);
        let idx = if rng.gen_bool(self.skew) {
            self.permutations[coll % self.permutations.len()][rank] as usize
        } else {
            rank
        };
        &self.words[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::generate(&CorpusConfig::small(7))
    }

    #[test]
    fn generates_requested_size_unique_words() {
        let v = vocab();
        assert_eq!(v.len(), 600);
        let set: HashSet<_> = v.words().iter().collect();
        assert_eq!(set.len(), 600);
        assert!(!v.is_empty());
    }

    #[test]
    fn words_are_not_stopwords_or_entities() {
        let v = vocab();
        let gaz = Gazetteers::standard();
        for w in v.words() {
            assert!(!is_stopword(w), "{w}");
            assert!(gaz.classify(w).is_none(), "{w}");
        }
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let v = vocab();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts
                .entry(v.sample(0, &mut rng).to_string())
                .or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        // The most frequent word should dominate: Zipf(1.07) gives the top
        // rank a large share.
        assert!(max > 1000, "max count {max}");
        // But the tail must exist too.
        assert!(counts.len() > 100);
    }

    #[test]
    fn topic_skew_differentiates_collections() {
        let v = vocab();
        let top_word = |coll: usize| {
            let mut rng = SmallRng::seed_from_u64(99);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..5_000 {
                *counts
                    .entry(v.sample(coll, &mut rng).to_string())
                    .or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap()
        };
        // With 50 % skew the dominant words of two collections are very
        // likely to differ (they share the global half only).
        let (w0, _) = top_word(0);
        let (w1, _) = top_word(1);
        let (w2, _) = top_word(2);
        assert!(
            w0 != w1 || w1 != w2,
            "all collections share top word {w0}: skew not applied"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Vocabulary::generate(&CorpusConfig::small(3));
        let b = Vocabulary::generate(&CorpusConfig::small(3));
        assert_eq!(a.words(), b.words());
        let mut ra = SmallRng::seed_from_u64(5);
        let mut rb = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.sample(1, &mut ra), b.sample(1, &mut rb));
        }
    }

    #[test]
    fn synth_words_are_pronounceable_ascii() {
        for i in 0..1000 {
            let w = synth_word(i);
            assert!(w.is_ascii());
            assert!(w.len() >= 2);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
