//! Corpus generation parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic corpus.
///
/// Defaults are sized for fast unit tests; [`CorpusConfig::trec_like`]
/// produces a collection large enough for the benchmark harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// RNG seed; the entire corpus is a pure function of this config.
    pub seed: u64,
    /// Number of sub-collections (the paper splits TREC-9 into 8).
    pub sub_collections: usize,
    /// Documents per sub-collection.
    pub docs_per_collection: usize,
    /// Inclusive range of paragraphs per document.
    pub paragraphs_per_doc: (usize, usize),
    /// Inclusive range of sentences per paragraph.
    pub sentences_per_paragraph: (usize, usize),
    /// Number of distinct content words in the vocabulary.
    pub vocab_size: usize,
    /// Zipf exponent of word frequencies (English text ≈ 1.0–1.2).
    pub zipf_exponent: f64,
    /// Probability that a sentence carries a named entity.
    pub entity_density: f64,
    /// Fraction of word draws taken from the sub-collection's own skewed
    /// distribution rather than the global one (0 = homogeneous
    /// sub-collections, 1 = fully topical).
    pub topic_skew: f64,
}

impl CorpusConfig {
    /// Small corpus for unit tests (fast to generate and index).
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            sub_collections: 4,
            docs_per_collection: 12,
            paragraphs_per_doc: (2, 5),
            sentences_per_paragraph: (2, 4),
            vocab_size: 600,
            zipf_exponent: 1.07,
            entity_density: 0.6,
            topic_skew: 0.5,
        }
    }

    /// A TREC-like configuration: 8 sub-collections with pronounced topic
    /// skew, enough text for the benches to show realistic PR variance.
    pub fn trec_like(seed: u64) -> Self {
        Self {
            seed,
            sub_collections: 8,
            docs_per_collection: 120,
            paragraphs_per_doc: (3, 10),
            sentences_per_paragraph: (2, 6),
            vocab_size: 4000,
            zipf_exponent: 1.07,
            entity_density: 0.55,
            topic_skew: 0.6,
        }
    }

    /// Total number of documents.
    pub fn total_docs(&self) -> usize {
        self.sub_collections * self.docs_per_collection
    }

    /// Validate bounds; returns an error message for the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.sub_collections == 0 {
            return Err("sub_collections must be > 0".into());
        }
        if self.docs_per_collection == 0 {
            return Err("docs_per_collection must be > 0".into());
        }
        if self.paragraphs_per_doc.0 == 0 || self.paragraphs_per_doc.0 > self.paragraphs_per_doc.1 {
            return Err("paragraphs_per_doc range invalid".into());
        }
        if self.sentences_per_paragraph.0 == 0
            || self.sentences_per_paragraph.0 > self.sentences_per_paragraph.1
        {
            return Err("sentences_per_paragraph range invalid".into());
        }
        if self.vocab_size < 50 {
            return Err("vocab_size must be >= 50".into());
        }
        if !(0.0..=1.0).contains(&self.entity_density) {
            return Err("entity_density must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.topic_skew) {
            return Err("topic_skew must be in [0,1]".into());
        }
        if self.zipf_exponent <= 0.0 {
            return Err("zipf_exponent must be > 0".into());
        }
        Ok(())
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::small(42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CorpusConfig::small(1).validate().unwrap();
        CorpusConfig::trec_like(1).validate().unwrap();
    }

    #[test]
    fn total_docs() {
        let c = CorpusConfig::trec_like(0);
        assert_eq!(c.total_docs(), 8 * 120);
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut c = CorpusConfig::small(0);
        c.sub_collections = 0;
        assert!(c.validate().is_err());

        let mut c = CorpusConfig::small(0);
        c.paragraphs_per_doc = (3, 2);
        assert!(c.validate().is_err());

        let mut c = CorpusConfig::small(0);
        c.entity_density = 1.5;
        assert!(c.validate().is_err());

        let mut c = CorpusConfig::small(0);
        c.vocab_size = 10;
        assert!(c.validate().is_err());

        let mut c = CorpusConfig::small(0);
        c.zipf_exponent = 0.0;
        assert!(c.validate().is_err());
    }
}
