//! Lease/phi-style failure detector.
//!
//! Pure accrual detector over caller-supplied timestamps: each node's
//! heartbeats feed an EWMA of its inter-arrival gap, and the *suspicion*
//! of a node is the ratio of the current silence to that learned gap (a
//! simplified phi — linear, not logarithmic, which keeps the DES mirror
//! bit-stable without transcendental functions). Two thresholds split the
//! verdict three ways:
//!
//! * below `suspect_phi` the node is [`NodeHealth::Alive`];
//! * between the thresholds it is [`NodeHealth::Suspect`] — a transient
//!   straggler. Dispatchers may deprioritize it but the rebalancer does
//!   NOT migrate: moving sub-collections on a late heartbeat is how
//!   flapping turns into migration storms;
//! * past `dead_phi` (and past the hard `lease_secs` floor) the loss is
//!   presumed permanent and an evacuation plan is warranted.
//!
//! Operator intent bypasses the accrual math: [`FailureDetector::mark_left`]
//! (drain) makes a node immediately `Dead`, [`FailureDetector::mark_joined`]
//! re-arms it as freshly alive.

use qa_types::NodeId;
use serde::{Deserialize, Serialize};

/// EWMA weight for new inter-heartbeat gap observations.
const GAP_ALPHA: f64 = 0.2;

/// Detector thresholds. Defaults suit heartbeat intervals of ~5 ms (the
/// runtime) and are expressed as ratios, so the same config drives the DES
/// where heartbeats are virtual-time monitor broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Hard lease: a node is never declared `Dead` sooner than this many
    /// seconds after its last heartbeat, whatever the ratio says.
    pub lease_secs: f64,
    /// Suspicion ratio (silence ÷ learned gap) past which a node is
    /// `Suspect`.
    pub suspect_phi: f64,
    /// Suspicion ratio past which — once the lease has also lapsed — the
    /// loss is presumed permanent.
    pub dead_phi: f64,
    /// Gap floor (seconds): protects the ratio from a burst of
    /// back-to-back heartbeats learning a near-zero gap.
    pub min_gap_secs: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            lease_secs: 0.5,
            suspect_phi: 4.0,
            dead_phi: 16.0,
            min_gap_secs: 0.001,
        }
    }
}

/// Three-way liveness verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Heartbeating on schedule.
    Alive,
    /// Late — a transient straggler until proven otherwise. No migration.
    Suspect,
    /// Permanently lost (or operator-drained): evacuate its
    /// sub-collections.
    Dead,
}

#[derive(Debug, Clone, Copy)]
struct NodeTrack {
    last_beat: f64,
    ewma_gap: Option<f64>,
    left: bool,
}

/// Accrual failure detector over one cluster's heartbeat streams.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    tracks: Vec<NodeTrack>,
}

impl FailureDetector {
    /// A detector for `nodes` nodes, all treated as having heartbeat at
    /// `start` (so nothing is declared dead before it had a chance to
    /// speak).
    pub fn new(nodes: usize, cfg: DetectorConfig, start: f64) -> FailureDetector {
        FailureDetector {
            cfg,
            tracks: vec![
                NodeTrack {
                    last_beat: start,
                    ewma_gap: None,
                    left: false,
                };
                nodes
            ],
        }
    }

    /// Fold in one heartbeat from `node` at time `at`. Out-of-order or
    /// duplicate beats (same timestamp) are absorbed without corrupting
    /// the gap estimate.
    pub fn observe(&mut self, node: NodeId, at: f64) {
        let Some(t) = self.tracks.get_mut(node.index()) else {
            return;
        };
        let gap = (at - t.last_beat).max(0.0);
        if gap > 0.0 {
            let gap = gap.max(self.cfg.min_gap_secs);
            t.ewma_gap = Some(match t.ewma_gap {
                Some(g) => (1.0 - GAP_ALPHA) * g + GAP_ALPHA * gap,
                None => gap,
            });
        }
        t.last_beat = t.last_beat.max(at);
    }

    /// Operator drain: the node is immediately `Dead` for planning
    /// purposes, regardless of its heartbeats.
    pub fn mark_left(&mut self, node: NodeId) {
        if let Some(t) = self.tracks.get_mut(node.index()) {
            t.left = true;
        }
    }

    /// Operator join (or rejoin): re-arm the node as freshly alive at
    /// `at`, resetting its learned gap.
    pub fn mark_joined(&mut self, node: NodeId, at: f64) {
        if let Some(t) = self.tracks.get_mut(node.index()) {
            t.left = false;
            t.last_beat = at;
            t.ewma_gap = None;
        }
    }

    /// The linear suspicion level of `node` at time `now`: silence since
    /// the last heartbeat divided by the learned (or floor) gap. Infinite
    /// for operator-drained nodes.
    pub fn suspicion(&self, node: NodeId, now: f64) -> f64 {
        let Some(t) = self.tracks.get(node.index()) else {
            return f64::INFINITY;
        };
        if t.left {
            return f64::INFINITY;
        }
        let gap = t
            .ewma_gap
            .unwrap_or(self.cfg.lease_secs)
            .max(self.cfg.min_gap_secs);
        (now - t.last_beat).max(0.0) / gap
    }

    /// The three-way verdict for `node` at time `now`.
    pub fn health(&self, node: NodeId, now: f64) -> NodeHealth {
        let Some(t) = self.tracks.get(node.index()) else {
            return NodeHealth::Dead;
        };
        if t.left {
            return NodeHealth::Dead;
        }
        let phi = self.suspicion(node, now);
        let silence = (now - t.last_beat).max(0.0);
        if phi >= self.cfg.dead_phi && silence >= self.cfg.lease_secs {
            NodeHealth::Dead
        } else if phi >= self.cfg.suspect_phi {
            NodeHealth::Suspect
        } else {
            NodeHealth::Alive
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// Whether the detector tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn steady(det: &mut FailureDetector, node: NodeId, from: f64, beats: usize, gap: f64) -> f64 {
        let mut t = from;
        for _ in 0..beats {
            t += gap;
            det.observe(node, t);
        }
        t
    }

    #[test]
    fn steady_heartbeats_stay_alive() {
        let mut det = FailureDetector::new(2, DetectorConfig::default(), 0.0);
        let t = steady(&mut det, n(0), 0.0, 100, 0.005);
        assert_eq!(det.health(n(0), t + 0.005), NodeHealth::Alive);
        assert!(det.suspicion(n(0), t + 0.005) < 2.0);
    }

    #[test]
    fn transient_straggler_is_suspect_not_dead() {
        let mut det = FailureDetector::new(1, DetectorConfig::default(), 0.0);
        let t = steady(&mut det, n(0), 0.0, 50, 0.005);
        // Silence of 10 gaps: well past suspect_phi, but the 0.5 s hard
        // lease has not lapsed — a straggler, never a migration trigger.
        assert_eq!(det.health(n(0), t + 0.05), NodeHealth::Suspect);
        // The straggler recovers: one heartbeat re-arms it.
        det.observe(n(0), t + 0.06);
        assert_eq!(det.health(n(0), t + 0.065), NodeHealth::Alive);
    }

    #[test]
    fn long_silence_past_the_lease_is_permanent_loss() {
        let cfg = DetectorConfig::default();
        let mut det = FailureDetector::new(1, cfg, 0.0);
        let t = steady(&mut det, n(0), 0.0, 50, 0.005);
        assert_eq!(det.health(n(0), t + 1.0), NodeHealth::Dead);
    }

    #[test]
    fn lease_floor_delays_death_even_at_high_phi() {
        let cfg = DetectorConfig {
            lease_secs: 2.0,
            ..DetectorConfig::default()
        };
        let mut det = FailureDetector::new(1, cfg, 0.0);
        let t = steady(&mut det, n(0), 0.0, 50, 0.005);
        // phi is enormous at +1 s, but the 2 s lease holds.
        assert_eq!(det.health(n(0), t + 1.0), NodeHealth::Suspect);
        assert_eq!(det.health(n(0), t + 2.5), NodeHealth::Dead);
    }

    #[test]
    fn operator_drain_and_join_bypass_the_accrual_math() {
        let mut det = FailureDetector::new(2, DetectorConfig::default(), 0.0);
        let t = steady(&mut det, n(1), 0.0, 10, 0.005);
        det.mark_left(n(1));
        assert_eq!(det.health(n(1), t), NodeHealth::Dead);
        assert!(det.suspicion(n(1), t).is_infinite());
        det.mark_joined(n(1), t + 1.0);
        assert_eq!(det.health(n(1), t + 1.0), NodeHealth::Alive);
    }

    #[test]
    fn unknown_node_is_dead() {
        let det = FailureDetector::new(1, DetectorConfig::default(), 0.0);
        assert_eq!(det.health(n(9), 0.0), NodeHealth::Dead);
    }

    #[test]
    fn duplicate_and_out_of_order_beats_are_harmless() {
        let mut det = FailureDetector::new(1, DetectorConfig::default(), 0.0);
        let t = steady(&mut det, n(0), 0.0, 20, 0.005);
        det.observe(n(0), t); // duplicate timestamp
        det.observe(n(0), t - 0.003); // out of order
        assert_eq!(det.health(n(0), t + 0.005), NodeHealth::Alive);
    }
}
