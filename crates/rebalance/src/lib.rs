#![warn(missing_docs)]
//! Elastic membership and self-healing re-sharding.
//!
//! The paper fixes cluster membership for each run: a node that dies takes
//! its sub-collections with it, and every later answer is degraded until a
//! human restarts the system. This crate is the control plane that lifts
//! that restriction, honored by *both* backends (`dqa-runtime` in wall
//! time, `cluster-sim` in virtual time):
//!
//! * a lease/phi-style [`FailureDetector`] separates transient stragglers
//!   (late heartbeats, never migrated against) from permanent loss;
//! * an [`OwnershipMap`] records which live node owns each sub-collection
//!   — the invariant the whole tier defends is *every sub-collection owned
//!   by exactly one live node* ([`OwnershipMap::verify_complete`]);
//! * a [`MigrationPlan`] is the journaled, term-fenced unit of change: a
//!   deterministic list of `sub: from → to` steps produced by the pure
//!   planners ([`plan_evacuation`], [`plan_join`], [`plan_skew`]) so both
//!   backends — and a successor coordinator replaying the journal — derive
//!   byte-identical plans from the same membership view;
//! * a [`MigrationThrottle`] paces plan application so migration traffic
//!   yields to foreground questions at the admission gate.
//!
//! Everything here is pure, single-threaded state: no clocks, no channels,
//! no I/O. Times are `f64` seconds supplied by the caller (wall seconds in
//! the runtime, virtual seconds in the DES), which is what makes the DES
//! mirror bit-stable under seeded replay.

pub mod detector;
pub mod ownership;
pub mod plan;
pub mod throttle;

pub use detector::{DetectorConfig, FailureDetector, NodeHealth};
pub use ownership::{ConvergenceError, OwnershipMap};
pub use plan::{
    plan_evacuation, plan_join, plan_skew, MigrationPlan, MigrationStep, RebalanceReason,
};
pub use throttle::{MigrationThrottle, ThrottleVerdict};

use serde::{Deserialize, Serialize};

/// Declarative configuration of the elastic tier, carried by both
/// backends' cluster configs (the same both-backends pattern as
/// `OverloadPolicy` and `FaultSchedule`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticConfig {
    /// Extra standby nodes started suspended: they hold no sub-collections
    /// and serve nothing until an operator `join` (or a `NodeJoin` fault
    /// event) brings them into the pool.
    pub standby_nodes: usize,
    /// Failure-detector thresholds.
    pub detector: DetectorConfig,
    /// Migration pacing.
    pub throttle: MigrationThrottle,
    /// Load-skew trigger: when the spread between the hottest and coolest
    /// owner's Eqs. 1–3 load gauge exceeds this, a one-step skew plan is
    /// generated. `None` disables skew-triggered rebalancing (membership
    /// changes still migrate).
    pub skew_threshold: Option<f64>,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            standby_nodes: 0,
            detector: DetectorConfig::default(),
            throttle: MigrationThrottle::default(),
            skew_threshold: None,
        }
    }
}

impl ElasticConfig {
    /// An elastic tier with `standby_nodes` warm spares and defaults
    /// everywhere else.
    pub fn with_standby(standby_nodes: usize) -> ElasticConfig {
        ElasticConfig {
            standby_nodes,
            ..ElasticConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_config_round_trips_through_serde() {
        let cfg = ElasticConfig {
            standby_nodes: 2,
            skew_threshold: Some(1.5),
            ..ElasticConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ElasticConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
