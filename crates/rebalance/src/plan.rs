//! Deterministic migration planners.
//!
//! A [`MigrationPlan`] is the unit the journal records and the throttle
//! paces: an ordered list of `sub: from → to` steps derived purely from
//! the ownership map and the live set, so the runtime, the DES twin and a
//! successor coordinator replaying the journal all derive byte-identical
//! plans from the same membership view. Ties always break toward the
//! lowest node id, and steps are emitted in sub-collection order —
//! determinism is load-bearing, not cosmetic (the double-run DES tests
//! replay these plans bit-stably).

use qa_types::{NodeId, SubCollectionId};
use serde::{Deserialize, Serialize};

use crate::ownership::OwnershipMap;

/// What triggered a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalanceReason {
    /// The failure detector declared an owner permanently lost.
    PermanentLoss,
    /// Operator drain: planned decommission of a live node.
    Drain,
    /// A standby (or returning) node joined and takes its fair share.
    Join,
    /// The Eqs. 1–3 load gauges skewed past the configured threshold.
    LoadSkew,
}

impl std::fmt::Display for RebalanceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RebalanceReason::PermanentLoss => "permanent-loss",
            RebalanceReason::Drain => "drain",
            RebalanceReason::Join => "join",
            RebalanceReason::LoadSkew => "load-skew",
        };
        f.write_str(s)
    }
}

/// One ownership transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStep {
    /// The sub-collection being re-homed.
    pub sub: SubCollectionId,
    /// Previous owner (dead, draining, or merely hot).
    pub from: NodeId,
    /// New owner: a live survivor.
    pub to: NodeId,
}

/// A journaled, term-fenced unit of membership change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Plan id, unique per coordinator incarnation (monotone counter).
    pub id: u64,
    /// Coordinator term the plan was minted under; a successor replaying
    /// the journal re-applies only this plan's unfinished steps, and a
    /// deposed incarnation's late steps are fenced by the term check.
    pub term: u64,
    /// What triggered the plan.
    pub reason: RebalanceReason,
    /// The ordered transfers.
    pub steps: Vec<MigrationStep>,
}

impl MigrationPlan {
    /// Whether the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Pick the target with the fewest owned sub-collections (ties → lowest
/// node id) and bump its running count.
fn least_loaded(counts: &mut [(NodeId, usize)]) -> NodeId {
    let (idx, _) = counts
        .iter()
        .enumerate()
        .min_by_key(|(_, (n, c))| (*c, *n))
        .expect("at least one survivor");
    counts[idx].1 += 1;
    counts[idx].0
}

/// Evacuate every sub-collection owned by `victim` onto `survivors`,
/// least-loaded-first. Produced on permanent loss (detector verdict) and
/// on operator drain — only the [`RebalanceReason`] differs.
pub fn plan_evacuation(
    map: &OwnershipMap,
    victim: NodeId,
    survivors: &[NodeId],
    reason: RebalanceReason,
    id: u64,
    term: u64,
) -> MigrationPlan {
    let survivors: Vec<NodeId> = survivors.iter().copied().filter(|n| *n != victim).collect();
    let mut counts = map.counts(&survivors);
    let steps = if counts.is_empty() {
        // No survivors: nothing can be planned. The caller keeps the
        // cluster degraded rather than orphaning subs onto a ghost.
        Vec::new()
    } else {
        map.owned_by(victim)
            .into_iter()
            .map(|sub| MigrationStep {
                sub,
                from: victim,
                to: least_loaded(&mut counts),
            })
            .collect()
    };
    MigrationPlan {
        id,
        term,
        reason,
        steps,
    }
}

/// Bring `newcomer` up to its fair share: move sub-collections off the
/// most-loaded current owners (highest count, ties → highest node id so
/// the donor choice is stable) until the newcomer holds
/// `⌊shards / live-after-join⌋`.
pub fn plan_join(
    map: &OwnershipMap,
    newcomer: NodeId,
    live_after_join: &[NodeId],
    id: u64,
    term: u64,
) -> MigrationPlan {
    let pool: Vec<NodeId> = live_after_join.to_vec();
    let fair = if pool.is_empty() {
        0
    } else {
        map.len() / pool.len()
    };
    let already = map.owned_by(newcomer).len();
    let want = fair.saturating_sub(already);
    let mut steps = Vec::with_capacity(want);
    let mut counts: Vec<(NodeId, usize)> = map
        .counts(&map.owners())
        .into_iter()
        .filter(|(n, _)| *n != newcomer)
        .collect();
    for _ in 0..want {
        // Donor: most-loaded owner still above the fair share.
        let Some((idx, _)) = counts
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c > fair)
            .max_by_key(|(_, (n, c))| (*c, *n))
        else {
            break;
        };
        let donor = counts[idx].0;
        // Deterministic choice: the donor's lowest-id sub-collection not
        // already planned away.
        let Some(sub) = map
            .owned_by(donor)
            .into_iter()
            .find(|s| steps.iter().all(|st: &MigrationStep| st.sub != *s))
        else {
            break;
        };
        counts[idx].1 -= 1;
        steps.push(MigrationStep {
            sub,
            from: donor,
            to: newcomer,
        });
    }
    MigrationPlan {
        id,
        term,
        reason: RebalanceReason::Join,
        steps,
    }
}

/// Skew-triggered single-step plan: when the spread between the hottest
/// and coolest live node's load-gauge value exceeds `threshold`, move one
/// sub-collection (the hottest node's lowest-id one) to the coolest node.
/// One step per invocation keeps the control loop gentle — repeated
/// triggers converge without oscillation because the gauge moves with the
/// migrated work.
pub fn plan_skew(
    map: &OwnershipMap,
    loads: &[(NodeId, f64)],
    threshold: f64,
    id: u64,
    term: u64,
) -> Option<MigrationPlan> {
    if loads.len() < 2 {
        return None;
    }
    let hottest = loads.iter().max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.0.cmp(&a.0))
    })?;
    let coolest = loads.iter().min_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    })?;
    if hottest.0 == coolest.0 || (hottest.1 - coolest.1) <= threshold {
        return None;
    }
    let sub = map.owned_by(hottest.0).into_iter().next()?;
    Some(MigrationPlan {
        id,
        term,
        reason: RebalanceReason::LoadSkew,
        steps: vec![MigrationStep {
            sub,
            from: hottest.0,
            to: coolest.0,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sub(i: u32) -> SubCollectionId {
        SubCollectionId::new(i)
    }

    #[test]
    fn evacuation_spreads_least_loaded_first_and_converges() {
        let mut map = OwnershipMap::balanced(8, &[n(0), n(1), n(2), n(3)]);
        let plan = plan_evacuation(
            &map,
            n(2),
            &[n(0), n(1), n(3)],
            RebalanceReason::PermanentLoss,
            1,
            1,
        );
        assert_eq!(plan.steps.len(), 2, "node 2 owned subs 2 and 6");
        assert!(plan.steps.iter().all(|s| s.from == n(2) && s.to != n(2)));
        for s in &plan.steps {
            map.apply_step(s);
        }
        map.verify_complete(8, &[n(0), n(1), n(3)]).unwrap();
        assert!(map.count_skew(&[n(0), n(1), n(3)]) <= 1);
    }

    #[test]
    fn evacuation_is_deterministic() {
        let map = OwnershipMap::balanced(12, &[n(0), n(1), n(2)]);
        let a = plan_evacuation(&map, n(1), &[n(0), n(2)], RebalanceReason::Drain, 7, 3);
        let b = plan_evacuation(&map, n(1), &[n(0), n(2)], RebalanceReason::Drain, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.reason, RebalanceReason::Drain);
    }

    #[test]
    fn evacuation_with_no_survivors_plans_nothing() {
        let map = OwnershipMap::balanced(4, &[n(0)]);
        let plan = plan_evacuation(&map, n(0), &[n(0)], RebalanceReason::PermanentLoss, 1, 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn join_takes_a_fair_share_from_the_most_loaded() {
        let mut map = OwnershipMap::balanced(9, &[n(0), n(1), n(2)]);
        let plan = plan_join(&map, n(3), &[n(0), n(1), n(2), n(3)], 2, 1);
        assert_eq!(plan.steps.len(), 2, "fair share is 9/4 = 2");
        assert!(plan.steps.iter().all(|s| s.to == n(3)));
        for s in &plan.steps {
            map.apply_step(s);
        }
        map.verify_complete(9, &[n(0), n(1), n(2), n(3)]).unwrap();
        assert_eq!(map.owned_by(n(3)).len(), 2);
        // Already-fair newcomer: nothing to move.
        let again = plan_join(&map, n(3), &[n(0), n(1), n(2), n(3)], 3, 1);
        assert!(again.is_empty());
    }

    #[test]
    fn skew_plan_fires_only_past_the_threshold() {
        let map = OwnershipMap::balanced(6, &[n(0), n(1)]);
        let balanced = [(n(0), 1.0), (n(1), 1.2)];
        assert!(plan_skew(&map, &balanced, 0.5, 1, 1).is_none());
        let skewed = [(n(0), 3.0), (n(1), 0.5)];
        let plan = plan_skew(&map, &skewed, 0.5, 1, 1).unwrap();
        assert_eq!(plan.reason, RebalanceReason::LoadSkew);
        assert_eq!(
            plan.steps,
            vec![MigrationStep {
                sub: sub(0),
                from: n(0),
                to: n(1)
            }]
        );
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let map = OwnershipMap::balanced(4, &[n(0), n(1)]);
        let plan = plan_evacuation(&map, n(0), &[n(1)], RebalanceReason::PermanentLoss, 9, 2);
        let json = serde_json::to_string(&plan).unwrap();
        let back: MigrationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn reasons_render_for_metrics_labels() {
        assert_eq!(RebalanceReason::PermanentLoss.to_string(), "permanent-loss");
        assert_eq!(RebalanceReason::Join.to_string(), "join");
    }
}
