//! The sub-collection ownership map — the state the elastic tier defends.
//!
//! Ownership is control-plane routing state, not data placement: in the
//! thread runtime every node can physically serve any shard of the shared
//! index, and in the DES any node can run any PR chunk. What the map
//! decides is which node is *responsible* for each sub-collection — the
//! node PR dispatch routes that sub-collection's chunks to. Migration is
//! therefore a journaled ownership transfer, throttled and exactly-once,
//! never a data copy.
//!
//! The invariant ([`OwnershipMap::verify_complete`]): **every
//! sub-collection is owned by exactly one live node.** Faults break it
//! (a dead owner), plans repair it, and the soak benches assert it holds
//! again after healing.

use qa_types::{NodeId, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::plan::MigrationStep;

/// Why [`OwnershipMap::verify_complete`] failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvergenceError {
    /// A sub-collection's owner is not in the live set.
    DeadOwner {
        /// The orphaned sub-collection.
        sub: SubCollectionId,
        /// Its (dead) owner.
        owner: NodeId,
    },
    /// A sub-collection has no owner at all.
    Unowned {
        /// The unowned sub-collection.
        sub: SubCollectionId,
    },
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceError::DeadOwner { sub, owner } => {
                write!(f, "sub-collection {sub} is owned by dead node {owner}")
            }
            ConvergenceError::Unowned { sub } => write!(f, "sub-collection {sub} has no owner"),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Which live node owns each sub-collection, plus a monotone epoch that
/// bumps on every applied migration step (the staleness fence for cached
/// routing decisions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipMap {
    owners: BTreeMap<SubCollectionId, NodeId>,
    epoch: u64,
}

impl OwnershipMap {
    /// Balanced initial placement: sub-collection `s` goes to
    /// `nodes[s % nodes.len()]` — the paper's static striping, now just
    /// the epoch-0 state.
    pub fn balanced(shards: u32, nodes: &[NodeId]) -> OwnershipMap {
        assert!(!nodes.is_empty(), "ownership needs at least one node");
        OwnershipMap {
            owners: (0..shards)
                .map(|s| (SubCollectionId::new(s), nodes[s as usize % nodes.len()]))
                .collect(),
            epoch: 0,
        }
    }

    /// The current owner of `sub`.
    pub fn owner(&self, sub: SubCollectionId) -> Option<NodeId> {
        self.owners.get(&sub).copied()
    }

    /// Every sub-collection owned by `node`, in id order.
    pub fn owned_by(&self, node: NodeId) -> Vec<SubCollectionId> {
        self.owners
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(s, _)| *s)
            .collect()
    }

    /// The distinct owners, in id order.
    pub fn owners(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.owners.values().copied().collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per-node owned-sub-collection counts for the given candidate set
    /// (zero rows included), in node order — the deterministic input the
    /// planners balance on.
    pub fn counts(&self, nodes: &[NodeId]) -> Vec<(NodeId, usize)> {
        let mut nodes: Vec<NodeId> = nodes.to_vec();
        nodes.sort();
        nodes.dedup();
        nodes
            .into_iter()
            .map(|n| (n, self.owners.values().filter(|o| **o == n).count()))
            .collect()
    }

    /// Number of sub-collections tracked.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the map tracks no sub-collections.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Monotone change counter: bumps once per applied step.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply one migration step. Returns `true` when the step changed the
    /// map (and bumped the epoch); a step whose `sub` already sits on
    /// `to` is absorbed silently — the idempotence that makes journal
    /// replay and crash-resumed plans exactly-once.
    pub fn apply_step(&mut self, step: &MigrationStep) -> bool {
        match self.owners.get_mut(&step.sub) {
            Some(owner) if *owner != step.to => {
                *owner = step.to;
                self.epoch += 1;
                true
            }
            Some(_) => false,
            None => {
                self.owners.insert(step.sub, step.to);
                self.epoch += 1;
                true
            }
        }
    }

    /// Force-set an owner (journal-replay fold path). Idempotent; bumps
    /// the epoch only on change.
    pub fn set_owner(&mut self, sub: SubCollectionId, node: NodeId) -> bool {
        self.apply_step(&MigrationStep {
            sub,
            from: self.owner(sub).unwrap_or(node),
            to: node,
        })
    }

    /// The convergence invariant: every sub-collection owned by exactly
    /// one node from `live`. (Exactly-one-owner is structural — the map
    /// is keyed by sub-collection — so the checkable part is liveness and
    /// completeness.)
    pub fn verify_complete(&self, shards: u32, live: &[NodeId]) -> Result<(), ConvergenceError> {
        for s in 0..shards {
            let sub = SubCollectionId::new(s);
            match self.owner(sub) {
                None => return Err(ConvergenceError::Unowned { sub }),
                Some(owner) if !live.contains(&owner) => {
                    return Err(ConvergenceError::DeadOwner { sub, owner })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Count-skew across `nodes`: max minus min owned sub-collections.
    /// The load-skew trigger uses gauge values instead; this structural
    /// skew is what the planners minimize.
    pub fn count_skew(&self, nodes: &[NodeId]) -> usize {
        let counts = self.counts(nodes);
        let max = counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
        let min = counts.iter().map(|(_, c)| *c).min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sub(i: u32) -> SubCollectionId {
        SubCollectionId::new(i)
    }

    #[test]
    fn balanced_stripes_round_robin() {
        let map = OwnershipMap::balanced(8, &[n(0), n(1), n(2)]);
        assert_eq!(map.owner(sub(0)), Some(n(0)));
        assert_eq!(map.owner(sub(4)), Some(n(1)));
        assert_eq!(map.owned_by(n(0)), vec![sub(0), sub(3), sub(6)]);
        assert_eq!(map.epoch(), 0);
        assert_eq!(map.count_skew(&[n(0), n(1), n(2)]), 1);
        map.verify_complete(8, &[n(0), n(1), n(2)]).unwrap();
    }

    #[test]
    fn apply_step_is_idempotent_and_epoch_monotone() {
        let mut map = OwnershipMap::balanced(4, &[n(0), n(1)]);
        let step = MigrationStep {
            sub: sub(0),
            from: n(0),
            to: n(1),
        };
        assert!(map.apply_step(&step));
        assert_eq!(map.epoch(), 1);
        // Replaying the same step (journal replay, resumed plan): no-op.
        assert!(!map.apply_step(&step));
        assert_eq!(map.epoch(), 1);
        assert_eq!(map.owner(sub(0)), Some(n(1)));
    }

    #[test]
    fn verify_complete_names_the_violation() {
        let mut map = OwnershipMap::balanced(4, &[n(0), n(1)]);
        map.verify_complete(4, &[n(0), n(1)]).unwrap();
        let err = map.verify_complete(4, &[n(0)]).unwrap_err();
        assert_eq!(
            err,
            ConvergenceError::DeadOwner {
                sub: sub(1),
                owner: n(1)
            }
        );
        assert!(err.to_string().contains("dead node"));
        // Heal it: move node 1's subs to node 0.
        for s in map.owned_by(n(1)) {
            map.apply_step(&MigrationStep {
                sub: s,
                from: n(1),
                to: n(0),
            });
        }
        map.verify_complete(4, &[n(0)]).unwrap();
        let err = map.verify_complete(5, &[n(0)]).unwrap_err();
        assert_eq!(err, ConvergenceError::Unowned { sub: sub(4) });
    }

    #[test]
    fn counts_include_zero_rows_for_candidates() {
        let map = OwnershipMap::balanced(4, &[n(0)]);
        assert_eq!(map.counts(&[n(0), n(1)]), vec![(n(0), 4), (n(1), 0)]);
    }

    #[test]
    fn round_trips_through_serde() {
        let map = OwnershipMap::balanced(6, &[n(0), n(1), n(2)]);
        let json = serde_json::to_string(&map).unwrap();
        let back: OwnershipMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
