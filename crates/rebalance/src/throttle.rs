//! Migration pacing: background re-sharding yields to foreground
//! questions.
//!
//! The throttle is a pure decision function — the caller supplies the
//! foreground occupancy it reads at its admission gate (runtime: the
//! [`AdmissionGate`] in-flight count; DES: the virtual in-flight counter)
//! and the throttle answers whether the next migration step may start
//! now. Three independent brakes:
//!
//! * a concurrency cap (`max_concurrent` steps in flight),
//! * a foreground-headroom gate: when the admission gate is above
//!   `headroom` of its capacity, migrations wait — in-flight questions
//!   keep their deadlines, healing takes the leftovers,
//! * operator/fault stall windows (`RebalanceStall`), during which
//!   nothing migrates at all.
//!
//! A denied step is *deferred*, never dropped: the plan's remaining steps
//! stay queued and the journal's exactly-once accounting is untouched.

use serde::{Deserialize, Serialize};

/// Why the throttle deferred (or allowed) a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrottleVerdict {
    /// The step may start now.
    Go,
    /// A stall window is open.
    Stalled,
    /// `max_concurrent` steps are already in flight.
    Saturated,
    /// Foreground occupancy is above the headroom line.
    Yielding,
}

impl ThrottleVerdict {
    /// Whether the verdict lets the step start.
    pub fn is_go(self) -> bool {
        self == ThrottleVerdict::Go
    }
}

/// Migration pacing policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationThrottle {
    /// Maximum migration steps in flight at once.
    pub max_concurrent: usize,
    /// Fraction of the admission gate's in-flight capacity above which
    /// migrations yield to foreground traffic. With no capacity configured
    /// (an unlimited gate) the headroom brake is inert.
    pub headroom: f64,
    /// Modeled seconds one step takes to apply (virtual seconds in the
    /// DES; the runtime uses it as the pacing interval between steps).
    pub step_secs: f64,
}

impl Default for MigrationThrottle {
    fn default() -> Self {
        MigrationThrottle {
            max_concurrent: 1,
            headroom: 0.75,
            step_secs: 0.05,
        }
    }
}

impl MigrationThrottle {
    /// Decide whether the next step may start.
    ///
    /// * `foreground_in_flight` / `capacity`: the admission gate's current
    ///   occupancy and configured `max_in_flight` (`None` = unlimited).
    /// * `active_steps`: migration steps currently in flight.
    /// * `stalled`: whether a `RebalanceStall` window is open.
    pub fn grant(
        &self,
        foreground_in_flight: usize,
        capacity: Option<usize>,
        active_steps: usize,
        stalled: bool,
    ) -> ThrottleVerdict {
        if stalled {
            return ThrottleVerdict::Stalled;
        }
        if active_steps >= self.max_concurrent.max(1) {
            return ThrottleVerdict::Saturated;
        }
        if let Some(cap) = capacity {
            if cap > 0 && (foreground_in_flight as f64) > self.headroom.clamp(0.0, 1.0) * cap as f64
            {
                return ThrottleVerdict::Yielding;
            }
        }
        ThrottleVerdict::Go
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_when_idle() {
        let t = MigrationThrottle::default();
        assert_eq!(t.grant(0, Some(8), 0, false), ThrottleVerdict::Go);
        assert!(t.grant(0, None, 0, false).is_go());
    }

    #[test]
    fn stall_window_blocks_everything() {
        let t = MigrationThrottle::default();
        assert_eq!(t.grant(0, None, 0, true), ThrottleVerdict::Stalled);
    }

    #[test]
    fn concurrency_cap_saturates() {
        let t = MigrationThrottle {
            max_concurrent: 2,
            ..MigrationThrottle::default()
        };
        assert!(t.grant(0, None, 1, false).is_go());
        assert_eq!(t.grant(0, None, 2, false), ThrottleVerdict::Saturated);
    }

    #[test]
    fn yields_to_busy_foreground() {
        let t = MigrationThrottle {
            headroom: 0.5,
            ..MigrationThrottle::default()
        };
        // 8-slot gate: above 4 in flight, migrations wait.
        assert!(t.grant(4, Some(8), 0, false).is_go());
        assert_eq!(t.grant(5, Some(8), 0, false), ThrottleVerdict::Yielding);
        // Unlimited gate: the headroom brake is inert.
        assert!(t.grant(500, None, 0, false).is_go());
    }

    #[test]
    fn round_trips_through_serde() {
        let t = MigrationThrottle {
            max_concurrent: 3,
            headroom: 0.9,
            step_secs: 0.01,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: MigrationThrottle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
