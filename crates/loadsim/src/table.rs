//! The distributed load table: every node's view of every other node.
//!
//! Membership is liveness-based: "A processor automatically joins the pool
//! when it starts broadcasting load information on the local network" and is
//! removed when no packet arrives within the staleness timeout.

use crate::packet::LoadPacket;
use qa_types::NodeId;
use std::collections::BTreeMap;

/// Per-node load knowledge with receive timestamps. Keyed by an ordered
/// map: dispatchers iterate this table, and their tie-breaks must be
/// node-id-stable for seeded replay.
#[derive(Debug, Clone, Default)]
pub struct LoadTable {
    entries: BTreeMap<NodeId, (LoadPacket, f64)>,
    staleness_timeout: f64,
}

impl LoadTable {
    /// Create a table that evicts nodes silent for `staleness_timeout`
    /// seconds.
    pub fn new(staleness_timeout: f64) -> Self {
        Self {
            entries: BTreeMap::new(),
            staleness_timeout,
        }
    }

    /// Record a received packet at local time `now`.
    pub fn update(&mut self, packet: LoadPacket, now: f64) {
        // Keep the newest packet per node (out-of-order delivery tolerated).
        match self.entries.get(&packet.node) {
            Some((old, _)) if old.sent_at > packet.sent_at => {}
            _ => {
                self.entries.insert(packet.node, (packet, now));
            }
        }
    }

    /// Drop nodes not heard from since `now - staleness_timeout`.
    pub fn evict_stale(&mut self, now: f64) {
        let cutoff = now - self.staleness_timeout;
        self.entries.retain(|_, (_, recv)| *recv >= cutoff);
    }

    /// Live nodes, in ascending id order.
    pub fn alive(&self) -> Vec<NodeId> {
        self.entries.keys().copied().collect()
    }

    /// Latest packet from a node.
    pub fn get(&self, node: NodeId) -> Option<&LoadPacket> {
        self.entries.get(&node).map(|(p, _)| p)
    }

    /// Latest packets from all live nodes, in ascending node-id order.
    pub fn packets(&self) -> Vec<&LoadPacket> {
        self.entries.values().map(|(p, _)| p).collect()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no node is known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::ResourceVector;

    fn pkt(node: u32, sent_at: f64) -> LoadPacket {
        LoadPacket {
            node: NodeId::new(node),
            load: ResourceVector::new(0.1, 0.2),
            memory_used: 0,
            questions: 0,
            sent_at,
        }
    }

    #[test]
    fn updates_and_reads_back() {
        let mut t = LoadTable::new(3.0);
        t.update(pkt(1, 0.0), 0.0);
        t.update(pkt(2, 0.5), 0.5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.alive(), vec![NodeId::new(1), NodeId::new(2)]);
        assert!(t.get(NodeId::new(1)).is_some());
        assert!(t.get(NodeId::new(3)).is_none());
    }

    #[test]
    fn newer_packet_replaces_older() {
        let mut t = LoadTable::new(3.0);
        t.update(pkt(1, 1.0), 1.0);
        t.update(pkt(1, 2.0), 2.0);
        assert_eq!(t.get(NodeId::new(1)).unwrap().sent_at, 2.0);
    }

    #[test]
    fn out_of_order_packet_ignored() {
        let mut t = LoadTable::new(3.0);
        t.update(pkt(1, 5.0), 5.0);
        t.update(pkt(1, 2.0), 6.0); // late arrival of an old packet
        assert_eq!(t.get(NodeId::new(1)).unwrap().sent_at, 5.0);
    }

    #[test]
    fn stale_nodes_evicted_live_nodes_kept() {
        let mut t = LoadTable::new(3.0);
        t.update(pkt(1, 0.0), 0.0);
        t.update(pkt(2, 9.0), 9.0);
        t.evict_stale(10.0);
        assert_eq!(t.alive(), vec![NodeId::new(2)]);
    }

    #[test]
    fn rejoin_after_eviction() {
        let mut t = LoadTable::new(1.0);
        t.update(pkt(1, 0.0), 0.0);
        t.evict_stale(5.0);
        assert!(t.is_empty());
        t.update(pkt(1, 5.0), 5.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn packets_sorted_by_node() {
        let mut t = LoadTable::new(10.0);
        t.update(pkt(3, 0.0), 0.0);
        t.update(pkt(1, 0.0), 0.0);
        let ids: Vec<_> = t.packets().iter().map(|p| p.node).collect();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(3)]);
    }
}
