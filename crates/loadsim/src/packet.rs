//! Load packets and per-node resource state.

use qa_types::{NodeId, ResourceVector};
use serde::{Deserialize, Serialize};

/// One load-monitor broadcast: the paper's `S_load`-byte packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPacket {
    /// Sender.
    pub node: NodeId,
    /// CPU and disk load at measurement time (utilization ∈ [0, ∞); values
    /// above 1 mean queued work beyond one busy server).
    pub load: ResourceVector,
    /// Bytes of memory in use.
    pub memory_used: u64,
    /// Number of questions currently hosted.
    pub questions: u32,
    /// Sender-local timestamp (seconds).
    pub sent_at: f64,
}

impl LoadPacket {
    /// Serialized size used for network accounting (the analytical model's
    /// `S_load`).
    pub const WIRE_BYTES: usize = 40;
}

/// Mutable resource state of one node, from which packets are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// This node's identity.
    pub node: NodeId,
    /// Current CPU load (busy fraction plus run-queue excess).
    pub cpu: f64,
    /// Current disk load.
    pub disk: f64,
    /// Memory in use (bytes).
    pub memory_used: u64,
    /// Memory capacity (bytes).
    pub memory_total: u64,
    /// Questions currently hosted.
    pub questions: u32,
}

impl NodeState {
    /// A fresh, idle node.
    pub fn idle(node: NodeId, memory_total: u64) -> Self {
        Self {
            node,
            cpu: 0.0,
            disk: 0.0,
            memory_used: 0,
            memory_total,
            questions: 0,
        }
    }

    /// Snapshot into a broadcastable packet.
    pub fn packet(&self, now: f64) -> LoadPacket {
        LoadPacket {
            node: self.node,
            load: ResourceVector::new(self.cpu, self.disk),
            memory_used: self.memory_used,
            questions: self.questions,
            sent_at: now,
        }
    }

    /// Fraction of memory in use.
    pub fn memory_pressure(&self) -> f64 {
        if self.memory_total == 0 {
            return 1.0;
        }
        self.memory_used as f64 / self.memory_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_node_has_zero_load() {
        let n = NodeState::idle(NodeId::new(1), 256 << 20);
        assert_eq!(n.cpu, 0.0);
        assert_eq!(n.memory_pressure(), 0.0);
        assert_eq!(n.questions, 0);
    }

    #[test]
    fn packet_snapshot_carries_state() {
        let mut n = NodeState::idle(NodeId::new(2), 100);
        n.cpu = 0.5;
        n.disk = 0.25;
        n.memory_used = 50;
        n.questions = 3;
        let p = n.packet(12.5);
        assert_eq!(p.node, NodeId::new(2));
        assert_eq!(p.load.cpu, 0.5);
        assert_eq!(p.load.disk, 0.25);
        assert_eq!(p.questions, 3);
        assert_eq!(p.sent_at, 12.5);
    }

    #[test]
    fn memory_pressure_edges() {
        let mut n = NodeState::idle(NodeId::new(3), 0);
        assert_eq!(n.memory_pressure(), 1.0, "zero-capacity node is full");
        n.memory_total = 100;
        n.memory_used = 100;
        assert_eq!(n.memory_pressure(), 1.0);
    }
}
