//! Load functions (Eqs. 1–6) and under-load conditions (Eqs. 7–8).
//!
//! Using the weights measured on the paper's platform (Table 3):
//!
//! * `load_QA(P) = 0.79·cpuLoad(P) + 0.21·diskLoad(P)`   (Eq. 4)
//! * `load_PR(P) = 0.20·cpuLoad(P) + 0.80·diskLoad(P)`   (Eq. 5)
//! * `load_AP(P) = cpuLoad(P)`                            (Eq. 6)
//!
//! A node is *under-loaded* for PR/AP when its module load function is
//! below the load observed when a single such sub-task runs alone
//! (Eqs. 7–8).

use qa_types::{QaModule, ResourceVector, ResourceWeights};
use serde::{Deserialize, Serialize};

/// The whole-task load function (Eq. 4).
pub fn qa_load(v: ResourceVector) -> f64 {
    ResourceWeights::QA.load(v)
}

/// The PR dispatcher's load function (Eq. 5).
pub fn pr_load(v: ResourceVector) -> f64 {
    ResourceWeights::PR.load(v)
}

/// The AP dispatcher's load function (Eq. 6).
pub fn ap_load(v: ResourceVector) -> f64 {
    ResourceWeights::AP.load(v)
}

/// Under-load condition (Eqs. 7–8): true when the module load is below the
/// single-sub-task baseline.
pub fn underloaded(module_load: f64, single_task_load: f64) -> bool {
    module_load < single_task_load
}

/// A bundle of load functions + baselines used by one deployment.
///
/// Makes the weights swappable so the ablation bench can compare Table-3
/// weights against uniform weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadFunctions {
    /// Whole-task weights (question dispatcher).
    pub qa: ResourceWeights,
    /// PR dispatcher weights.
    pub pr: ResourceWeights,
    /// AP dispatcher weights.
    pub ap: ResourceWeights,
    /// Load of a single PR sub-task running alone (the Eq. 7 baseline).
    pub pr_single_task_load: f64,
    /// Load of a single AP sub-task running alone (the Eq. 8 baseline).
    pub ap_single_task_load: f64,
}

impl LoadFunctions {
    /// The paper's measured configuration: Table-3 weights with baselines
    /// derived from the §4.2 experiment (a single PR sub-task saturates
    /// ~80 % of the disk; a single AP sub-task saturates one CPU).
    pub fn paper() -> Self {
        Self {
            qa: ResourceWeights::QA,
            pr: ResourceWeights::PR,
            ap: ResourceWeights::AP,
            pr_single_task_load: pr_load(ResourceVector::new(0.2, 0.8)),
            ap_single_task_load: ap_load(ResourceVector::new(1.0, 0.0)),
        }
    }

    /// Uniform-weight variant for the ablation bench.
    pub fn uniform() -> Self {
        Self {
            qa: ResourceWeights::UNIFORM,
            pr: ResourceWeights::UNIFORM,
            ap: ResourceWeights::UNIFORM,
            ..Self::paper()
        }
    }

    /// Evaluate the load function a dispatcher uses for `module`.
    pub fn load_for(&self, module: QaModule, v: ResourceVector) -> f64 {
        match module {
            QaModule::Pr => self.pr.load(v),
            QaModule::Ap => self.ap.load(v),
            _ => self.qa.load(v),
        }
    }

    /// The under-load condition for `module` (only PR and AP have one).
    pub fn is_underloaded(&self, module: QaModule, v: ResourceVector) -> bool {
        match module {
            QaModule::Pr => underloaded(self.pr.load(v), self.pr_single_task_load),
            QaModule::Ap => underloaded(self.ap.load(v), self.ap_single_task_load),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_eq5_eq6_values() {
        let v = ResourceVector::new(1.0, 0.5);
        assert!((qa_load(v) - (0.79 + 0.21 * 0.5)).abs() < 1e-12);
        assert!((pr_load(v) - (0.20 + 0.80 * 0.5)).abs() < 1e-12);
        assert!((ap_load(v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_node_is_underloaded_for_both_modules() {
        let f = LoadFunctions::paper();
        let idle = ResourceVector::new(0.0, 0.0);
        assert!(f.is_underloaded(QaModule::Pr, idle));
        assert!(f.is_underloaded(QaModule::Ap, idle));
    }

    #[test]
    fn busy_node_is_not_underloaded() {
        let f = LoadFunctions::paper();
        // One AP sub-task already saturates the CPU (Eq. 8 baseline).
        let busy_cpu = ResourceVector::new(1.0, 0.0);
        assert!(!f.is_underloaded(QaModule::Ap, busy_cpu));
        // One PR sub-task already saturates the disk at 0.8.
        let busy_disk = ResourceVector::new(0.2, 0.8);
        assert!(!f.is_underloaded(QaModule::Pr, busy_disk));
    }

    #[test]
    fn disk_load_does_not_affect_ap_underload() {
        let f = LoadFunctions::paper();
        let disk_only = ResourceVector::new(0.0, 1.0);
        assert!(
            f.is_underloaded(QaModule::Ap, disk_only),
            "AP cares about CPU only (Eq. 6)"
        );
    }

    #[test]
    fn qa_module_never_underloaded_condition() {
        let f = LoadFunctions::paper();
        assert!(!f.is_underloaded(QaModule::Qp, ResourceVector::new(0.0, 0.0)));
        assert!(!f.is_underloaded(QaModule::Po, ResourceVector::new(0.0, 0.0)));
    }

    #[test]
    fn load_for_dispatches_to_module_weights() {
        let f = LoadFunctions::paper();
        let v = ResourceVector::new(0.4, 0.9);
        assert_eq!(f.load_for(QaModule::Pr, v), pr_load(v));
        assert_eq!(f.load_for(QaModule::Ap, v), ap_load(v));
        assert_eq!(f.load_for(QaModule::Qp, v), qa_load(v));
    }

    #[test]
    fn uniform_variant_differs() {
        let u = LoadFunctions::uniform();
        let v = ResourceVector::new(1.0, 0.0);
        assert!((u.load_for(QaModule::Pr, v) - 0.5).abs() < 1e-12);
    }
}
