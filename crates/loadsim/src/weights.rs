//! Empirical resource-weight measurement (§4.2, Table 3).
//!
//! "In practice, the weight associated with the CPU resource is computed as
//! the percentage spent by the CPU in a non-idle state during the module
//! execution. Because the only other resource highly utilized by the
//! sequential Q/A application is the disk, the remaining CPU cycles are
//! assumed to be spent performing I/O accesses."

use qa_types::{QaModule, ResourceWeights};
use std::collections::BTreeMap;

/// Accumulates per-module CPU/disk time and derives load-function weights.
/// Module totals live in an ordered map so that `task_weights` folds in a
/// fixed order (floating-point addition is not associative).
#[derive(Debug, Clone, Default)]
pub struct WeightEstimator {
    totals: BTreeMap<QaModule, (f64, f64)>,
}

impl WeightEstimator {
    /// Start with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one module execution: seconds of CPU work and seconds of
    /// disk work.
    pub fn record(&mut self, module: QaModule, cpu_secs: f64, disk_secs: f64) {
        let e = self.totals.entry(module).or_insert((0.0, 0.0));
        e.0 += cpu_secs.max(0.0);
        e.1 += disk_secs.max(0.0);
    }

    /// Number of modules with observations.
    pub fn observed_modules(&self) -> usize {
        self.totals.len()
    }

    /// Weights for one module, `None` if unobserved or all-zero.
    pub fn weights(&self, module: QaModule) -> Option<ResourceWeights> {
        let &(cpu, disk) = self.totals.get(&module)?;
        if cpu + disk <= 0.0 {
            return None;
        }
        Some(ResourceWeights::normalized(cpu, disk))
    }

    /// Whole-task weights: totals across every observed module.
    pub fn task_weights(&self) -> Option<ResourceWeights> {
        let (cpu, disk) = self
            .totals
            .values()
            .fold((0.0, 0.0), |(c, d), &(mc, md)| (c + mc, d + md));
        if cpu + disk <= 0.0 {
            return None;
        }
        Some(ResourceWeights::normalized(cpu, disk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table3_from_module_times() {
        // Feed the paper's mix: PR 20 % CPU / 80 % disk, AP pure CPU.
        let mut w = WeightEstimator::new();
        w.record(QaModule::Pr, 2.0, 8.0);
        w.record(QaModule::Ap, 10.0, 0.0);
        let pr = w.weights(QaModule::Pr).unwrap();
        assert!((pr.cpu - 0.20).abs() < 1e-12);
        assert!((pr.disk - 0.80).abs() < 1e-12);
        let ap = w.weights(QaModule::Ap).unwrap();
        assert!((ap.cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulates_across_questions() {
        let mut w = WeightEstimator::new();
        w.record(QaModule::Pr, 1.0, 1.0);
        w.record(QaModule::Pr, 3.0, 1.0);
        let pr = w.weights(QaModule::Pr).unwrap();
        assert!((pr.cpu - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn task_weights_combine_modules() {
        let mut w = WeightEstimator::new();
        w.record(QaModule::Pr, 2.0, 8.0);
        w.record(QaModule::Ap, 10.0, 0.0);
        let t = w.task_weights().unwrap();
        // 12 cpu / 8 disk of 20 total.
        assert!((t.cpu - 0.6).abs() < 1e-12);
        assert!((t.disk - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unobserved_module_is_none() {
        let w = WeightEstimator::new();
        assert!(w.weights(QaModule::Pr).is_none());
        assert!(w.task_weights().is_none());
        assert_eq!(w.observed_modules(), 0);
    }

    #[test]
    fn negative_inputs_clamped() {
        let mut w = WeightEstimator::new();
        w.record(QaModule::Ps, -5.0, 1.0);
        let ps = w.weights(QaModule::Ps).unwrap();
        assert_eq!(ps.disk, 1.0);
    }
}
