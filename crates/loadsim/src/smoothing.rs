//! Exponential smoothing of load signals.
//!
//! The paper's load functions consume "the percentage of the execution time
//! the Q/A task spends accessing the corresponding resource" — a *time
//! average*, not an instantaneous sample. A monitor that broadcasts raw
//! instantaneous counters makes dispatchers twitchy (a node between two
//! disk bursts looks idle); this module provides the standard fix, an
//! exponentially-weighted moving average over irregular sample times.

use qa_types::ResourceVector;
use serde::{Deserialize, Serialize};

/// An EWMA over a load vector with a configurable time constant.
///
/// Samples may arrive at irregular intervals; the decay applied to the old
/// average is `exp(-Δt / time_constant)`, so the smoother is independent of
/// the sampling rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSmoother {
    /// Time constant in seconds: samples older than ~3τ barely contribute.
    pub time_constant: f64,
    value: ResourceVector,
    last_at: Option<f64>,
}

impl LoadSmoother {
    /// A smoother with the given time constant (seconds).
    pub fn new(time_constant: f64) -> LoadSmoother {
        LoadSmoother {
            time_constant: time_constant.max(1e-9),
            value: ResourceVector::default(),
            last_at: None,
        }
    }

    /// Feed a sample observed at time `at` (seconds, monotone). Returns the
    /// updated smoothed value. Out-of-order samples are treated as
    /// simultaneous with the last one.
    pub fn update(&mut self, sample: ResourceVector, at: f64) -> ResourceVector {
        match self.last_at {
            None => {
                self.value = sample;
            }
            Some(prev) => {
                let dt = (at - prev).max(0.0);
                let alpha = 1.0 - (-dt / self.time_constant).exp();
                self.value = ResourceVector::new(
                    self.value.cpu + alpha * (sample.cpu - self.value.cpu),
                    self.value.disk + alpha * (sample.disk - self.value.disk),
                );
            }
        }
        self.last_at = Some(self.last_at.map_or(at, |p| p.max(at)));
        self.value
    }

    /// The current smoothed value.
    pub fn value(&self) -> ResourceVector {
        self.value
    }

    /// Whether any sample has been observed yet.
    pub fn is_warm(&self) -> bool {
        self.last_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(cpu: f64, disk: f64) -> ResourceVector {
        ResourceVector::new(cpu, disk)
    }

    #[test]
    fn first_sample_is_adopted_verbatim() {
        let mut s = LoadSmoother::new(1.0);
        assert!(!s.is_warm());
        let out = s.update(v(0.8, 0.3), 0.0);
        assert_eq!(out, v(0.8, 0.3));
        assert!(s.is_warm());
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut s = LoadSmoother::new(10.0);
        s.update(v(0.0, 0.0), 0.0);
        // A single 1-second spike against a 10-second time constant.
        let out = s.update(v(1.0, 1.0), 1.0);
        assert!(
            out.cpu > 0.0 && out.cpu < 0.2,
            "spike passed through: {out:?}"
        );
    }

    #[test]
    fn converges_to_a_constant_signal() {
        let mut s = LoadSmoother::new(2.0);
        s.update(v(0.0, 0.0), 0.0);
        let mut out = v(0.0, 0.0);
        for i in 1..100 {
            out = s.update(v(0.6, 0.4), i as f64 * 0.5);
        }
        assert!((out.cpu - 0.6).abs() < 1e-3);
        assert!((out.disk - 0.4).abs() < 1e-3);
    }

    #[test]
    fn long_gaps_forget_the_past() {
        let mut s = LoadSmoother::new(1.0);
        s.update(v(1.0, 1.0), 0.0);
        // 100 time constants later a new sample dominates completely.
        let out = s.update(v(0.0, 0.0), 100.0);
        assert!(out.cpu < 1e-9);
    }

    #[test]
    fn out_of_order_samples_do_not_rewind() {
        let mut s = LoadSmoother::new(1.0);
        s.update(v(0.5, 0.5), 10.0);
        let before = s.value();
        // A stale sample "from" t=1 is treated as Δt = 0: no decay jump.
        let after = s.update(v(0.5, 0.5), 1.0);
        assert_eq!(before, after);
    }

    #[test]
    fn smoother_is_rate_independent() {
        // Same signal sampled at 1 Hz and 10 Hz converges to the same value.
        let run = |hz: f64| {
            let mut s = LoadSmoother::new(3.0);
            let steps = (30.0 * hz) as usize;
            let mut out = v(0.0, 0.0);
            for i in 0..steps {
                out = s.update(v(0.7, 0.2), i as f64 / hz);
            }
            out
        };
        let slow = run(1.0);
        let fast = run(10.0);
        assert!((slow.cpu - fast.cpu).abs() < 0.01, "{slow:?} vs {fast:?}");
    }
}
