#![warn(missing_docs)]
//! Load monitoring and load functions (§3.1, §4.2 of the paper).
//!
//! Every node runs a *load monitor* that periodically measures local CPU and
//! disk load and broadcasts it; each node therefore knows the load of every
//! other active node, and membership is inferred from broadcast liveness
//! ("if load information is not received from a processor in a predefined
//! time, that processor is removed from the system pool").
//!
//! * [`packet`] — the broadcast load packet and per-node snapshot;
//! * [`table`] — the distributed load table with staleness-based membership;
//! * [`functions`] — the weighted load functions of Eqs. 1–6 and the
//!   under-load conditions of Eqs. 7–8;
//! * [`weights`] — empirical measurement of resource weights (Table 3);
//! * [`smoothing`] — EWMA smoothing of the broadcast load signals.

pub mod functions;
pub mod packet;
pub mod smoothing;
pub mod table;
pub mod weights;

pub use functions::{ap_load, pr_load, qa_load, underloaded, LoadFunctions};
pub use packet::{LoadPacket, NodeState};
pub use smoothing::LoadSmoother;
pub use table::LoadTable;
pub use weights::WeightEstimator;
