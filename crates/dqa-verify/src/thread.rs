//! `spawn`/`join` shims. Outside a model run they delegate to
//! `std::thread`; inside one, spawned closures become controlled threads
//! of the current exploration and `join` parks under the scheduler.

use std::sync::{Arc, Mutex as StdMutex};

enum Inner<T> {
    Os(std::thread::JoinHandle<T>),
    Model {
        tid: crate::sched::Tid,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Under the
    /// explorer a child panic aborts the whole execution (it is reported
    /// as the model failure), so the error arm is only reachable in
    /// pass-through mode.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Os(h) => h.join(),
            Inner::Model { tid, slot } => {
                let ctx = crate::sched::current()
                    .expect("join on a model JoinHandle from outside the model");
                ctx.shared.join_thread(ctx.tid, tid);
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .ok_or_else(|| -> Box<dyn std::any::Any + Send> {
                        Box::new("model thread terminated without a result".to_string())
                    })
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match crate::sched::current() {
        Some(ctx) => {
            let slot = Arc::new(StdMutex::new(None));
            let out = Arc::clone(&slot);
            let tid = ctx.shared.spawn_thread(move || {
                let result = f();
                *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
            JoinHandle(Inner::Model { tid, slot })
        }
        None => JoinHandle(Inner::Os(std::thread::spawn(f))),
    }
}
