//! dqa-verify: a loom-style model checker for the runtime's hot
//! concurrency structures, with zero external dependencies.
//!
//! The real `loom` crate cannot be vendored here, so this crate
//! implements the same *shape* of tool from scratch:
//!
//! - [`model`] / [`Builder`] run a closure under **bounded exhaustive
//!   interleaving exploration**: real OS threads, but gated by a central
//!   scheduler so exactly one runs at a time, with a DFS over every
//!   scheduling decision point (lock acquisition, condvar wait/notify,
//!   atomic access, spawn/join). Each execution replays a recorded
//!   decision path, then backtracks to the deepest unexplored branch.
//! - [`sync`] provides drop-in `Mutex`/`Condvar` shims with the
//!   `parking_lot` API surface the runtime uses, plus sequentially
//!   consistent atomic shims. **Dual mode:** outside [`model`] they pass
//!   straight through to `std::sync`, so a crate compiled against the
//!   shims (e.g. `dqa-runtime --features loom`) still behaves normally in
//!   ordinary tests; inside [`model`] every operation becomes a
//!   scheduling decision.
//! - [`thread`] provides matching `spawn`/`JoinHandle` shims.
//!
//! Failure modes the explorer detects:
//!
//! - **assertion panics** in any interleaving (reported with the decision
//!   path that produced them),
//! - **deadlock / lost wakeup**: every live thread blocked with no
//!   timeout able to fire — exactly what a dropped `Condvar` notify
//!   produces,
//! - **exploration bounds exceeded** (too many executions or steps),
//!   which keeps accidental state-space explosions from hanging CI.
//!
//! Timed condvar waits (`wait_until`) are modeled nondeterministically:
//! at every point where a timed waiter is parked, "the timeout fires" is
//! one of the explored branches, so both the notified and the timed-out
//! paths are covered without any real clock.
//!
//! State under test must be created *inside* the model closure (the
//! closure reruns once per interleaving); sharing state across
//! executions makes replay meaningless, as it would no longer be
//! deterministic.

pub mod sched;
pub mod sync;
pub mod thread;

pub use sched::{Builder, Failure, Report};

/// Explore every interleaving of `f` with the default bounds, panicking
/// on the first failing one (loom-compatible entry point).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}
