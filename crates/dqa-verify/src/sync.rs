//! Dual-mode `Mutex`/`Condvar`/atomic shims with the `parking_lot` API
//! surface the runtime uses.
//!
//! Outside a [`crate::model`] run every operation passes straight through
//! to `std::sync`, so code compiled against these shims behaves normally.
//! Inside a model run, every lock acquisition, condvar operation and
//! atomic access is a scheduling decision point registered with the
//! explorer, and blocking is simulated (the real OS thread parks under
//! the scheduler instead of the OS primitive).

use crate::sched::{self, Shared, Wake};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

type ModelRef = (Arc<Shared>, usize);

fn take_std<'a, T>(m: &'a StdMutex<T>) -> std::sync::MutexGuard<'a, T> {
    // The scheduler has already granted exclusive ownership, so the
    // underlying std mutex must be free; poison from an aborted prior
    // interleaving is harmless (state is recreated per execution).
    match m.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            unreachable!("scheduler granted a mutex that is still held")
        }
    }
}

/// A mutex with the `parking_lot` API: `lock()` returns the guard
/// directly (no `Result`), poisoning is swallowed.
pub struct Mutex<T> {
    inner: StdMutex<T>,
    model: Option<ModelRef>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let model = sched::current().map(|ctx| {
            let id = ctx.shared.register_mutex();
            (ctx.shared, id)
        });
        Mutex {
            inner: StdMutex::new(value),
            model,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let (Some((shared, id)), Some(ctx)) = (&self.model, sched::current()) {
            shared.acquire_mutex(ctx.tid, *id);
            return MutexGuard {
                lock: self,
                inner: Some(take_std(&self.inner)),
                model: Some((ctx, *id)),
            };
        }
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            model: None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(sched::Ctx, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered mid-wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered mid-wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard before telling the scheduler: the next owner
        // may be scheduled as soon as the release is recorded.
        self.inner = None;
        if let Some((ctx, id)) = &self.model {
            ctx.shared.release_mutex(ctx.tid, *id);
        }
    }
}

/// The result of a timed condvar wait; mirrors
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot` API: waits take
/// `&mut MutexGuard` instead of consuming it.
pub struct Condvar {
    inner: std::sync::Condvar,
    model: Option<ModelRef>,
}

impl Condvar {
    pub fn new() -> Self {
        let model = sched::current().map(|ctx| {
            let id = ctx.shared.register_cv();
            (ctx.shared, id)
        });
        Condvar {
            inner: std::sync::Condvar::new(),
            model,
        }
    }

    /// Block until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, false);
    }

    /// Block until notified or the (modeled) deadline passes. Under the
    /// explorer the timeout is nondeterministic: at any point while
    /// parked, "the deadline fires" is one of the explored branches.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        if let Some(wake) = self.try_model_wait(guard, true) {
            return WaitTimeoutResult(wake == Wake::TimedOut);
        }
        let g = guard.inner.take().expect("guard surrendered mid-wait");
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        if let (Some((shared, cv)), Some(ctx)) = (&self.model, sched::current()) {
            shared.cv_notify(ctx.tid, *cv, false);
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let (Some((shared, cv)), Some(ctx)) = (&self.model, sched::current()) {
            shared.cv_notify(ctx.tid, *cv, true);
            return;
        }
        self.inner.notify_all();
    }

    fn wait_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) {
        if self.try_model_wait(guard, timed).is_some() {
            return;
        }
        let g = guard.inner.take().expect("guard surrendered mid-wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// The model-mode wait protocol: surrender the std guard, park under
    /// the scheduler (which releases the modeled mutex atomically), then
    /// retake both once scheduled with the mutex granted.
    fn try_model_wait<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> Option<Wake> {
        let (shared, cv) = self.model.as_ref()?;
        // Surrender the ownership marker while parked: if the execution
        // is aborted mid-wait, the guard's destructor must not tell the
        // scheduler to release a mutex this thread no longer owns.
        let (ctx, m) = guard.model.take()?;
        debug_assert!(
            Arc::ptr_eq(shared, &ctx.shared),
            "condvar and mutex belong to different model runs"
        );
        guard.inner = None;
        let wake = shared.cv_wait(ctx.tid, *cv, m, timed);
        guard.inner = Some(take_std(&guard.lock.inner));
        guard.model = Some((ctx, m));
        Some(wake)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Sequentially consistent atomic shims. Under the explorer every access
/// is a scheduling decision point; the ordering argument is accepted for
/// API compatibility but all modeled accesses are SeqCst.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    fn interleave() {
        if let Some(ctx) = crate::sched::current() {
            ctx.shared.switch_point(ctx.tid);
        }
    }

    macro_rules! atomic_shim {
        ($name:ident, $std:ty, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                pub fn load(&self, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.load(Ordering::SeqCst)
                }

                pub fn store(&self, v: $prim, _order: Ordering) {
                    interleave();
                    self.inner.store(v, Ordering::SeqCst)
                }

                pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    interleave();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Modeled as the strong variant: spurious failure is a
                /// hardware artifact, not a scheduling decision, and every
                /// caller must already loop on failure anyway.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }
        };
    }

    atomic_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    macro_rules! atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                pub fn fetch_max(&self, v: $prim, _order: Ordering) -> $prim {
                    interleave();
                    self.inner.fetch_max(v, Ordering::SeqCst)
                }
            }
        };
    }

    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);
}
