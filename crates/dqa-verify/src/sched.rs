//! The interleaving explorer: a cooperative scheduler that serializes
//! real threads and drives a DFS over every scheduling decision.
//!
//! One execution = one decision path. Every controlled thread stops at
//! each synchronization point and hands control to the scheduler, which
//! picks the next thread to run — by replaying the recorded path prefix,
//! then defaulting to the lowest runnable thread id. When an execution
//! finishes, the driver backtracks to the deepest decision with an
//! unexplored alternative and reruns. The whole space is explored when
//! no decision has alternatives left.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

pub(crate) type Tid = usize;

/// Marker payload threads throw to unwind quickly once an execution is
/// being aborted (failure elsewhere); the wrapper swallows it.
pub(crate) struct Abort;

/// Why a parked condvar waiter resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Notified,
    TimedOut,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Parked until the mutex is released, then runnable to retry.
    BlockedOnMutex(usize),
    /// Parked in a condvar wait; `timed` waiters can be woken by the
    /// modeled timeout as a scheduling alternative.
    WaitingOnCv {
        cv: usize,
        timed: bool,
    },
    /// Parked in `JoinHandle::join` until the child finishes.
    BlockedOnJoin(Tid),
    Finished,
}

pub(crate) struct ThreadState {
    pub status: Status,
    pub wake: Option<Wake>,
}

#[derive(Default)]
pub(crate) struct SchedState {
    pub threads: Vec<ThreadState>,
    /// Mutex owners, indexed by per-execution mutex id.
    pub mutex_owner: Vec<Option<Tid>>,
    pub n_cvs: usize,
    /// The single thread allowed to run; None = scheduler's turn.
    pub active: Option<Tid>,
    /// The previously scheduled thread (preemption accounting).
    pub last_run: Option<Tid>,
    pub preemptions: usize,
    /// Decision index within the current execution.
    pub step: usize,
    /// The decision path being replayed/extended.
    pub path: Vec<usize>,
    pub failure: Option<String>,
    pub abort: bool,
    /// Real join handles of every controlled thread this execution.
    pub handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Shared {
    pub state: StdMutex<SchedState>,
    pub sched_cv: StdCondvar,
    pub thread_cv: StdCondvar,
    pub max_steps: usize,
    pub preemption_bound: Option<usize>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub shared: Arc<Shared>,
    pub tid: Tid,
}

/// The calling thread's model context, if it is a controlled thread.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

impl Shared {
    /// Hand control to the scheduler and park until scheduled again.
    fn yield_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        tid: Tid,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        st.active = None;
        self.sched_cv.notify_one();
        loop {
            st = self.thread_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == Some(tid) {
                return st;
            }
        }
    }

    /// A plain scheduling decision point: stay runnable, let the
    /// scheduler pick who continues.
    pub(crate) fn switch_point(&self, tid: Tid) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let _st = self.yield_turn(st, tid);
    }

    // -- mutexes ----------------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    pub(crate) fn register_cv(&self) -> usize {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.n_cvs += 1;
        st.n_cvs - 1
    }

    /// Acquire with a leading decision point (the acquisition order is
    /// exactly what we explore).
    pub(crate) fn acquire_mutex(&self, tid: Tid, m: usize) {
        self.switch_point(tid);
        self.acquire_mutex_nopreempt(tid, m);
    }

    /// Acquire without a leading decision point (used when reacquiring
    /// after a condvar wake, where the wake itself was the decision).
    pub(crate) fn acquire_mutex_nopreempt(&self, tid: Tid, m: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.mutex_owner[m].is_none() {
                st.mutex_owner[m] = Some(tid);
                return;
            }
            st.threads[tid].status = Status::BlockedOnMutex(m);
            st = self.yield_turn(st, tid);
        }
    }

    /// Release; waiters become runnable (they retry when scheduled).
    /// Deliberately *not* a decision point: the owner keeps running until
    /// its next synchronization operation.
    pub(crate) fn release_mutex(&self, tid: Tid, m: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(st.mutex_owner[m], Some(tid));
        st.mutex_owner[m] = None;
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedOnMutex(m) {
                t.status = Status::Runnable;
            }
        }
    }

    // -- condvars ---------------------------------------------------------

    /// Atomically release `m` and park on `cv`; returns why we woke.
    /// The caller reacquires `m` afterwards.
    pub(crate) fn cv_wait(&self, tid: Tid, cv: usize, m: usize, timed: bool) -> Wake {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(st.mutex_owner[m], Some(tid));
        st.mutex_owner[m] = None;
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedOnMutex(m) {
                t.status = Status::Runnable;
            }
        }
        st.threads[tid].status = Status::WaitingOnCv { cv, timed };
        st.threads[tid].wake = None;
        st = self.yield_turn(st, tid);
        let wake = st.threads[tid].wake.take().expect("woken without reason");
        drop(st);
        self.acquire_mutex_nopreempt(tid, m);
        wake
    }

    /// Notify: a decision point, then every waiter (or the lowest-id
    /// waiter for `notify_one`) becomes runnable with `Wake::Notified`.
    pub(crate) fn cv_notify(&self, tid: Tid, cv: usize, all: bool) {
        self.switch_point(tid);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut woken = 0usize;
        for t in st.threads.iter_mut() {
            if let Status::WaitingOnCv { cv: c, .. } = t.status {
                if c == cv && (all || woken == 0) {
                    t.status = Status::Runnable;
                    t.wake = Some(Wake::Notified);
                    woken += 1;
                }
            }
        }
    }

    // -- threads ----------------------------------------------------------

    /// Register and start a controlled thread running `body`.
    pub(crate) fn spawn_thread(self: &Arc<Self>, body: impl FnOnce() + Send + 'static) -> Tid {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let tid = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            wake: None,
        });
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("dqa-verify-{tid}"))
            .spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        shared: Arc::clone(&shared),
                        tid,
                    });
                });
                // Park until first scheduled.
                {
                    let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    while st.active != Some(tid) {
                        if st.abort {
                            break;
                        }
                        st = shared.thread_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
                let aborted = {
                    let st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.abort
                };
                if !aborted {
                    let res = catch_unwind(AssertUnwindSafe(body));
                    if let Err(payload) = res {
                        if !payload.is::<Abort>() {
                            // `&*`: coerce the *contents*, not the Box
                            // itself, into `dyn Any` for the downcasts.
                            let msg = panic_message(&*payload);
                            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                            if st.failure.is_none() {
                                st.failure = Some(msg);
                            }
                        }
                    }
                }
                // Mark finished, wake joiners, hand control back.
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.threads[tid].status = Status::Finished;
                for t in st.threads.iter_mut() {
                    if t.status == Status::BlockedOnJoin(tid) {
                        t.status = Status::Runnable;
                    }
                }
                if st.active == Some(tid) {
                    st.active = None;
                }
                shared.sched_cv.notify_one();
                shared.thread_cv.notify_all();
            })
            .expect("spawn model thread");
        st.handles.push(handle);
        tid
    }

    /// Park until `child` finishes.
    pub(crate) fn join_thread(&self, tid: Tid, child: Tid) {
        self.switch_point(tid);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.threads[child].status != Status::Finished {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            st.threads[tid].status = Status::BlockedOnJoin(child);
            st = self.yield_turn(st, tid);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// A failed exploration.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable cause (assertion message, deadlock description, or
    /// exceeded bound).
    pub message: String,
    /// The decision path that produced it (replayable).
    pub path: Vec<usize>,
    /// Executions completed before the failure.
    pub executions: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed after {} execution(s): {}\n  decision path: {:?}",
            self.executions, self.message, self.path
        )
    }
}

/// A completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Interleavings explored.
    pub executions: usize,
    /// Deepest decision path seen.
    pub max_depth: usize,
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Abort (as a failure) past this many interleavings.
    pub max_executions: usize,
    /// Abort (as a failure) past this many decisions in one execution —
    /// catches accidental unbounded loops in a model.
    pub max_steps: usize,
    /// Optional context-switch bound: once a single execution has
    /// preempted a still-runnable thread this many times, the scheduler
    /// stops branching and runs the current thread to its next blocking
    /// point. 2–3 catches most real bugs at a fraction of the space.
    pub preemption_bound: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_executions: 200_000,
            max_steps: 20_000,
            preemption_bound: None,
        }
    }
}

impl Builder {
    /// Explore every interleaving of `f`; panic with the failing decision
    /// path on the first counterexample.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Explore every interleaving of `f`, returning the counterexample
    /// instead of panicking (for asserting that seeded mutants fail).
    pub fn try_check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let shared = Arc::new(Shared {
            state: StdMutex::new(SchedState::default()),
            sched_cv: StdCondvar::new(),
            thread_cv: StdCondvar::new(),
            max_steps: self.max_steps,
            preemption_bound: self.preemption_bound,
        });
        let mut path: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        let mut max_depth = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                return Err(Failure {
                    message: format!(
                        "exploration bound exceeded ({} executions)",
                        self.max_executions
                    ),
                    path,
                    executions: executions - 1,
                });
            }
            let (alts, failure) = run_once(&shared, &f, &mut path);
            max_depth = max_depth.max(path.len());
            if let Some(message) = failure {
                return Err(Failure {
                    message,
                    path,
                    executions,
                });
            }
            // Backtrack: deepest decision with an unexplored alternative.
            let mut next = None;
            for i in (0..path.len()).rev() {
                if path[i] + 1 < alts[i] {
                    next = Some(i);
                    break;
                }
            }
            match next {
                Some(i) => {
                    path.truncate(i + 1);
                    path[i] += 1;
                }
                None => {
                    return Ok(Report {
                        executions,
                        max_depth,
                    });
                }
            }
        }
    }
}

/// One execution: replay `path`, extend it with default (lowest-id)
/// choices, and return the alternative counts plus any failure.
fn run_once<F>(
    shared: &Arc<Shared>,
    f: &Arc<F>,
    path: &mut Vec<usize>,
) -> (Vec<usize>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    // Fresh per-execution state (the path is owned by the driver).
    {
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = SchedState::default();
        st.path = path.clone();
    }
    let f2 = Arc::clone(f);
    shared.spawn_thread(move || f2());

    let mut alts: Vec<usize> = Vec::new();
    let failure;
    loop {
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.active.is_some() {
            st = shared.sched_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(msg) = st.failure.take() {
            failure = Some(msg);
            abort_execution(shared, st);
            break;
        }
        // Runnable choices: runnable threads, plus timed condvar waiters
        // (choosing one fires its modeled timeout). Sorted by thread id
        // for replay determinism.
        let mut choices: Vec<Tid> = Vec::new();
        let mut all_finished = true;
        for (tid, t) in st.threads.iter().enumerate() {
            if t.status != Status::Finished {
                all_finished = false;
            }
            match t.status {
                Status::Runnable => choices.push(tid),
                Status::WaitingOnCv { timed: true, .. } => choices.push(tid),
                _ => {}
            }
        }
        if choices.is_empty() {
            if all_finished {
                failure = None;
                drop(st);
                break;
            }
            let states: BTreeMap<Tid, String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(tid, t)| (tid, format!("{:?}", t.status)))
                .collect();
            failure = Some(format!(
                "deadlock: every live thread is blocked with no timeout to fire \
                 (lost wakeup?): {states:?}"
            ));
            abort_execution(shared, st);
            break;
        }
        // Preemption bounding: past the bound, stop branching away from a
        // still-runnable current thread.
        let bounded = match (shared.preemption_bound, st.last_run) {
            (Some(bound), Some(prev)) if st.preemptions >= bound && choices.contains(&prev) => {
                vec![prev]
            }
            _ => choices,
        };
        let step = st.step;
        if step >= shared.max_steps {
            failure = Some(format!(
                "step bound exceeded ({} decisions in one execution)",
                shared.max_steps
            ));
            abort_execution(shared, st);
            break;
        }
        let choice_idx = if step < st.path.len() {
            st.path[step]
        } else {
            st.path.push(0);
            0
        };
        if step < alts.len() {
            alts[step] = bounded.len();
        } else {
            alts.push(bounded.len());
        }
        let chosen = bounded[choice_idx.min(bounded.len() - 1)];
        if let (Some(prev), true) = (st.last_run, true) {
            if prev != chosen
                && st
                    .threads
                    .get(prev)
                    .is_some_and(|t| t.status == Status::Runnable)
            {
                st.preemptions += 1;
            }
        }
        // Firing a timed waiter's timeout: it resumes to reacquire its
        // mutex with `TimedOut` as the wake reason.
        if let Status::WaitingOnCv { timed: true, .. } = st.threads[chosen].status {
            st.threads[chosen].status = Status::Runnable;
            st.threads[chosen].wake = Some(Wake::TimedOut);
        }
        st.step += 1;
        st.last_run = Some(chosen);
        st.active = Some(chosen);
        drop(st);
        shared.thread_cv.notify_all();
    }

    // Join every real thread of this execution.
    let handles = {
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut st.handles)
    };
    for h in handles {
        let _ = h.join();
    }
    // Propagate the (possibly extended) path back to the driver.
    {
        let st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        *path = st.path.clone();
    }
    (alts, failure)
}

/// Wake every parked thread into the abort path so the execution's real
/// threads can unwind and be joined.
fn abort_execution(shared: &Arc<Shared>, mut st: std::sync::MutexGuard<'_, SchedState>) {
    st.abort = true;
    drop(st);
    shared.thread_cv.notify_all();
}
