//! Model-checking tests for the runtime's hot concurrency protocols.
//!
//! Each model is a miniature of a real `dqa-runtime` structure, built on
//! the dual-mode shims and explored exhaustively. Each comes in two
//! flavors: the *correct* protocol, which must explore to completion
//! (every interleaving passes), and a *seeded mutant* reproducing a bug
//! class the real code must avoid (dropped notify, check outside the
//! lock, non-atomic max, check-then-act across lock sections). The
//! mutants must fail demonstrably — that is the evidence the explorer
//! actually has the power to catch these bugs.

use dqa_verify::sync::atomic::{AtomicU64, Ordering};
use dqa_verify::sync::{Condvar, Mutex};
use dqa_verify::{thread, Builder};
use std::sync::Arc;

fn explorer() -> Builder {
    Builder {
        max_executions: 100_000,
        max_steps: 5_000,
        preemption_bound: None,
    }
}

// -- AdmissionGate: permit hand-off over a Condvar ------------------------

/// Miniature of `dqa_runtime::overload::AdmissionGate`: a permit counter
/// guarded by a mutex, waiters parked on a condvar until a release hands
/// a permit back.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Gate {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut g = self.permits.lock();
        while *g == 0 {
            self.cv.wait(&mut g);
        }
        *g -= 1;
    }

    fn release(&self, notify: bool) {
        let mut g = self.permits.lock();
        *g += 1;
        if notify {
            self.cv.notify_one();
        }
    }
}

#[test]
fn admission_gate_protocol_explores_to_completion() {
    let report = explorer().check(|| {
        let gate = Arc::new(Gate::new(0));
        let releaser = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.release(true))
        };
        let acquirer = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.acquire())
        };
        releaser.join().unwrap();
        acquirer.join().unwrap();
        assert_eq!(
            *gate.permits.lock(),
            0,
            "permit must be consumed exactly once"
        );
    });
    assert!(
        report.executions > 1,
        "expected multiple interleavings, got {}",
        report.executions
    );
}

#[test]
fn admission_gate_mutant_dropped_notify_is_caught_as_lost_wakeup() {
    let failure = explorer()
        .try_check(|| {
            let gate = Arc::new(Gate::new(0));
            let releaser = {
                let gate = Arc::clone(&gate);
                // Seeded bug: hand the permit back without notifying.
                thread::spawn(move || gate.release(false))
            };
            let acquirer = {
                let gate = Arc::clone(&gate);
                thread::spawn(move || gate.acquire())
            };
            releaser.join().unwrap();
            acquirer.join().unwrap();
        })
        .expect_err("dropped notify must be detected");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock/lost-wakeup report, got: {failure}"
    );
}

// -- Journal term fencing -------------------------------------------------

/// Miniature of the journal's term fence: an append is accepted only if
/// its term is >= the highest term seen, and the check and the append
/// must be one critical section so accepted terms reach the log in
/// monotone order.
struct Journal {
    state: Mutex<(u64, Vec<u64>)>,
}

impl Journal {
    fn new() -> Self {
        Journal {
            state: Mutex::new((0, Vec::new())),
        }
    }

    fn append_fenced(&self, term: u64) {
        let mut g = self.state.lock();
        if term >= g.0 {
            g.0 = term;
            g.1.push(term);
        }
    }

    /// Seeded bug: the fence check reads the term in one critical
    /// section and appends in another, so a higher term can land in
    /// between and the stale append still goes through.
    fn append_fence_outside_lock(&self, term: u64) {
        let current = self.state.lock().0;
        if term >= current {
            let mut g = self.state.lock();
            g.0 = term;
            g.1.push(term);
        }
    }

    fn assert_log_monotone(&self) {
        let g = self.state.lock();
        assert!(
            g.1.windows(2).all(|w| w[0] <= w[1]),
            "log terms regressed: {:?}",
            g.1
        );
    }
}

#[test]
fn journal_term_fencing_explores_to_completion() {
    let report = explorer().check(|| {
        let journal = Arc::new(Journal::new());
        let high = {
            let journal = Arc::clone(&journal);
            thread::spawn(move || journal.append_fenced(2))
        };
        let low = {
            let journal = Arc::clone(&journal);
            thread::spawn(move || journal.append_fenced(1))
        };
        high.join().unwrap();
        low.join().unwrap();
        journal.assert_log_monotone();
    });
    assert!(report.executions > 1);
}

#[test]
fn journal_mutant_fence_outside_lock_breaks_monotonicity() {
    let failure = explorer()
        .try_check(|| {
            let journal = Arc::new(Journal::new());
            let high = {
                let journal = Arc::clone(&journal);
                thread::spawn(move || journal.append_fence_outside_lock(2))
            };
            let low = {
                let journal = Arc::clone(&journal);
                thread::spawn(move || journal.append_fence_outside_lock(1))
            };
            high.join().unwrap();
            low.join().unwrap();
            journal.assert_log_monotone();
        })
        .expect_err("fence outside the lock must be detected");
    assert!(
        failure.message.contains("log terms regressed"),
        "expected the monotonicity assertion, got: {failure}"
    );
}

// -- LoadBoard high-watermark ---------------------------------------------

#[test]
fn board_watermark_fetch_max_explores_to_completion() {
    let report = explorer().check(|| {
        let watermark = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = [5u64, 3u64]
            .into_iter()
            .map(|sample| {
                let watermark = Arc::clone(&watermark);
                thread::spawn(move || {
                    watermark.fetch_max(sample, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(watermark.load(Ordering::SeqCst), 5);
    });
    assert!(report.executions > 1);
}

#[test]
fn board_mutant_load_then_store_loses_the_maximum() {
    let failure = explorer()
        .try_check(|| {
            let watermark = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = [5u64, 3u64]
                .into_iter()
                .map(|sample| {
                    let watermark = Arc::clone(&watermark);
                    thread::spawn(move || {
                        // Seeded bug: non-atomic read-compare-store.
                        if sample > watermark.load(Ordering::SeqCst) {
                            watermark.store(sample, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(watermark.load(Ordering::SeqCst), 5);
        })
        .expect_err("racy watermark update must be detected");
    assert!(
        failure.message.contains("assertion"),
        "expected the watermark assertion, got: {failure}"
    );
}

// -- FlightRecorder ring capacity -----------------------------------------

/// Miniature of the flight-recorder ring: pushes must evict-and-insert in
/// one critical section or concurrent pushers overshoot the capacity.
struct Ring {
    slots: Mutex<Vec<u64>>,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            slots: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn push(&self, v: u64) {
        let mut g = self.slots.lock();
        if g.len() == self.cap {
            g.remove(0);
        }
        g.push(v);
    }

    /// Seeded bug: the capacity check and the insert are separate
    /// critical sections, so two pushers can both pass the check.
    fn push_check_then_act(&self, v: u64) {
        let full = self.slots.lock().len() == self.cap;
        if full {
            self.slots.lock().remove(0);
        }
        self.slots.lock().push(v);
    }
}

#[test]
fn recorder_ring_bounded_push_explores_to_completion() {
    let report = explorer().check(|| {
        let ring = Arc::new(Ring::new(1));
        let handles: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|v| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.push(v))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let len = ring.slots.lock().len();
        assert!(len <= 1, "ring overshot its capacity: {len}");
    });
    assert!(report.executions > 1);
}

#[test]
fn recorder_mutant_check_then_act_overshoots_capacity() {
    let failure = explorer()
        .try_check(|| {
            let ring = Arc::new(Ring::new(1));
            let handles: Vec<_> = [1u64, 2u64]
                .into_iter()
                .map(|v| {
                    let ring = Arc::clone(&ring);
                    thread::spawn(move || ring.push_check_then_act(v))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let len = ring.slots.lock().len();
            assert!(len <= 1, "ring overshot its capacity: {len}");
        })
        .expect_err("check-then-act push must be detected");
    assert!(
        failure.message.contains("overshot"),
        "expected the capacity assertion, got: {failure}"
    );
}

// -- Explorer semantics ----------------------------------------------------

#[test]
fn timed_wait_explores_the_timeout_branch_instead_of_deadlocking() {
    // Nobody ever notifies: the only way out is the modeled timeout, and
    // the explorer must take it rather than reporting a deadlock.
    let report = explorer().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut g = m.lock();
                let deadline = std::time::Instant::now() + std::time::Duration::from_millis(1);
                let res = cv.wait_until(&mut g, deadline);
                assert!(
                    res.timed_out(),
                    "no notifier exists, only the timeout fires"
                );
            })
        };
        waiter.join().unwrap();
    });
    assert!(report.executions >= 1);
}

#[test]
fn counter_under_mutex_is_exact_across_interleavings() {
    let report = explorer().check(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || *counter.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.executions > 1);
}

#[test]
fn shims_pass_through_to_std_outside_a_model_run() {
    // Dual mode: without an active explorer the same types behave like
    // ordinary std primitives, so `--features loom` builds still run
    // their normal test suites.
    let pair = Arc::new((Mutex::new(0u64), Condvar::new()));
    let producer = {
        let pair = Arc::clone(&pair);
        thread::spawn(move || {
            let (m, cv) = &*pair;
            *m.lock() = 7;
            cv.notify_all();
        })
    };
    let (m, cv) = &*pair;
    let mut g = m.lock();
    while *g != 7 {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let res = cv.wait_until(&mut g, deadline);
        assert!(!res.timed_out(), "producer should beat the 5s deadline");
    }
    drop(g);
    producer.join().unwrap();
    let w = AtomicU64::new(1);
    w.fetch_max(9, Ordering::SeqCst);
    assert_eq!(w.load(Ordering::SeqCst), 9);
}
