//! Property-based tests of cross-crate invariants.

use falcon_dqa::cluster_sim::{BalancingStrategy, QaSimulation, SimConfig};
use falcon_dqa::dqa_runtime::{AdmissionGate, GateDecision};
use falcon_dqa::ir_engine::postings::{intersect, union, PostingsList};
use falcon_dqa::ir_engine::terms::index_terms;
use falcon_dqa::nlp::stem::stem;
use falcon_dqa::nlp::tokenize::tokenize;
use falcon_dqa::qa_types::{Answer, DocId, NodeId, OverloadPolicy, ParagraphId, RankedAnswers};
use falcon_dqa::scheduler::partition::{
    partition_counts, partition_isend, partition_recv, partition_send,
};
use falcon_dqa::scheduler::recovery::ChunkQueue;
use proptest::prelude::*;

proptest! {
    // ---- postings ----------------------------------------------------

    #[test]
    fn postings_round_trip(mut ids in proptest::collection::vec(0u32..1_000_000, 0..300)) {
        ids.sort_unstable();
        ids.dedup();
        let docs: Vec<DocId> = ids.iter().copied().map(DocId::new).collect();
        let p = PostingsList::from_sorted(&docs);
        prop_assert_eq!(p.to_vec(), docs);
    }

    #[test]
    fn intersect_union_against_sets(
        mut a in proptest::collection::vec(0u32..500, 0..100),
        mut b in proptest::collection::vec(0u32..500, 0..100),
    ) {
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        let pa = PostingsList::from_sorted(&a.iter().copied().map(DocId::new).collect::<Vec<_>>());
        let pb = PostingsList::from_sorted(&b.iter().copied().map(DocId::new).collect::<Vec<_>>());
        use std::collections::BTreeSet;
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let want_and: Vec<u32> = sa.intersection(&sb).copied().collect();
        let want_or: Vec<u32> = sa.union(&sb).copied().collect();
        let got_and: Vec<u32> = intersect(pa.iter(), pb.iter()).iter().map(|d| d.raw()).collect();
        let got_or: Vec<u32> = union(pa.iter(), pb.iter()).iter().map(|d| d.raw()).collect();
        prop_assert_eq!(got_and, want_and);
        prop_assert_eq!(got_or, want_or);
    }

    // ---- text normalization -------------------------------------------

    #[test]
    fn stem_is_idempotent_on_ascii_words(word in "[a-z]{1,12}") {
        let once = stem(&word);
        prop_assert_eq!(stem(&once), once);
    }

    #[test]
    fn tokenize_offsets_are_valid_slices(text in ".{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(t.start < t.end);
            prop_assert!(t.end <= text.len());
            prop_assert!(text.is_char_boundary(t.start));
            prop_assert!(text.is_char_boundary(t.end));
            prop_assert!(!t.text.is_empty());
        }
    }

    #[test]
    fn index_terms_never_contain_stopwords(text in "[a-zA-Z ]{0,120}") {
        for term in index_terms(&text) {
            prop_assert!(!falcon_dqa::nlp::stopwords::is_stopword(&term), "term {term}");
        }
    }

    // ---- partitioning --------------------------------------------------

    #[test]
    fn partition_counts_always_sum(total in 0usize..5000, weights in proptest::collection::vec(0.0f64..10.0, 1..12)) {
        let counts = partition_counts(total, &weights);
        prop_assert_eq!(counts.len(), weights.len());
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
    }

    #[test]
    fn send_isend_recv_conserve_items(
        n in 0usize..2000,
        weights in proptest::collection::vec(0.01f64..1.0, 1..10),
        chunk in 1usize..200,
    ) {
        let items: Vec<usize> = (0..n).collect();
        for parts in [
            partition_send(items.clone(), &weights),
            partition_isend(items.clone(), &weights),
            partition_recv(items.clone(), chunk),
        ] {
            let mut all: Vec<usize> = parts.concat();
            all.sort_unstable();
            prop_assert_eq!(&all, &items);
        }
    }

    #[test]
    fn send_partitions_are_contiguous(n in 1usize..1000, weights in proptest::collection::vec(0.01f64..1.0, 1..8)) {
        let items: Vec<usize> = (0..n).collect();
        let parts = partition_send(items, &weights);
        let mut expect = 0usize;
        for p in parts {
            for v in p {
                prop_assert_eq!(v, expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn recv_chunks_bounded_by_size(n in 0usize..2000, chunk in 1usize..100) {
        let items: Vec<usize> = (0..n).collect();
        for c in partition_recv(items, chunk) {
            // The last chunk may absorb a small remainder.
            prop_assert!(c.len() <= chunk + chunk / 2, "chunk of {} for size {}", c.len(), chunk);
            prop_assert!(!c.is_empty());
        }
    }

    // ---- chunk queue work conservation ---------------------------------

    #[test]
    fn chunk_queue_conserves_work_under_failures(
        n in 0usize..300,
        chunk in 1usize..40,
        fail_mask in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let items: Vec<usize> = (0..n).collect();
        let mut queue = ChunkQueue::new(partition_recv(items, chunk));
        let workers: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let mut processed: Vec<usize> = Vec::new();
        let mut failed = [false; 4];
        let mut round = 0usize;
        while !queue.drained() {
            round += 1;
            prop_assert!(round < 10_000, "queue did not drain");
            let mut progressed = false;
            for (i, &w) in workers.iter().enumerate() {
                if failed[i] {
                    continue;
                }
                if let Some(c) = queue.pull(w) {
                    // Fail each worker at most once, mid-holding.
                    if fail_mask[i] && !failed[i] && round.is_multiple_of(3) && i != 0 {
                        failed[i] = true;
                        queue.fail(w);
                    } else {
                        processed.extend(c);
                        queue.complete_one(w);
                    }
                    progressed = true;
                }
            }
            prop_assert!(progressed || queue.drained(), "live-lock");
        }
        processed.sort_unstable();
        processed.dedup();
        prop_assert_eq!(processed.len(), n, "lost or duplicated items");
    }

    // ---- answer merging -------------------------------------------------

    #[test]
    fn merge_is_permutation_invariant(
        scores in proptest::collection::vec(0.0f64..100.0, 0..40),
        keep in 1usize..10,
        split in 1usize..5,
    ) {
        let answers: Vec<Answer> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Answer {
                paragraph: ParagraphId::new(DocId::new(i as u32), 0),
                candidate: format!("c{i}"),
                text: String::new(),
                score: s,
            })
            .collect();
        // Global ranking.
        let global = RankedAnswers::from_unsorted(answers.clone(), keep);
        // Partitioned: split into `split` parts, rank locally, merge.
        let parts: Vec<RankedAnswers> = answers
            .chunks(answers.len().max(1).div_ceil(split))
            .map(|c| RankedAnswers::from_unsorted(c.to_vec(), keep))
            .collect();
        let merged = RankedAnswers::merge(parts, keep);
        prop_assert_eq!(global, merged, "partitioned merge changed the ranking");
    }
}

// Overload invariants run real threads (gate) or a full DES (simulator),
// so they get a reduced case count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- admission gate --------------------------------------------------

    #[test]
    fn admission_gate_bounds_queue_and_conserves_arrivals(
        cap in 1usize..4,
        queue in 0usize..4,
        jobs in 1usize..16,
        hold_us in 0u64..300,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        let policy = OverloadPolicy::server(cap).with_queue(queue);
        let gate = AdmissionGate::new(&policy);
        let admitted = AtomicUsize::new(0);
        let rejected = AtomicUsize::new(0);
        let peak_in_flight = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| {
                    // A generous backstop deadline: with sub-millisecond
                    // holds no waiter should ever hit it.
                    match gate.admit(Some(Instant::now() + Duration::from_secs(10))) {
                        GateDecision::Admitted => {
                            peak_in_flight.fetch_max(gate.in_flight(), Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(hold_us));
                            admitted.fetch_add(1, Ordering::Relaxed);
                            gate.release();
                        }
                        GateDecision::Rejected => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        GateDecision::ShuttingDown => {}
                    }
                });
            }
        });
        // Nothing is silently dropped: every arrival was admitted or
        // rejected (the gate never drains here), ...
        prop_assert_eq!(
            admitted.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
            jobs,
            "an offered arrival vanished"
        );
        // ... the waiting room never exceeded its configured depth, ...
        prop_assert!(gate.peak_waiting() <= queue, "queue depth exceeded");
        // ... the in-flight cap held, and the gate returned to empty.
        prop_assert!(peak_in_flight.load(Ordering::Relaxed) <= cap, "in-flight cap exceeded");
        prop_assert_eq!(gate.in_flight(), 0);
        prop_assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn draining_gate_never_strands_a_waiter(
        cap in 1usize..3,
        extra in 1usize..6,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        let gate = AdmissionGate::new(&OverloadPolicy::server(cap));
        for _ in 0..cap {
            prop_assert_eq!(gate.admit(None), GateDecision::Admitted);
        }
        let shutdown = AtomicUsize::new(0);
        let rejected = AtomicUsize::new(0);
        // `server(cap)` queues up to `cap` more; the rest reject at once.
        let expect_waiting = extra.min(cap);
        std::thread::scope(|s| {
            for _ in 0..extra {
                s.spawn(|| {
                    match gate.admit(Some(Instant::now() + Duration::from_secs(10))) {
                        GateDecision::ShuttingDown => {
                            shutdown.fetch_add(1, Ordering::Relaxed);
                        }
                        GateDecision::Rejected => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        GateDecision::Admitted => gate.release(),
                    }
                });
            }
            while gate.waiting() < expect_waiting {
                std::thread::yield_now();
            }
            gate.drain();
        });
        // Every queued waiter was woken with a deterministic verdict
        // instead of being stranded behind the held slots.
        prop_assert_eq!(
            shutdown.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
            extra,
            "a waiter was stranded by drain"
        );
        prop_assert_eq!(gate.waiting(), 0);
        prop_assert_eq!(gate.admit(None), GateDecision::ShuttingDown);
    }

    // ---- simulator admission mirror -------------------------------------

    #[test]
    fn sim_admission_conserves_every_offered_question(
        cap in 0usize..5,
        queue in 0usize..5,
        questions in 1usize..10,
        nodes in 2usize..5,
        seed in 0u64..500,
        deadline in proptest::option::of(5.0f64..400.0),
    ) {
        let mut overload = OverloadPolicy::server(cap).with_queue(queue);
        if let Some(d) = deadline {
            overload = overload.with_deadline(d);
        }
        let cfg = SimConfig {
            questions,
            arrival_spacing: (0.0, 1.0),
            overload,
            ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, seed)
        };
        let report = QaSimulation::new(cfg).run();
        let counts = report.outcome_counts();
        prop_assert_eq!(report.questions.len(), questions, "a question record is missing");
        prop_assert_eq!(counts.offered(), questions, "an offered question vanished");
        if cap == 0 {
            prop_assert_eq!(counts.rejected, questions, "zero capacity must reject everything");
        }
    }
}
