//! Coordinator crash/failover integration tests.
//!
//! The scenario the journal + failover layer exists for: a journaled
//! coordinator dies mid-question, a successor replays the journal,
//! promotes past the dead incarnation's term and *resumes* — not
//! restarts — the in-flight work. The acceptance bar is exact: zero
//! questions lost, resumed answers byte-identical to a crash-free run
//! of the same seed, and every post-term grant from the zombie provably
//! fenced (visible in `dqa_fenced_grants_total`).

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_obs::MetricsRegistry;
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig, CoordinatorJournal};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::journal::{read_segment, JournalRecord};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dqa-coordinator-failover-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cluster(
    seed: u64,
    nodes: usize,
    journal: Option<CoordinatorJournal>,
    metrics: Option<MetricsRegistry>,
) -> (Corpus, Cluster) {
    let corpus = Corpus::generate(CorpusConfig::small(seed)).unwrap();
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
    let cl = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
            journal,
            metrics,
            ..ClusterConfig::default()
        },
    );
    (corpus, cl)
}

#[test]
fn coordinator_crash_resumes_in_flight_question_byte_identically() {
    const SEED: u64 = 701;

    // Phase A — crash-free baseline: the answers every later incarnation
    // must reproduce byte for byte.
    let (corpus, base) = cluster(SEED, 3, None, None);
    let questions = QuestionGenerator::new(&corpus, 9).generate(4);
    let mut baseline = Vec::new();
    for gq in &questions {
        let out = base.ask(&gq.question).unwrap();
        assert!(out.coverage.is_complete());
        baseline.push(serde_json::to_vec(&out.answers).unwrap());
    }
    base.shutdown();

    // Phase B — the journaled first incarnation answers the same stream.
    let dir = tmp("run");
    let (leader, recovery) = CoordinatorJournal::open(&dir).unwrap();
    assert!(recovery.state.is_empty(), "fresh journal has no state");
    let (_, cl) = cluster(SEED, 3, Some(leader.clone()), None);
    for (gq, want) in questions.iter().zip(&baseline) {
        let out = cl.ask(&gq.question).unwrap();
        assert_eq!(
            &serde_json::to_vec(&out.answers).unwrap(),
            want,
            "journaling must not perturb answers"
        );
    }
    cl.shutdown();
    assert!(leader.appended() > 0, "the run must have journaled records");
    drop(leader);

    // Simulate the crash: copy the journal, cutting it immediately before
    // Q4's final-answer record. That is exactly the on-disk image of a
    // coordinator that died after granting and collecting Q4's chunks but
    // before durably answering it.
    let crash = tmp("crash");
    fs::create_dir_all(&crash).unwrap();
    let q4 = questions[3].question.id;
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let mut cut = None;
    for (i, seg) in segments.iter().enumerate() {
        for (offset, framed) in read_segment(seg).unwrap() {
            if matches!(
                &framed.record,
                JournalRecord::Answered { question, .. } if *question == q4
            ) {
                cut = Some((i, offset));
            }
        }
    }
    let (cut_seg, cut_off) = cut.expect("Q4's answer must be journaled");
    for (i, seg) in segments.iter().enumerate() {
        if i > cut_seg {
            continue; // written after the crash point: never existed
        }
        let bytes = fs::read(seg).unwrap();
        let keep = if i == cut_seg {
            &bytes[..cut_off as usize]
        } else {
            &bytes[..]
        };
        fs::write(crash.join(seg.file_name().unwrap()), keep).unwrap();
    }

    // Phase C — a successor opens the crashed journal, replays it, fences
    // the dead incarnation out and resumes the in-flight question.
    let (successor, recovery) = CoordinatorJournal::open(&crash).unwrap();
    assert_eq!(
        recovery.state.gate_occupancy(),
        1,
        "exactly Q4 occupies an admission slot"
    );
    for (gq, want) in questions[..3].iter().zip(&baseline) {
        let rec = recovery.state.get(gq.question.id).expect("journaled");
        let (payload, complete) = rec.answer().expect("answered before the crash");
        assert!(complete);
        assert_eq!(payload, &want[..], "pre-crash answer bytes changed");
    }
    // A handle frozen at the dead incarnation's term, minted *before* the
    // successor promotes: the zombie ex-leader.
    let zombie = successor.standby();
    assert_eq!(successor.promote().unwrap(), 2);

    let registry = MetricsRegistry::new();
    let (_, cl2) = cluster(SEED, 3, Some(successor.clone()), Some(registry.clone()));
    let resumed = cl2.resume(&recovery);
    assert_eq!(resumed.len(), 1, "only Q4 needs resuming");
    let (q, res) = &resumed[0];
    assert_eq!(q.id, q4);
    let out = res.as_ref().expect("resumed question answers");
    assert!(out.coverage.is_complete(), "no chunk may be lost");
    assert_eq!(
        serde_json::to_vec(&out.answers).unwrap(),
        baseline[3],
        "resumed answer must be byte-identical to the crash-free run"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.counter("dqa_resumed_questions_total"), 1);
    assert!(snap.counter("dqa_replayed_records_total") > 0);
    assert!(snap.counter("dqa_journal_records_total") > 0);
    assert_eq!(snap.histograms["dqa_recovery_seconds"].count, 1);
    assert_eq!(snap.gauges["dqa_leader_term"], 2.0);
    cl2.shutdown();

    // Phase D — the zombie keeps serving: its answers still flow (journal
    // failures never fail the question path) but every grant it tries to
    // journal is rejected by the term fence, visibly.
    let zombie_registry = MetricsRegistry::new();
    let (_, cl3) = cluster(SEED, 3, Some(zombie), Some(zombie_registry.clone()));
    let out = cl3.ask(&questions[0].question).unwrap();
    assert_eq!(
        serde_json::to_vec(&out.answers).unwrap(),
        baseline[0],
        "fencing must not corrupt the zombie's in-memory answers"
    );
    let zsnap = zombie_registry.snapshot();
    assert!(
        zsnap.counter("dqa_fenced_grants_total") > 0,
        "every post-term grant must be fenced"
    );
    assert_eq!(
        zsnap.counter("dqa_journal_records_total"),
        0,
        "a fenced incarnation appends nothing"
    );
    cl3.shutdown();

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

#[test]
fn resume_reuses_journaled_chunks_instead_of_rerunning_them() {
    const SEED: u64 = 702;
    let dir = tmp("reuse");
    let (leader, _) = CoordinatorJournal::open(&dir).unwrap();
    let (corpus, cl) = cluster(SEED, 2, Some(leader.clone()), None);
    let questions = QuestionGenerator::new(&corpus, 11).generate(1);
    let want = serde_json::to_vec(&cl.ask(&questions[0].question).unwrap().answers).unwrap();
    cl.shutdown();
    drop(leader);

    // Cut immediately before the final-answer record: every chunk payload
    // of both phases survives in the journal.
    let crash = tmp("reuse-crash");
    fs::create_dir_all(&crash).unwrap();
    let q1 = questions[0].question.id;
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let mut cut = None;
    for (i, seg) in segments.iter().enumerate() {
        for (offset, framed) in read_segment(seg).unwrap() {
            if matches!(
                &framed.record,
                JournalRecord::Answered { question, .. } if *question == q1
            ) {
                cut = Some((i, offset));
            }
        }
    }
    let (cut_seg, cut_off) = cut.expect("Q1 answered");
    for (i, seg) in segments.iter().enumerate() {
        if i > cut_seg {
            continue;
        }
        let bytes = fs::read(seg).unwrap();
        let keep = if i == cut_seg {
            &bytes[..cut_off as usize]
        } else {
            &bytes[..]
        };
        fs::write(crash.join(seg.file_name().unwrap()), keep).unwrap();
    }

    let (successor, recovery) = CoordinatorJournal::open(&crash).unwrap();
    successor.promote().unwrap();
    let registry = MetricsRegistry::new();
    let (_, cl2) = cluster(SEED, 2, Some(successor), Some(registry.clone()));
    let resumed = cl2.resume(&recovery);
    assert_eq!(resumed.len(), 1);
    assert_eq!(
        serde_json::to_vec(&resumed[0].1.as_ref().unwrap().answers).unwrap(),
        want,
        "resumed answer diverged"
    );
    // Exactly-once chunk semantics, observable in the record count: with
    // every chunk payload replayed from the journal, the resume appends
    // only the idempotent re-admission (Admitted + three scheduling
    // points) and the final answer — no chunk is granted or re-run.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("dqa_journal_records_total"),
        5,
        "a fully-journaled question must not re-execute any chunk"
    );
    assert_eq!(snap.counter("dqa_resumed_questions_total"), 1);
    cl2.shutdown();
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}
