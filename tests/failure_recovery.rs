//! Failure-injection integration tests of the distributed runtime.

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig, TraceKind};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_types::NodeId;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;

fn cluster(seed: u64, nodes: usize) -> (Corpus, Cluster) {
    let corpus = Corpus::generate(CorpusConfig::small(seed)).unwrap();
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
    let cl = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
            ..ClusterConfig::default()
        },
    );
    (corpus, cl)
}

#[test]
fn answers_remain_correct_after_killing_half_the_cluster() {
    let (corpus, cl) = cluster(601, 4);
    let questions = QuestionGenerator::new(&corpus, 1).generate(8);

    // Baseline answers with all nodes alive.
    let mut baseline = Vec::new();
    for gq in &questions[..4] {
        baseline.push(cl.ask(&gq.question).unwrap().answers);
    }

    cl.kill_node(NodeId::new(1));
    cl.kill_node(NodeId::new(3));

    // The same questions after losing half the nodes: identical answers.
    for (gq, base) in questions[..4].iter().zip(&baseline) {
        let out = cl.ask(&gq.question).unwrap();
        assert_eq!(&out.answers, base, "answers changed after failures");
    }
    // And fresh questions still work.
    for gq in &questions[4..] {
        let out = cl.ask(&gq.question).unwrap();
        assert!(
            out.pr_nodes.iter().all(|n| n.raw() % 2 == 0),
            "dead node used"
        );
    }
    cl.shutdown();
}

#[test]
fn dns_pointing_at_dead_node_falls_back() {
    let (corpus, cl) = cluster(602, 3);
    let questions = QuestionGenerator::new(&corpus, 2).generate(2);
    cl.kill_node(NodeId::new(1));
    // Explicitly aim DNS at the dead node.
    let out = cl.ask_on(NodeId::new(1), &questions[0].question).unwrap();
    assert_ne!(out.home, NodeId::new(1));
    cl.shutdown();
}

#[test]
fn node_rejoins_after_revival() {
    let (corpus, cl) = cluster(603, 3);
    let questions = QuestionGenerator::new(&corpus, 3).generate(3);
    cl.kill_node(NodeId::new(2));
    let _ = cl.ask(&questions[0].question).unwrap();
    // Node 2's worker thread has exited; merely flipping the flag must not
    // resurrect it from the dispatchers' perspective unless it heartbeats.
    cl.board().set_alive(NodeId::new(2), true);
    std::thread::sleep(std::time::Duration::from_millis(300));
    let alive = cl.board().is_alive(NodeId::new(2));
    assert!(
        !alive,
        "stale heartbeat must keep a dead worker out of the pool"
    );
    let out = cl.ask(&questions[1].question).unwrap();
    assert!(!out.pr_nodes.contains(&NodeId::new(2)));
    cl.shutdown();
}

#[test]
fn recv_recovery_survives_cascading_failures() {
    // Nodes die one after another across the question stream — each
    // recovery round may itself be interrupted by the next failure. Every
    // answer must stay correct and no ask may error while one node lives.
    let (corpus, cl) = cluster(605, 4);
    let questions = QuestionGenerator::new(&corpus, 5).generate(3);
    let mut baseline = Vec::new();
    for gq in &questions {
        baseline.push(cl.ask(&gq.question).unwrap().answers);
    }
    for (round, dead) in [1u32, 3, 2].into_iter().enumerate() {
        cl.kill_node(NodeId::new(dead));
        for (gq, base) in questions.iter().zip(&baseline) {
            let out = cl.ask(&gq.question).unwrap();
            assert_eq!(
                &out.answers, base,
                "answers changed after cascading failure #{round}"
            );
            assert!(out.coverage.is_complete(), "survivors must finish the work");
        }
    }
    cl.shutdown();
}

#[test]
fn node_crash_and_rejoin_mid_question_stream() {
    // A transient crash (threads survive, node goes silent): questions in
    // flight while it is down are recovered onto the survivors; after the
    // resume the node heartbeats again and rejoins the pool with clean
    // counters.
    let (corpus, cl) = cluster(606, 3);
    let questions = QuestionGenerator::new(&corpus, 6).generate(6);
    let victim = NodeId::new(1);

    cl.suspend_node(victim);
    for gq in &questions[..3] {
        // The node looks alive until its heartbeat goes stale, so early
        // asks may dispatch to it and exercise mid-question recovery.
        let out = cl.ask(&gq.question).unwrap();
        assert!(out.coverage.is_complete());
    }
    assert!(
        !cl.board().is_alive(victim) || cl.board().is_suspended(victim),
        "suspended node still counted live after the stream drained"
    );

    cl.resume_node(victim);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !cl.board().is_alive(victim) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(cl.board().is_alive(victim), "resumed node never rejoined");
    let loads = cl.board().load_of(victim);
    assert_eq!(loads.cpu, 0.0, "rejoined node must restart from clean load");
    for gq in &questions[3..] {
        let out = cl.ask(&gq.question).unwrap();
        assert!(out.coverage.is_complete());
    }
    cl.shutdown();
}

#[test]
fn failure_during_recovery_round_still_completes() {
    // The first failure is visible before the stream starts; the second
    // lands while coordinators are busy recovering from the first.
    let (corpus, cl) = cluster(607, 4);
    let questions = QuestionGenerator::new(&corpus, 7).generate(10);
    cl.kill_node(NodeId::new(3));
    let board = std::sync::Arc::clone(cl.board());
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        board.set_alive(NodeId::new(2), false);
    });
    for gq in &questions {
        let out = cl.ask(&gq.question).unwrap();
        assert!(
            out.coverage.is_complete(),
            "two live nodes must still finish everything"
        );
    }
    killer.join().unwrap();
    for n in [0u32, 1] {
        assert!(cl.board().is_alive(NodeId::new(n)), "survivor died");
    }
    cl.shutdown();
}

#[test]
fn recovery_trace_is_emitted_when_worker_dies_mid_question() {
    let (corpus, cl) = cluster(604, 4);
    let questions = QuestionGenerator::new(&corpus, 4).generate(20);
    // Interleave kills with questions so some die mid-stream.
    cl.kill_node(NodeId::new(3));
    let mut ok = 0;
    for gq in &questions {
        if cl.ask(&gq.question).is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, questions.len(), "all questions must still complete");
    // If node 3 ever held work, a WorkerFailed trace must exist; either
    // way no answer went missing (asserted above).
    let _failures = cl
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::WorkerFailed))
        .count();
    cl.shutdown();
}
