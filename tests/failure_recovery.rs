//! Failure-injection integration tests of the distributed runtime.

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig, TraceKind};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_types::NodeId;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;

fn cluster(seed: u64, nodes: usize) -> (Corpus, Cluster) {
    let corpus = Corpus::generate(CorpusConfig::small(seed)).unwrap();
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
    let cl = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
            ..ClusterConfig::default()
        },
    );
    (corpus, cl)
}

#[test]
fn answers_remain_correct_after_killing_half_the_cluster() {
    let (corpus, cl) = cluster(601, 4);
    let questions = QuestionGenerator::new(&corpus, 1).generate(8);

    // Baseline answers with all nodes alive.
    let mut baseline = Vec::new();
    for gq in &questions[..4] {
        baseline.push(cl.ask(&gq.question).unwrap().answers);
    }

    cl.kill_node(NodeId::new(1));
    cl.kill_node(NodeId::new(3));

    // The same questions after losing half the nodes: identical answers.
    for (gq, base) in questions[..4].iter().zip(&baseline) {
        let out = cl.ask(&gq.question).unwrap();
        assert_eq!(&out.answers, base, "answers changed after failures");
    }
    // And fresh questions still work.
    for gq in &questions[4..] {
        let out = cl.ask(&gq.question).unwrap();
        assert!(
            out.pr_nodes.iter().all(|n| n.raw() % 2 == 0),
            "dead node used"
        );
    }
    cl.shutdown();
}

#[test]
fn dns_pointing_at_dead_node_falls_back() {
    let (corpus, cl) = cluster(602, 3);
    let questions = QuestionGenerator::new(&corpus, 2).generate(2);
    cl.kill_node(NodeId::new(1));
    // Explicitly aim DNS at the dead node.
    let out = cl.ask_on(NodeId::new(1), &questions[0].question).unwrap();
    assert_ne!(out.home, NodeId::new(1));
    cl.shutdown();
}

#[test]
fn node_rejoins_after_revival() {
    let (corpus, cl) = cluster(603, 3);
    let questions = QuestionGenerator::new(&corpus, 3).generate(3);
    cl.kill_node(NodeId::new(2));
    let _ = cl.ask(&questions[0].question).unwrap();
    // Node 2's worker thread has exited; merely flipping the flag must not
    // resurrect it from the dispatchers' perspective unless it heartbeats.
    cl.board().set_alive(NodeId::new(2), true);
    std::thread::sleep(std::time::Duration::from_millis(300));
    let alive = cl.board().is_alive(NodeId::new(2));
    assert!(
        !alive,
        "stale heartbeat must keep a dead worker out of the pool"
    );
    let out = cl.ask(&questions[1].question).unwrap();
    assert!(!out.pr_nodes.contains(&NodeId::new(2)));
    cl.shutdown();
}

#[test]
fn recovery_trace_is_emitted_when_worker_dies_mid_question() {
    let (corpus, cl) = cluster(604, 4);
    let questions = QuestionGenerator::new(&corpus, 4).generate(20);
    // Interleave kills with questions so some die mid-stream.
    cl.kill_node(NodeId::new(3));
    let mut ok = 0;
    for gq in &questions {
        if cl.ask(&gq.question).is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, questions.len(), "all questions must still complete");
    // If node 3 ever held work, a WorkerFailed trace must exist; either
    // way no answer went missing (asserted above).
    let _failures = cl
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::WorkerFailed))
        .count();
    cl.shutdown();
}
