//! Seeded chaos soak: the unified fault framework's end-to-end
//! invariants, asserted at integration level across both backends.
//!
//! 1. **No question is ever lost.** Under every fault type the runtime
//!    returns `Ok` for every ask (possibly degraded, never hung or
//!    errored) and the simulator completes every submitted question.
//! 2. **Complete answers are byte-identical to the fault-free run.**
//!    Faults may slow a question or degrade its coverage, but a
//!    full-coverage answer must carry exactly the clean run's bytes.
//! 3. **The DES replays seed-stably under every fault type.** Two runs
//!    of the same seeded `FaultSchedule` produce bit-equal reports.
//! 4. **Membership churn is invisible to callers.** A decommission
//!    racing in-flight questions, or a join landing mid flash crowd,
//!    re-homes sub-collections without losing, rejecting or degrading
//!    a single answer.

use falcon_dqa::cluster_sim::workload::{BalancingStrategy, QaSimulation, SimConfig};
use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig};
use falcon_dqa::faults::{FaultSchedule, RetryPolicy};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_types::{NodeId, OverloadCounts, OverloadPolicy};
use falcon_dqa::rebalance::ElasticConfig;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;
use std::time::Duration;

fn retriever(corpus: &Corpus) -> ParagraphRetriever {
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    ParagraphRetriever::new(index, store, RetrievalConfig::default())
}

fn chaos_config(faults: FaultSchedule) -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
        faults,
        // Schedules are authored in simulator seconds; run them at
        // millisecond scale so a crash at t=20 lands 20 ms in.
        fault_time_scale: 0.001,
        deadline: Some(Duration::from_secs(20)),
        retry: RetryPolicy::default().with_budget(64),
        speculate_after: Some(5),
        ..ClusterConfig::default()
    }
}

fn answer_bytes(answers: &falcon_dqa::qa_types::RankedAnswers) -> String {
    serde_json::to_string(answers).expect("answers serialize")
}

#[test]
fn runtime_soak_loses_no_question_and_degrades_byte_identically() {
    let corpus = Corpus::generate(CorpusConfig::small(808)).unwrap();
    let questions = QuestionGenerator::new(&corpus, 9).generate(10);

    // Fault-free baseline, asked on fixed homes so the chaotic run can
    // replay the same placement.
    let clean = Cluster::start(
        retriever(&corpus),
        NamedEntityRecognizer::standard(),
        chaos_config(FaultSchedule::none()),
    );
    let mut baseline = Vec::new();
    for (i, gq) in questions.iter().enumerate() {
        let home = NodeId::new((i % 4) as u32);
        let out = clean.ask_on(home, &gq.question).expect("clean ask");
        assert!(out.coverage.is_complete(), "clean run must not degrade");
        baseline.push(answer_bytes(&out.answers));
    }
    clean.shutdown();

    // The same questions under every fault type at once: a transient
    // crash, a permanent crash, a straggler window, lossy/delaying/
    // duplicating links and monitor packet loss.
    let schedule = FaultSchedule::seeded(808)
        .crash_rejoin(NodeId::new(1), 30.0, 120.0)
        .crash(NodeId::new(3), 400.0)
        .straggler(NodeId::new(2), 60.0, 200.0, 0.25)
        // Coordinator faults ride along in the same schedule: the
        // board-level chaos driver must tolerate them (they are realized
        // by the journal/failover harness, see tests/coordinator_failover)
        // without perturbing worker-level fault injection.
        .coordinator_crash_rejoin(50.0, 90.0)
        .leader_partition(250.0, 300.0)
        .message_loss(0.08)
        .message_delay(0.10, 0.004)
        .message_dup(0.05)
        .monitor_loss(0.30);
    let chaotic = Cluster::start(
        retriever(&corpus),
        NamedEntityRecognizer::standard(),
        chaos_config(schedule),
    );
    let mut complete = 0usize;
    for (i, gq) in questions.iter().enumerate() {
        let home = NodeId::new((i % 4) as u32);
        // Invariant 1: never lost — every ask returns, and returns Ok.
        let out = chaotic
            .ask_on(home, &gq.question)
            .expect("chaotic ask must degrade, not fail");
        assert!(out.coverage.total > 0, "coverage must be populated");
        // Invariant 2: full coverage ⇒ byte-identical answers.
        if out.coverage.is_complete() {
            complete += 1;
            assert_eq!(
                answer_bytes(&out.answers),
                baseline[i],
                "non-degraded answer diverged from the fault-free run"
            );
        }
    }
    assert!(
        complete > 0,
        "soak produced no full-coverage answer at all; faults too hot for the assertion to bite"
    );
    chaotic.shutdown();
}

#[test]
fn overloaded_chaotic_cluster_conserves_outcomes() {
    let corpus = Corpus::generate(CorpusConfig::small(606)).unwrap();
    let questions: Vec<_> = QuestionGenerator::new(&corpus, 7)
        .generate(12)
        .into_iter()
        .map(|g| g.question)
        .collect();
    // Chaos × overload: a straggler window covering the whole run while a
    // 12-question burst hits a cap-3 + queue-3 front-end — 2× the load
    // the admission layer can hold at once.
    let schedule = FaultSchedule::seeded(606).straggler(NodeId::new(2), 0.0, 600.0, 0.25);
    let cluster = Cluster::start(
        retriever(&corpus),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            overload: OverloadPolicy::server(3).with_deadline(15.0),
            ..chaos_config(schedule)
        },
    );
    let results = cluster.ask_many(&questions);
    let mut counts = OverloadCounts::default();
    for admission in &results {
        match admission.outcome() {
            Some(o) => counts.record(o),
            None => panic!("question failed outright under overload+chaos: {admission:?}"),
        }
    }
    // Invariant 1 under pressure: every offered question terminates in
    // exactly one of Answered/Degraded/Rejected — none silently dropped.
    assert_eq!(
        counts.offered(),
        questions.len(),
        "outcome conservation broken under chaos and 2x load"
    );
    assert!(
        counts.answered + counts.degraded >= 1,
        "the burst saturated admission completely; nothing ran"
    );
    assert!(
        cluster.admission().peak_waiting() <= 3,
        "admission queue exceeded its configured depth"
    );
    assert_eq!(cluster.admission().in_flight(), 0, "slots leaked");
    cluster.shutdown();
}

#[test]
fn des_replays_seed_stably_under_every_fault_type() {
    let low =
        |seed| SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 6, seed);
    let schedules: Vec<(&str, SimConfig)> = vec![
        ("crash", {
            let mut cfg = low(900);
            cfg.faults = FaultSchedule::seeded(900).crash(NodeId::new(1), 30.0);
            cfg
        }),
        ("crash+rejoin", {
            let mut cfg = low(901);
            cfg.faults = FaultSchedule::seeded(901).crash_rejoin(NodeId::new(2), 20.0, 150.0);
            cfg
        }),
        ("straggler", {
            let mut cfg = low(902);
            cfg.faults = FaultSchedule::seeded(902).straggler(NodeId::new(0), 0.0, 300.0, 0.3);
            cfg
        }),
        ("link loss/delay/dup", {
            let mut cfg = low(903);
            cfg.faults = FaultSchedule::seeded(903)
                .message_loss(0.15)
                .message_delay(0.2, 0.4)
                .message_dup(0.1);
            cfg.faults.link.retransmit_secs = 1.0;
            cfg
        }),
        ("monitor loss", {
            let mut cfg = low(904);
            cfg.faults = FaultSchedule::seeded(904).monitor_loss(0.6);
            cfg
        }),
        ("coordinator crash", {
            let mut cfg = low(906);
            cfg.faults = FaultSchedule::seeded(906).coordinator_crash(25.0);
            cfg
        }),
        ("coordinator crash+rejoin", {
            let mut cfg = low(907);
            cfg.faults = FaultSchedule::seeded(907).coordinator_crash_rejoin(25.0, 90.0);
            cfg
        }),
        ("leader partition", {
            let mut cfg = low(908);
            cfg.faults = FaultSchedule::seeded(908).leader_partition(15.0, 350.0);
            cfg
        }),
        ("decommission", {
            let mut cfg = low(909);
            cfg.faults = FaultSchedule::seeded(909).decommission(NodeId::new(1), 20.0);
            cfg
        }),
        ("decommission+join", {
            let mut cfg = low(910);
            cfg.faults = FaultSchedule::seeded(910)
                .decommission(NodeId::new(2), 15.0)
                .node_join(NodeId::new(2), 90.0);
            cfg
        }),
        ("rebalance stall", {
            let mut cfg = low(911);
            cfg.faults = FaultSchedule::seeded(911)
                .decommission(NodeId::new(1), 10.0)
                .rebalance_stall(10.0, 70.0);
            cfg
        }),
        ("everything at once", {
            let mut cfg = low(905);
            cfg.faults = FaultSchedule::seeded(905)
                .crash_rejoin(NodeId::new(1), 40.0, 200.0)
                .straggler(NodeId::new(3), 10.0, 120.0, 0.25)
                .coordinator_crash(60.0)
                .leader_partition(400.0, 500.0)
                // Membership churn rides the same combined timeline: the
                // elastic tier must coexist with every other fault type.
                .decommission(NodeId::new(2), 80.0)
                .rebalance_stall(80.0, 110.0)
                .message_loss(0.1)
                .message_delay(0.1, 0.3)
                .message_dup(0.05)
                .monitor_loss(0.4);
            cfg.faults.link.retransmit_secs = 1.0;
            cfg
        }),
    ];
    for (label, cfg) in schedules {
        let a = QaSimulation::new(cfg.clone()).run();
        let b = QaSimulation::new(cfg).run();
        assert_eq!(a, b, "{label}: DES replay diverged");
        assert_eq!(a.questions.len(), 6, "{label}: question lost in the DES");
    }
}

#[test]
fn decommission_mid_question_migrates_live_without_losing_answers() {
    let corpus = Corpus::generate(CorpusConfig::small(909)).unwrap();
    let questions: Vec<_> = QuestionGenerator::new(&corpus, 5)
        .generate(8)
        .into_iter()
        .map(|g| g.question)
        .collect();
    let mut ecfg = ElasticConfig::default();
    // Pace migration steps fast enough for a test, slow enough that the
    // drain genuinely overlaps the in-flight burst.
    ecfg.throttle.step_secs = 0.002;
    let cluster = Cluster::start(
        retriever(&corpus),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            elastic: Some(ecfg),
            ..chaos_config(FaultSchedule::none())
        },
    );
    // Pre-drain baseline: the byte-identical yardstick for every later
    // full-coverage answer.
    let baseline: Vec<String> = questions
        .iter()
        .map(|q| answer_bytes(&cluster.ask(q).expect("clean ask").answers))
        .collect();

    // Decommission node 1 while the burst is in flight: the evacuation
    // must yield to foreground questions, not the other way round.
    let (results, moved) = std::thread::scope(|scope| {
        let burst = scope.spawn(|| cluster.ask_many(&questions));
        let moved = cluster.drain(NodeId::new(1));
        (burst.join().expect("burst thread"), moved)
    });
    assert!(moved > 0, "the drained node owned nothing to migrate");
    let mut counts = OverloadCounts::default();
    for admission in &results {
        match admission.outcome() {
            Some(o) => counts.record(o),
            None => panic!("question failed outright during the drain: {admission:?}"),
        }
    }
    assert_eq!(
        counts.offered(),
        questions.len(),
        "a question racing the decommission was lost"
    );
    assert_eq!(counts.rejected, 0, "migration must not reject foreground");

    // Post-healing: ownership excludes the victim, the invariant holds,
    // and answers are byte-identical to the pre-drain run (Coverage is
    // unchanged by re-homing).
    let (epoch, converged) = cluster.rebalance_status().expect("elastic tier active");
    assert!(converged, "ownership did not re-converge after the drain");
    assert!(epoch > 0, "migration must bump the ownership epoch");
    assert!(
        cluster.ownership().iter().all(|&(_, node)| node != 1),
        "the drained node still owns a sub-collection"
    );
    for (i, q) in questions.iter().enumerate() {
        let out = cluster.ask(q).expect("post-drain ask");
        assert!(out.coverage.is_complete(), "re-homing degraded coverage");
        assert_eq!(
            answer_bytes(&out.answers),
            baseline[i],
            "post-healing answer diverged from the fault-free run"
        );
    }
    cluster.shutdown();
}

#[test]
fn des_join_during_flash_crowd_conserves_and_replays_bit_stably() {
    // A 3-node cluster loses a node just as an open-loop arrival wave
    // starts, then gets it back mid-crowd: the join plan must land
    // while questions are still arriving, with nothing lost and the
    // whole interleaving bit-stable under replay.
    let build = || {
        let mut cfg = SimConfig::paper_high_load(3, BalancingStrategy::Dqa, 912);
        cfg.questions = 12;
        cfg.faults = FaultSchedule::seeded(912)
            .decommission(NodeId::new(2), 0.5)
            .node_join(NodeId::new(2), 6.0);
        cfg
    };
    let report = QaSimulation::new(build()).run();
    assert_eq!(
        report.questions.len(),
        12,
        "a flash-crowd question was lost to membership churn"
    );
    assert_eq!(
        report.outcome_counts().rejected,
        0,
        "churn rejected a question under a permissive policy"
    );
    assert_eq!(
        report
            .metrics
            .counter(r#"dqa_rebalance_plans_total{reason="join"}"#),
        1,
        "the mid-crowd join never minted a plan"
    );
    assert_eq!(
        report.metrics.gauges["dqa_rebalance_converged"], 1.0,
        "ownership did not re-converge after the round trip"
    );
    assert_eq!(
        report,
        QaSimulation::new(build()).run(),
        "join-during-flash-crowd replay diverged"
    );
}
