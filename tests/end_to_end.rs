//! Cross-crate integration: corpus → index → pipeline → answers, and the
//! distributed runtime's equivalence with the sequential system.

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_pipeline::{PipelineConfig, QaPipeline};
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;

fn build(seed: u64) -> (Corpus, QaPipeline, ParagraphRetriever) {
    let corpus = Corpus::generate(CorpusConfig::small(seed)).unwrap();
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
    let pipeline = QaPipeline::new(
        retriever.clone(),
        NamedEntityRecognizer::standard(),
        PipelineConfig::default(),
    );
    (corpus, pipeline, retriever)
}

#[test]
fn sequential_pipeline_accuracy_on_planted_questions() {
    let (corpus, pipeline, _) = build(501);
    let questions = QuestionGenerator::new(&corpus, 1).generate(40);
    let mut ranked = 0;
    let mut top1 = 0;
    for gq in &questions {
        let out = pipeline.answer(&gq.question).unwrap();
        if out
            .answers
            .answers
            .iter()
            .any(|a| a.candidate == gq.expected_answer)
        {
            ranked += 1;
        }
        if out.answers.best().map(|a| a.candidate.as_str()) == Some(gq.expected_answer.as_str()) {
            top1 += 1;
        }
    }
    // Falcon's TREC-9 numbers were 66.4 % top-ranked short answers and
    // 86.1 % long answers; our planted-corpus setting is easier, so demand
    // at least Falcon-class accuracy.
    assert!(ranked >= 30, "planted answer ranked for only {ranked}/40");
    assert!(top1 >= 24, "planted answer top-1 for only {top1}/40");
}

#[test]
fn distributed_and_sequential_agree_answer_for_answer() {
    let (corpus, pipeline, retriever) = build(502);
    let cluster = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            ap_partition: PartitionStrategy::Recv { chunk_size: 8 },
            ..ClusterConfig::default()
        },
    );
    let questions = QuestionGenerator::new(&corpus, 2).generate(10);
    for gq in &questions {
        let seq = pipeline.answer(&gq.question).unwrap();
        let dist = cluster.ask(&gq.question).unwrap();
        let seq_c: Vec<&str> = seq
            .answers
            .answers
            .iter()
            .map(|a| a.candidate.as_str())
            .collect();
        let dist_c: Vec<&str> = dist
            .answers
            .answers
            .iter()
            .map(|a| a.candidate.as_str())
            .collect();
        assert_eq!(
            seq_c, dist_c,
            "answer sets diverge for {:?}",
            gq.question.text
        );
    }
    cluster.shutdown();
}

#[test]
fn index_persistence_survives_full_round_trip() {
    use falcon_dqa::ir_engine::persist::{decode_index, encode_index};
    let (corpus, _, retriever) = build(503);
    let bytes = encode_index(retriever.index());
    let restored = Arc::new(decode_index(&bytes).unwrap());
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever2 = ParagraphRetriever::new(restored, store, RetrievalConfig::default());
    let pipeline2 = QaPipeline::new(
        retriever2,
        NamedEntityRecognizer::standard(),
        PipelineConfig::default(),
    );
    let questions = QuestionGenerator::new(&corpus, 3).generate(5);
    let (_, pipeline, _) = build(503);
    for gq in &questions {
        let a = pipeline.answer(&gq.question).unwrap();
        let b = pipeline2.answer(&gq.question).unwrap();
        assert_eq!(a.answers, b.answers, "restored index changed answers");
    }
}

#[test]
fn short_and_long_answer_windows_respect_trec_limits() {
    let (corpus, _, retriever) = build(504);
    let questions = QuestionGenerator::new(&corpus, 4).generate(10);
    for (cfg, limit) in [
        (PipelineConfig::short_answers(), 50),
        (PipelineConfig::long_answers(), 250),
    ] {
        let pipeline = QaPipeline::new(retriever.clone(), NamedEntityRecognizer::standard(), cfg);
        for gq in &questions {
            let out = pipeline.answer(&gq.question).unwrap();
            for a in &out.answers.answers {
                assert!(
                    a.text.len() <= limit,
                    "{}-byte window produced {} bytes",
                    limit,
                    a.text.len()
                );
            }
        }
    }
}
