//! The paper's headline claims, checked end to end across crates.
//! These are coarser (and faster) than the per-crate tests: one assertion
//! per claim the abstract/conclusions make.

use falcon_dqa::analytical::{InterQuestionModel, IntraQuestionModel};
use falcon_dqa::cluster_sim::experiments::{
    chunk_sweep, intra_experiment, load_balancing_summary, partition_comparison,
};
use falcon_dqa::qa_types::params::GBPS;
use falcon_dqa::qa_types::{SystemParams, Trec9Profile};

#[test]
fn claim_intra_question_parallelism_is_practical_to_about_90_processors() {
    // Abstract: "intra-question parallelism … is practical up to about 90
    // processors, depending on the system parameters."
    let m = IntraQuestionModel::new(
        SystemParams::trec9().with_net_bandwidth(GBPS),
        Trec9Profile::complex(),
    );
    let n = m.n_max();
    assert!((60..=130).contains(&n), "practical limit {n}");
}

#[test]
fn claim_inter_question_parallelism_scales_to_1000_processors() {
    // Conclusions: "if fast interconnection networks are available, the
    // system efficiency is good (approximately 0.9) even for 1000
    // processors."
    let m = InterQuestionModel::new(
        SystemParams::trec9().with_net_bandwidth(GBPS),
        Trec9Profile::average(),
    );
    let e = m.efficiency(1000);
    assert!(e > 0.85, "efficiency {e}");
}

#[test]
fn claim_dqa_outperforms_traditional_strategies_at_high_load() {
    // Abstract: "at high system load, the dynamic load balancing strategy
    // proposed in this paper outperforms two other traditional approaches."
    let s = load_balancing_summary(8, &[41, 42, 43]);
    assert!(
        s.throughput[2] > s.throughput[1] && s.throughput[1] > s.throughput[0],
        "throughput ordering violated: {:?}",
        s.throughput
    );
    assert!(
        s.response_time[2] < s.response_time[0],
        "latency ordering violated: {:?}",
        s.response_time
    );
}

#[test]
fn claim_task_partitioning_reduces_response_times_close_to_model() {
    // Abstract: "at low system load, the distributed Q/A system reduces
    // question response times through task partitioning, with factors close
    // to the ones indicated by the analytical model" — Table 10 shows
    // measured ≈ 75–95 % of analytical at 4–8 nodes.
    let rows = intra_experiment(&[1, 4, 8], 12, 2024);
    let t1 = rows[0].report.mean_response_time();
    let model = IntraQuestionModel::new(
        SystemParams::trec9()
            .with_net_bandwidth(100.0 * 125_000.0)
            .with_disk_bandwidth(SystemParams::trec9().ref_disk_bandwidth),
        Trec9Profile::complex(),
    );
    for row in &rows[1..] {
        let measured = t1 / row.report.mean_response_time();
        let analytical = model.speedup(row.nodes);
        let ratio = measured / analytical;
        assert!(
            (0.55..=1.1).contains(&ratio),
            "{} nodes: measured {measured:.2} vs analytical {analytical:.2}",
            row.nodes
        );
    }
}

#[test]
fn claim_recv_is_best_partitioning_and_isend_close() {
    // Conclusions + Table 11: receiver-controlled best; for AP the
    // sender-controlled ISEND "achieves comparable performance".
    let rows = partition_comparison(&[8], 10, 2024);
    let r = rows[0];
    assert!(r.recv > r.send * 1.2, "{r:?}");
    assert!(r.isend > r.send * 1.2, "{r:?}");
    let ratio = r.isend / r.recv;
    assert!((0.75..=1.25).contains(&ratio), "ISEND/RECV ratio {ratio}");
}

#[test]
fn claim_chunk_size_40_is_near_optimal() {
    // Fig. 10: "the best performance is observed for chunks of
    // approximately 40 paragraphs."
    let pts = chunk_sweep(4, &[5, 40, 160], 10, 2024);
    let by_size = |s: usize| pts.iter().find(|p| p.chunk_size == s).unwrap().ap_speedup;
    assert!(by_size(40) > by_size(5), "{pts:?}");
    assert!(by_size(40) > by_size(160), "{pts:?}");
}
