//! Federation-tier integration: the broker's end-to-end partial-failure
//! contract, asserted across both backends.
//!
//! 1. **A lost shard degrades coverage, never drops the question.** With
//!    one of two shards injected down, every ask still merges the healthy
//!    shard's answers under an honest `Coverage` annotation and a counted
//!    quorum shortfall — no error, no silent drop.
//! 2. **Saturated shard gates aggregate a retry-after.** When every shard
//!    refuses admission the broker surfaces one `Rejected` carrying the
//!    max-over-shards hint, mirroring the single-cluster `Admission`
//!    contract one tier up.
//! 3. **Backing off by the hint never starves a client.** A burst twice
//!    the federation's admission capacity, retried on the broker's own
//!    hints, completes within a bounded number of rounds — asserted
//!    against the thread runtime and its DES retry-gate mirror.
//! 4. **The federation DES replays bit-identically** under shard faults.

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::faults::FaultSchedule;
use falcon_dqa::federation::{
    run_fed_sim, run_retry_gate_sim, FedSimConfig, FederatedAdmission, FederationBroker,
    FederationConfig, ShardStatus,
};
use falcon_dqa::qa_types::{OverloadPolicy, Question, QuestionOutcome};
use std::time::Duration;

fn small_fixture(seed: u64, questions: usize) -> (Corpus, Vec<Question>) {
    let corpus = Corpus::generate(CorpusConfig::small(seed)).expect("corpus");
    let questions = QuestionGenerator::new(&corpus, seed)
        .generate(questions)
        .into_iter()
        .map(|g| g.question)
        .collect();
    (corpus, questions)
}

#[test]
fn shard_loss_degrades_coverage_but_never_drops_questions() {
    let (corpus, questions) = small_fixture(7101, 6);
    let mut cfg = FederationConfig::new(2);
    cfg.nodes_per_shard = 1;
    cfg.replicated = false;
    // Shard 0 is down from t=0, permanently: every scatter sees exactly
    // one live shard out of two.
    cfg.faults = FaultSchedule::seeded(7101).shard_down(0, 0.0);
    let broker = FederationBroker::start(&corpus.documents, corpus.config.sub_collections, cfg);

    for admission in broker.ask_many(&questions) {
        let answer = admission
            .answer()
            .expect("a lost shard must degrade the merge, not reject it");
        assert_eq!(admission.outcome(), QuestionOutcome::Degraded);
        assert_eq!(answer.shards.len(), 2, "one report per shard, always");
        assert_eq!(answer.shards[0].status, ShardStatus::Down);
        assert!(
            answer.shards[1].status.responded(),
            "healthy shard must carry the merge: {:?}",
            answer.shards
        );
        assert!(
            !answer.coverage.is_complete(),
            "coverage must record the lost shard"
        );
        assert_eq!(answer.coverage.total, 2);
        assert!(
            !answer.quorum_met,
            "majority quorum over 2 shards cannot hold with one down"
        );
    }
    broker.shutdown();
}

#[test]
fn saturated_shard_gates_aggregate_the_retry_hint() {
    let (corpus, questions) = small_fixture(7102, 1);
    let mut cfg = FederationConfig::new(2);
    cfg.nodes_per_shard = 1;
    cfg.replicated = false;
    // A zero-slot, zero-queue gate in every shard refuses each question
    // at the door with the policy's retry hint.
    cfg.overload = OverloadPolicy::server(0);
    let hint = cfg.overload.retry_after_secs;
    let broker = FederationBroker::start(&corpus.documents, corpus.config.sub_collections, cfg);

    let admission = broker.ask(&questions[0]);
    assert_eq!(admission.outcome(), QuestionOutcome::Rejected);
    match admission {
        FederatedAdmission::Rejected { retry_after } => {
            // Both shards reject with the same configured hint; the
            // aggregate (max over shards) must preserve it exactly.
            assert_eq!(retry_after, Duration::from_secs_f64(hint));
        }
        FederatedAdmission::Answered(a) => {
            panic!("zero-capacity gates must aggregate a rejection, got {a:?}")
        }
    }
    broker.shutdown();
}

#[test]
fn clients_backing_off_by_the_hint_are_never_starved() {
    let (corpus, questions) = small_fixture(7103, 8);
    let mut cfg = FederationConfig::new(1);
    cfg.nodes_per_shard = 1;
    cfg.replicated = false;
    // One in-flight slot, no queue, plenty of broker lanes: a concurrent
    // burst must shed most arrivals with the retry hint.
    cfg.overload = OverloadPolicy::server(1).with_queue(0);
    cfg.workers_per_shard = 4;
    let broker = FederationBroker::start(&corpus.documents, corpus.config.sub_collections, cfg);

    let mut pending: Vec<Question> = questions.clone();
    let mut rounds = 0usize;
    while !pending.is_empty() {
        rounds += 1;
        assert!(
            rounds <= 2 * questions.len(),
            "{} clients still unadmitted after {rounds} back-off rounds",
            pending.len()
        );
        let mut backoff = Duration::ZERO;
        let mut still_pending = Vec::new();
        let admissions = broker.ask_many(&pending);
        for (q, admission) in pending.drain(..).zip(admissions) {
            match admission {
                FederatedAdmission::Answered(_) => {}
                FederatedAdmission::Rejected { retry_after } => {
                    assert!(retry_after > Duration::ZERO, "hint must drive the back-off");
                    backoff = backoff.max(retry_after);
                    still_pending.push(q);
                }
            }
        }
        pending = still_pending;
        if !pending.is_empty() {
            // Back off by the slowest gate's own hint, as a well-behaved
            // client would; progress per round is what the bound asserts.
            std::thread::sleep(backoff);
        }
    }
    broker.shutdown();

    // The DES twin of the same contract: 8 clients against a 1-slot gate,
    // each re-offering after the hint, all admitted with bounded retries.
    let gate = run_retry_gate_sim(8, 1, 0.5, 0.05);
    assert_eq!(gate.admitted, 8, "virtual client starved at the gate");
    assert!(
        gate.max_attempts <= 1 + 8 * 10,
        "unbounded retry storm in the mirror: {} attempts",
        gate.max_attempts
    );
}

#[test]
fn federation_des_replays_bit_identically_under_shard_faults() {
    let mut cfg = FedSimConfig::new(2, 10, 7104);
    cfg.nodes_per_shard = 2;
    cfg.faults = FaultSchedule::seeded(7104)
        .shard_down_rejoin(0, 4.0, 12.0)
        .shard_partition(1, 8.0, 14.0);
    let a = run_fed_sim(&cfg);
    let b = run_fed_sim(&cfg);
    assert_eq!(a, b, "federation DES replay diverged");
    assert_eq!(a.digest, b.digest);
    assert!(a.conserved(), "merged + rejected must cover every question");
    assert_eq!(a.rejected, 0, "shard faults must never reject a question");
}
