//! Whole-system determinism: every layer must be a pure function of its
//! seed/config, which is what makes the experiment tables reproducible
//! line for line.

use falcon_dqa::cluster_sim::workload::{BalancingStrategy, QaSimulation, SimConfig};
use falcon_dqa::corpus::{trec, Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::ir_engine::persist::encode_index;
use falcon_dqa::ir_engine::ShardedIndex;
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_pipeline::{PipelineConfig, QaPipeline};
use falcon_dqa::scheduler::partition::PartitionStrategy;

#[test]
fn corpus_index_and_question_bytes_are_stable() {
    let build = || {
        let c = Corpus::generate(CorpusConfig::small(404)).unwrap();
        let idx = ShardedIndex::build(&c.documents, c.config.sub_collections);
        let questions = QuestionGenerator::new(&c, 7).generate(10);
        (
            serde_json::to_string(&c.snapshot()).unwrap(),
            encode_index(&idx),
            trec::write_topics(&questions),
            trec::write_answer_key(&questions),
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a.0, b.0, "corpus snapshot bytes differ");
    assert_eq!(a.1, b.1, "index bytes differ");
    assert_eq!(a.2, b.2, "topic file differs");
    assert_eq!(a.3, b.3, "answer key differs");
}

#[test]
fn pipeline_answers_are_stable_across_runs() {
    let run = || {
        let c = Corpus::generate(CorpusConfig::small(405)).unwrap();
        let idx = std::sync::Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = std::sync::Arc::new(falcon_dqa::ir_engine::DocumentStore::new(
            c.documents.clone(),
        ));
        let qa = QaPipeline::new(
            falcon_dqa::ir_engine::ParagraphRetriever::new(
                idx,
                store,
                falcon_dqa::ir_engine::RetrievalConfig::default(),
            ),
            NamedEntityRecognizer::standard(),
            PipelineConfig::default(),
        );
        QuestionGenerator::new(&c, 3)
            .generate(8)
            .iter()
            .map(|gq| {
                qa.answer(&gq.question)
                    .unwrap()
                    .answers
                    .answers
                    .iter()
                    .map(|a| (a.candidate.clone(), a.score))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn simulator_reports_are_bit_stable() {
    let run = |strategy| QaSimulation::new(SimConfig::paper_high_load(6, strategy, 2026)).run();
    for strategy in [
        BalancingStrategy::Dns,
        BalancingStrategy::Inter,
        BalancingStrategy::Dqa,
        BalancingStrategy::SenderDiffusion,
        BalancingStrategy::Gradient,
    ] {
        let a = run(strategy);
        let b = run(strategy);
        assert_eq!(a, b, "{strategy:?} not deterministic");
    }
}

#[test]
fn simulator_traces_are_stable_including_failures() {
    let run = || {
        let cfg = SimConfig {
            record_trace: true,
            node_failures: vec![(40.0, 1)],
            ..SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 3, 2027)
        };
        QaSimulation::new(cfg).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.questions, b.questions);
}
