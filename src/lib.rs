#![warn(missing_docs)]
//! `falcon-dqa` — facade crate for the distributed question/answering
//! reproduction of Surdeanu, Moldovan & Harabagiu (IPPS 2001).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use analytical;
pub use cluster_sim;
pub use corpus;
pub use dqa_obs;
pub use dqa_runtime;
pub use faults;
pub use federation;
pub use ir_engine;
pub use journal;
pub use loadsim;
pub use nlp;
pub use qa_pipeline;
pub use qa_types;
pub use rebalance;
pub use scheduler;
