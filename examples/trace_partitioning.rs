//! Fig. 7-style execution traces: watch the three partitioning strategies
//! schedule one question's AP work across a 4-node cluster.
//!
//! ```text
//! cargo run --release --example trace_partitioning
//! ```

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig, TraceKind};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;

fn main() {
    let corpus = Corpus::generate(CorpusConfig::trec_like(226)).expect("valid config");
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let gq = QuestionGenerator::new(&corpus, 1)
        .generate(1)
        .pop()
        .expect("question generated");
    println!("question: {}\n", gq.question.text);

    for (label, strategy) in [
        ("SEND  — contiguous weighted split", PartitionStrategy::Send),
        (
            "ISEND — interleaved weighted split",
            PartitionStrategy::Isend,
        ),
        (
            "RECV  — receiver-pulled 10-paragraph chunks",
            PartitionStrategy::Recv { chunk_size: 10 },
        ),
    ] {
        let cluster = Cluster::start(
            ParagraphRetriever::new(
                Arc::clone(&index),
                Arc::clone(&store),
                RetrievalConfig::default(),
            ),
            NamedEntityRecognizer::standard(),
            ClusterConfig {
                nodes: 4,
                ap_partition: strategy,
                ..ClusterConfig::default()
            },
        );
        let out = cluster.ask(&gq.question).expect("distributed answer");
        println!("=== {label}");
        for e in cluster.trace().for_question(gq.question.id) {
            if matches!(
                e.kind,
                TraceKind::ApBatchStart(_)
                    | TraceKind::ApBatchDone(_)
                    | TraceKind::AnswersSorted(_)
            ) {
                println!("  {}", e.render());
            }
        }
        println!(
            "  -> best answer {:?} via {} AP nodes\n",
            out.answers
                .best()
                .map(|a| a.candidate.as_str())
                .unwrap_or("-"),
            out.ap_nodes.len()
        );
        cluster.shutdown();
    }
    println!("note how SEND hands each node one big batch, ISEND interleaves by rank,");
    println!("and RECV lets nodes pull small chunks as they finish — the same contrast");
    println!("as the paper's Fig. 7 (a)/(b)/(c) listings");
}
