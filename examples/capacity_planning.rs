//! Capacity planning with the analytical model: "we need an interactive
//! Q/A service — how many machines, and is partitioning worth it?"
//!
//! This is the workload the paper's introduction motivates: an Internet
//! Q/A service must sustain load (inter-question parallelism) *and* keep
//! individual answers fast (intra-question parallelism). The analytical
//! model answers both sizing questions without running anything.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use falcon_dqa::analytical::{InterQuestionModel, IntraQuestionModel};
use falcon_dqa::qa_types::params::{GBPS, MBPS};
use falcon_dqa::qa_types::{SystemParams, Trec9Profile};

fn main() {
    let profile = Trec9Profile::average();
    let params = SystemParams::trec9().with_net_bandwidth(GBPS);

    // --- Throughput sizing -------------------------------------------
    let target_qpm = 120.0; // service-level objective: 2 questions/second? no – per minute
    let inter = InterQuestionModel::new(params, profile);
    let per_node_qpm = 60.0 / profile.sequential_total();
    let mut nodes = 1;
    while inter.speedup(nodes) * per_node_qpm < target_qpm && nodes < 4096 {
        nodes += 1;
    }
    println!("throughput sizing (1 Gbps network)");
    println!("  one node sustains {per_node_qpm:.2} questions/minute");
    println!(
        "  {target_qpm:.0} q/min needs {nodes} nodes (efficiency there: {:.2})",
        inter.efficiency(nodes)
    );

    // --- Latency sizing ----------------------------------------------
    let complex = Trec9Profile::complex();
    println!(
        "\nlatency sizing (complex questions, {:.0} s sequential)",
        complex.sequential_total()
    );
    for (label, disk) in [
        ("period disk (100 Mbps)", 100.0 * MBPS),
        ("fast disk (1 Gbps)", GBPS),
    ] {
        let intra = IntraQuestionModel::new(params.with_disk_bandwidth(disk), complex);
        let (n_max, s_max) = intra.practical_limit();
        println!("  {label}:");
        for target_secs in [60.0, 30.0, 15.0] {
            let needed = (1..=n_max).find(|&n| intra.t_n(n) <= target_secs);
            match needed {
                Some(n) => println!(
                    "    {target_secs:>4.0} s answer: partition over {n} nodes (T = {:.1} s)",
                    intra.t_n(n)
                ),
                None => println!(
                    "    {target_secs:>4.0} s answer: unreachable — best is {:.1} s at the practical limit of {n_max} nodes",
                    intra.t_n(n_max)
                ),
            }
        }
        println!(
            "    practical limit: {n_max} nodes (speedup {s_max:.1}); beyond that the sequential remainder dominates"
        );
    }

    println!("\nconclusion (the paper's): partitioning buys interactive latency up to");
    println!("~90 nodes; scaling throughput beyond that must come from inter-question");
    println!("parallelism, which stays ~90 % efficient to 1000 nodes on a fast network");
}
