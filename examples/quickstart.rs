//! Quickstart: build a corpus, index it, answer questions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_pipeline::{PipelineConfig, QaPipeline};
use std::sync::Arc;

fn main() {
    // 1. A synthetic TREC-like collection (deterministic from the seed).
    let corpus = Corpus::generate(CorpusConfig::trec_like(7)).expect("valid config");
    let stats = corpus.stats();
    println!(
        "corpus: {} documents, {} paragraphs, {:.1} MB, {} planted answers",
        stats.documents,
        stats.paragraphs,
        stats.bytes as f64 / 1e6,
        stats.plants
    );

    // 2. Index each sub-collection separately (the paper indexes TREC-9 as
    //    eight shards).
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    println!(
        "index: {} shards, {} documents",
        index.shard_count(),
        index.doc_count()
    );

    // 3. Assemble the sequential Falcon pipeline.
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
    let pipeline = QaPipeline::new(
        retriever,
        NamedEntityRecognizer::standard(),
        PipelineConfig::long_answers(),
    );

    // 4. Ask questions with known ground truth.
    let questions = QuestionGenerator::new(&corpus, 1).generate(5);
    for gq in &questions {
        let out = pipeline.answer(&gq.question).expect("pipeline runs");
        println!("\n{}  {}", gq.question.id, gq.question.text);
        println!(
            "  type {}  keywords {:?}",
            out.processed.answer_type,
            out.processed.keyword_terms().collect::<Vec<_>>()
        );
        match out.answers.best() {
            Some(a) => println!(
                "  best answer: {}  (truth: {})",
                a.candidate, gq.expected_answer
            ),
            None => println!("  no answer found (truth: {})", gq.expected_answer),
        }
        println!(
            "  {} paragraphs retrieved, {} accepted, {:.1} ms",
            out.paragraphs_retrieved,
            out.paragraphs_accepted,
            out.timings.total() * 1e3
        );
    }
}
