//! A four-node distributed Q/A cluster answering a stream of questions from
//! concurrent clients, surviving a node failure mid-run — the architecture
//! of the paper's Fig. 2/3 in miniature.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_types::NodeId;
use falcon_dqa::scheduler::partition::PartitionStrategy;
use std::sync::Arc;

fn main() {
    let corpus = Corpus::generate(CorpusConfig::trec_like(99)).expect("valid config");
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());

    let cluster = Arc::new(Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            ap_partition: PartitionStrategy::Recv { chunk_size: 20 },
            ..ClusterConfig::default()
        },
    ));
    println!("cluster up: 4 nodes, receiver-controlled partitioning\n");

    // Two concurrent clients, six questions each.
    let questions = QuestionGenerator::new(&corpus, 5).generate(12);
    let mut clients = Vec::new();
    for (client, batch) in questions.chunks(6).enumerate() {
        let cl = Arc::clone(&cluster);
        let batch: Vec<_> = batch.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut hits = 0;
            for gq in &batch {
                match cl.ask(&gq.question) {
                    Ok(out) => {
                        let hit = out
                            .answers
                            .answers
                            .iter()
                            .any(|a| a.candidate == gq.expected_answer);
                        hits += hit as usize;
                        println!(
                            "client {client}: {} -> {:?} (PR on {} nodes, AP on {} nodes){}",
                            gq.question.id,
                            out.answers
                                .best()
                                .map(|a| a.candidate.as_str())
                                .unwrap_or("-"),
                            out.pr_nodes.len(),
                            out.ap_nodes.len(),
                            if hit { "" } else { "  [missed]" }
                        );
                    }
                    Err(e) => println!("client {client}: {} failed: {e}", gq.question.id),
                }
            }
            hits
        }));
        // Kill a node while the first client is mid-stream.
        if client == 0 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            println!(">>> killing node N2 <<<");
            cluster.kill_node(NodeId::new(2));
        }
    }

    let mut total_hits = 0;
    for c in clients {
        total_hits += c.join().expect("client thread");
    }
    println!("\n{total_hits}/12 questions answered with the planted ground truth");

    let failures = cluster
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, falcon_dqa::dqa_runtime::TraceKind::WorkerFailed))
        .count();
    println!("{failures} sub-task recoveries logged after the failure injection");
}
