//! Interactive Q/A shell over a distributed cluster.
//!
//! ```text
//! cargo run --release --example qa_repl
//! # then type questions, one per line; empty line or EOF exits.
//! # `:sample` prints generated questions (with known answers) to try.
//! ```
//!
//! Piping works too:
//! `echo "Where is the Taj Mahal?" | cargo run --release --example qa_repl`

use falcon_dqa::corpus::{Corpus, CorpusConfig, QuestionGenerator};
use falcon_dqa::dqa_runtime::{Cluster, ClusterConfig};
use falcon_dqa::ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use falcon_dqa::nlp::NamedEntityRecognizer;
use falcon_dqa::qa_types::{Question, QuestionId};
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    eprint!("building corpus and index… ");
    let t = Instant::now();
    let corpus = Corpus::generate(CorpusConfig::trec_like(42)).expect("valid config");
    let index = Arc::new(ShardedIndex::build(
        &corpus.documents,
        corpus.config.sub_collections,
    ));
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let cluster = Cluster::start(
        ParagraphRetriever::new(index, store, RetrievalConfig::default()),
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes: 4,
            ..ClusterConfig::default()
        },
    );
    eprintln!("done in {:.1} s (4 nodes up)", t.elapsed().as_secs_f64());
    eprintln!("type a question (`:sample` for examples, empty line to quit)");

    let samples = QuestionGenerator::new(&corpus, 11).generate(5);
    let stdin = io::stdin();
    let mut next_id = 10_000u32;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_string();
        if line.is_empty() {
            break;
        }
        if line == ":sample" {
            for gq in &samples {
                println!("  {}   (answer: {})", gq.question.text, gq.expected_answer);
            }
            continue;
        }
        next_id += 1;
        let q = Question::new(QuestionId::new(next_id), line);
        let t = Instant::now();
        match cluster.ask(&q) {
            Ok(out) => {
                println!(
                    "type {} | keywords {:?} | {} paragraphs | {:.0} ms | PR×{} AP×{}",
                    out.processed.answer_type,
                    out.processed.keyword_terms().collect::<Vec<_>>(),
                    out.paragraphs_accepted,
                    t.elapsed().as_secs_f64() * 1e3,
                    out.pr_nodes.len(),
                    out.ap_nodes.len(),
                );
                if out.answers.is_empty() {
                    println!("no answer found");
                } else {
                    for (i, a) in out.answers.answers.iter().enumerate() {
                        println!(
                            "{}. {}  — …{}…  (score {:.3})",
                            i + 1,
                            a.candidate,
                            a.text,
                            a.score
                        );
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
        let _ = io::stdout().flush();
    }
    cluster.shutdown();
    eprintln!("bye");
}
